//! Contract capability analysis and intent-equivalence (paper §5,
//! "Feature equivalence").
//!
//! The paper observes that full symbolic equivalence of feature
//! *implementations* is impractical (vendors' RSS variants differ in
//! irrelevant ways) and settles on semantic annotations as the contract
//! currency. This module implements the practical consequences: what a
//! contract *can* provide (the union of `Prov` over its layouts), how
//! two contracts differ, and whether two NICs are **intent-equivalent**
//! — the application-observable question: under intent `I`, do both
//! compilations provide the same hardware/software split?

use crate::compiler::{CompileError, Compiler};
use crate::intent::Intent;
use opendesc_ir::semantics::SemanticRegistry;
use opendesc_ir::{enumerate_paths, extract, SemanticId, DEFAULT_MAX_PATHS};
use opendesc_p4::typecheck::parse_and_check;
use std::collections::BTreeSet;

/// The semantics a contract can provide across all of its layouts.
pub fn capabilities(
    contract_src: &str,
    deparser: &str,
    reg: &mut SemanticRegistry,
) -> Result<BTreeSet<SemanticId>, CompileError> {
    let (checked, diags) = parse_and_check(contract_src);
    if diags.has_errors() {
        return Err(CompileError::Contract(
            diags
                .iter()
                .map(|d| d.message.clone())
                .collect::<Vec<_>>()
                .join("; "),
        ));
    }
    let cfg = extract(&checked, deparser, reg).map_err(|d| {
        CompileError::Extract(
            d.iter()
                .map(|x| x.message.clone())
                .collect::<Vec<_>>()
                .join("; "),
        )
    })?;
    let paths =
        enumerate_paths(&cfg, DEFAULT_MAX_PATHS).map_err(|e| CompileError::Paths(e.to_string()))?;
    Ok(paths.iter().flat_map(|p| p.prov.iter().copied()).collect())
}

/// Structural capability difference between two contracts.
#[derive(Debug, Clone)]
pub struct ContractDiff {
    pub a_name: String,
    pub b_name: String,
    pub common: BTreeSet<SemanticId>,
    pub only_a: BTreeSet<SemanticId>,
    pub only_b: BTreeSet<SemanticId>,
}

impl ContractDiff {
    /// Render as a migration-oriented report.
    pub fn render(&self, reg: &SemanticRegistry) -> String {
        let fmt = |s: &BTreeSet<SemanticId>| {
            if s.is_empty() {
                "-".to_string()
            } else {
                s.iter()
                    .map(|x| reg.name(*x))
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        format!(
            "capability diff {} vs {}\n  both:       {}\n  only {}: {}\n  only {}: {}\n",
            self.a_name,
            self.b_name,
            fmt(&self.common),
            self.a_name,
            fmt(&self.only_a),
            self.b_name,
            fmt(&self.only_b),
        )
    }
}

/// Diff the capabilities of two contracts.
pub fn diff(
    a: (&str, &str, &str), // (src, deparser, name)
    b: (&str, &str, &str),
    reg: &mut SemanticRegistry,
) -> Result<ContractDiff, CompileError> {
    let ca = capabilities(a.0, a.1, reg)?;
    let cb = capabilities(b.0, b.1, reg)?;
    Ok(ContractDiff {
        a_name: a.2.to_string(),
        b_name: b.2.to_string(),
        common: ca.intersection(&cb).copied().collect(),
        only_a: ca.difference(&cb).copied().collect(),
        only_b: cb.difference(&ca).copied().collect(),
    })
}

/// Result of an intent-equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub enum IntentEquivalence {
    /// Same hardware-provided subset on both NICs: migrating the app
    /// changes nothing observable (values are semantic-identical and the
    /// software split matches).
    Equivalent,
    /// Both satisfiable, but the hardware/software split differs — the
    /// app works on both, with different CPU cost.
    DifferentSplit {
        a_provides: BTreeSet<SemanticId>,
        b_provides: BTreeSet<SemanticId>,
    },
    /// Exactly one side can satisfy the intent at all.
    OneSided { satisfiable_on_a: bool },
    /// Neither side can satisfy the intent.
    NeitherSatisfiable,
}

/// Check whether two contracts are equivalent *under a given intent*.
pub fn intent_equivalent(
    compiler: &Compiler,
    a: (&str, &str, &str),
    b: (&str, &str, &str),
    intent: &Intent,
    reg: &mut SemanticRegistry,
) -> IntentEquivalence {
    let ra = compiler.compile(a.0, a.1, a.2, intent, reg);
    let rb = compiler.compile(b.0, b.1, b.2, intent, reg);
    match (ra, rb) {
        (Ok(ca), Ok(cb)) => {
            if ca.selection.best.provided == cb.selection.best.provided {
                IntentEquivalence::Equivalent
            } else {
                IntentEquivalence::DifferentSplit {
                    a_provides: ca.selection.best.provided,
                    b_provides: cb.selection.best.provided,
                }
            }
        }
        (Ok(_), Err(_)) => IntentEquivalence::OneSided {
            satisfiable_on_a: true,
        },
        (Err(_), Ok(_)) => IntentEquivalence::OneSided {
            satisfiable_on_a: false,
        },
        (Err(_), Err(_)) => IntentEquivalence::NeitherSatisfiable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opendesc_ir::names;
    use opendesc_nicsim::models;

    fn m(model: &opendesc_nicsim::NicModel) -> (String, String, String) {
        (
            model.p4_source.clone(),
            model.deparser.clone(),
            model.name.clone(),
        )
    }

    #[test]
    fn capabilities_union_over_paths() {
        let mut reg = SemanticRegistry::with_builtins();
        let model = models::e1000e();
        let caps = capabilities(&model.p4_source, &model.deparser, &mut reg).unwrap();
        // Both branches' semantics appear, even though no single layout
        // has them all.
        for n in [
            names::RSS_HASH,
            names::IP_CHECKSUM,
            names::IP_ID,
            names::PKT_LEN,
        ] {
            assert!(caps.contains(&reg.id(n).unwrap()), "{n} missing");
        }
        assert!(!caps.contains(&reg.id(names::TIMESTAMP).unwrap()));
    }

    #[test]
    fn diff_identifies_one_sided_features() {
        let mut reg = SemanticRegistry::with_builtins();
        let a = models::mlx5();
        let b = models::e1000_legacy();
        let (sa, da, na) = m(&a);
        let (sb, db, nb) = m(&b);
        let d = diff((&sa, &da, &na), (&sb, &db, &nb), &mut reg).unwrap();
        assert!(d.only_a.contains(&reg.id(names::TIMESTAMP).unwrap()));
        assert!(d.only_a.contains(&reg.id(names::KVS_KEY_HASH).unwrap()));
        assert!(d.common.contains(&reg.id(names::IP_CHECKSUM).unwrap()));
        assert!(d.only_b.is_empty(), "legacy e1000 has nothing mlx5 lacks");
        let txt = d.render(&reg);
        assert!(txt.contains("timestamp"), "{txt}");
    }

    #[test]
    fn same_contract_is_intent_equivalent() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("i").want(&mut reg, names::RSS_HASH).build();
        let a = models::mlx5();
        let (s, d, n) = m(&a);
        let e = intent_equivalent(
            &Compiler::default(),
            (&s, &d, &n),
            (&s, &d, &n),
            &intent,
            &mut reg,
        );
        assert_eq!(e, IntentEquivalence::Equivalent);
    }

    #[test]
    fn different_split_detected() {
        let mut reg = SemanticRegistry::with_builtins();
        // fig1 intent: mlx5 provides all four in hw; e1000e only csum+vlan.
        let intent = Intent::from_p4(crate::intent::FIG1_INTENT_P4, &mut reg).unwrap();
        let a = models::mlx5();
        let b = models::e1000e();
        let (sa, da, na) = m(&a);
        let (sb, db, nb) = m(&b);
        match intent_equivalent(
            &Compiler::default(),
            (&sa, &da, &na),
            (&sb, &db, &nb),
            &intent,
            &mut reg,
        ) {
            IntentEquivalence::DifferentSplit {
                a_provides,
                b_provides,
            } => {
                assert!(a_provides.len() > b_provides.len());
            }
            other => panic!("expected DifferentSplit, got {other:?}"),
        }
    }

    #[test]
    fn equivalence_despite_different_layouts() {
        // ixgbe and ice differ wildly in layout, but for {rss, vlan} both
        // provide everything in hardware → intent-equivalent.
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("i")
            .want(&mut reg, names::RSS_HASH)
            .want(&mut reg, names::VLAN_TCI)
            .build();
        let a = models::ixgbe();
        let b = models::ice();
        let (sa, da, na) = m(&a);
        let (sb, db, nb) = m(&b);
        assert_eq!(
            intent_equivalent(
                &Compiler::default(),
                (&sa, &da, &na),
                (&sb, &db, &nb),
                &intent,
                &mut reg,
            ),
            IntentEquivalence::Equivalent,
        );
    }

    #[test]
    fn one_sided_when_timestamp_requested() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("i")
            .want(&mut reg, names::TIMESTAMP)
            .build();
        let a = models::mlx5();
        let b = models::e1000e();
        let (sa, da, na) = m(&a);
        let (sb, db, nb) = m(&b);
        assert_eq!(
            intent_equivalent(
                &Compiler::default(),
                (&sa, &da, &na),
                (&sb, &db, &nb),
                &intent,
                &mut reg,
            ),
            IntentEquivalence::OneSided {
                satisfiable_on_a: true
            },
        );
    }
}
