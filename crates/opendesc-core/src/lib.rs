//! # opendesc-core — the OpenDesc compiler
//!
//! The paper's primary contribution: given a NIC's P4 interface contract
//! and an application's intent, select the best completion layout the NIC
//! supports (Eq. 1), derive the context configuration that steers the NIC
//! onto it, and synthesize host stubs — constant-time accessors, Rust/C
//! source, and verified eBPF programs — plus SoftNIC shims for whatever
//! the layout cannot provide.
//!
//! ```
//! use opendesc_core::{Compiler, Intent};
//! use opendesc_ir::{names, SemanticRegistry};
//! use opendesc_nicsim::models;
//!
//! let mut reg = SemanticRegistry::with_builtins();
//! let intent = Intent::builder("app")
//!     .want(&mut reg, names::RSS_HASH)
//!     .want(&mut reg, names::IP_CHECKSUM)
//!     .build();
//! let compiled = Compiler::default()
//!     .compile_model(&models::e1000e(), &intent, &mut reg)
//!     .unwrap();
//! // Fig. 6: hardware checksum wins; RSS falls back to software.
//! assert_eq!(compiled.missing_features(), vec!["rss_hash"]);
//! ```
pub mod accessor;
pub mod baseline;
pub mod cache;
pub mod codegen;
pub mod compiler;
pub mod conformance;
pub mod datapath;
pub mod equiv;
pub mod evolve;
pub mod hook;
pub mod intent;
pub mod lower;
pub mod plan;
pub mod rebalance;
pub mod robust;
pub mod select;
pub mod shard;
pub mod tx;
pub mod vm;

pub use accessor::{Accessor, AccessorKind, AccessorSet};
pub use baseline::{GenericMbuf, GenericMbufDriver, LcdDriver};
pub use cache::{CompiledRx, PlanCache};
pub use compiler::{CompileError, CompiledInterface, Compiler};
pub use datapath::{OpenDescDriver, RxBatch, RxPacket};
pub use equiv::{capabilities, diff, intent_equivalent, ContractDiff, IntentEquivalence};
pub use evolve::{
    EvolveConfig, FlipProgress, FlipRecord, RelayoutCounters, RelayoutOutcome, RelayoutRequest,
    FLIP_POLL_BUDGET,
};
pub use hook::{HookDriver, HookStats, HookVerdict};
pub use intent::{Intent, IntentBuilder, IntentError, FIG1_INTENT_P4};
pub use lower::{lower, EbpfFieldProg, EbpfWindow, LowerError, LoweredPlan};
pub use plan::{PlanStep, RxPlan};
pub use rebalance::{imbalance_p99_p50, RebalanceConfig, RebalanceStats, Rebalancer, RetaMove};
pub use robust::{
    FieldCheck, HealthConfig, HealthState, QueueHealth, SeqTracker, SeqVerdict, ValidationMode,
    ValidationStats, ValidatorSpec, Watchdog, WatchdogConfig,
};
pub use select::{Objective, PathScore, SelectError, Selection, Selector};
pub use shard::{
    AdaptiveConfig, AdaptiveOutcome, DrainedPacket, EngineHealthReport, EngineReport, EngineWorker,
    ForwardFn, QueueHealthReport, RxWorker, ShardError, ShardReport, ShardedEngine, ShardedRx,
    TxVerdict, TxWorkerStats, WorkerStats,
};
pub use tx::{
    compile_tx, lower_tx, txreg, CompiledTx, CompiledTxPlan, TxBatch, TxDriver, TxQueue,
    TxQueueStats, TxRequest, TxWriter,
};
pub use vm::{BcInsn, PlanProgram};

// The unified telemetry layer — re-exported so engine users can take a
// registry snapshot or read trace rings without naming the crate.
pub use opendesc_telemetry::{
    Hist, MetricRegistry, MetricValue, QueueTelemetry, Snapshot, TraceEvent, TraceKind, TraceRing,
};
