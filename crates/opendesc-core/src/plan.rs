//! Compiled RX shim plans: the step-level IR of a compiled interface,
//! and its tree-walking reference interpreter.
//!
//! `AccessorSet` tells *where* each semantic comes from; an [`RxPlan`]
//! lowers that, once, at `Compiler::compile` time, into how the hot loop
//! obtains it: hardware steps index straight into the accessor table and
//! software steps carry a pre-resolved [`ShimOp`] — no per-packet
//! registry lookup or match-on-name. Executing the plan parses the frame
//! once, shares the [`ParsedFrame`] across all software steps, and
//! memoizes intra-packet repeats through [`ShimMemo`] (RSS feeding both
//! `rss_hash` and `queue_hint` is computed a single time).
//!
//! The `execute_*` methods here are the **differential-test oracle**,
//! not the production datapath: the driver runs the plan's bytecode form
//! (lowered by [`mod@crate::lower`], executed by [`crate::vm`]), which E12
//! showed is what it takes to beat the per-packet accessors. The
//! interpreter stays because it is the simplest possible statement of
//! the plan semantics — `tests/vm_equivalence.rs` holds the VM, the
//! eBPF-lowered interpreter, and this tree walker bit-identical.

use crate::accessor::{AccessorKind, AccessorSet};
use opendesc_ir::bits::width_mask;
use opendesc_ir::semantics::SemanticRegistry;
use opendesc_softnic::wire::ParsedFrame;
use opendesc_softnic::{ShimMemo, ShimOp, SoftNic};

/// One step of a compiled plan; the index is the accessor's position in
/// the [`AccessorSet`] (and therefore the metadata slot it fills).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStep {
    /// Constant-time read of accessor `acc_idx` from the completion.
    Hardware { acc_idx: usize },
    /// SoftNIC shim, pre-lowered to its op.
    Software { acc_idx: usize, op: ShimOp },
}

/// The compiled per-packet execution plan of one interface.
#[derive(Debug, Clone, Default)]
pub struct RxPlan {
    /// All steps, in accessor (= intent field) order.
    pub steps: Vec<PlanStep>,
    /// Accessor indices of the hardware steps, for columnar batch reads.
    pub hw: Vec<usize>,
    /// `(accessor index, op)` of the software steps.
    pub sw: Vec<(usize, ShimOp)>,
    /// Every accessor the SoftNIC can recompute from frame bytes —
    /// hardware and software steps alike. This is the degraded-mode
    /// execution list: when the completion cannot be trusted, these ops
    /// produce every recomputable value without reading it.
    pub degraded: Vec<(usize, ShimOp)>,
    /// Hardware steps with a software reference — the verify-mode
    /// cross-check list (subset of `hw`; device-only semantics like
    /// timestamps have no reference and cannot be checked).
    pub hw_check: Vec<(usize, ShimOp)>,
}

impl RxPlan {
    /// Lower an accessor set. Called once per compilation; the returned
    /// plan is reused for every packet.
    pub fn compile(set: &AccessorSet, reg: &SemanticRegistry) -> RxPlan {
        let mut steps = Vec::with_capacity(set.accessors.len());
        let mut hw = Vec::new();
        let mut sw = Vec::new();
        let mut degraded = Vec::new();
        let mut hw_check = Vec::new();
        for (acc_idx, a) in set.accessors.iter().enumerate() {
            let op = ShimOp::from_name(reg.name(a.semantic));
            match a.kind {
                AccessorKind::Hardware => {
                    steps.push(PlanStep::Hardware { acc_idx });
                    hw.push(acc_idx);
                    if op != ShimOp::Unsupported {
                        hw_check.push((acc_idx, op));
                    }
                }
                AccessorKind::Software => {
                    steps.push(PlanStep::Software { acc_idx, op });
                    sw.push((acc_idx, op));
                }
            }
            if op != ShimOp::Unsupported {
                degraded.push((acc_idx, op));
            }
        }
        RxPlan {
            steps,
            hw,
            sw,
            degraded,
            hw_check,
        }
    }

    /// Whether any step needs the frame parsed (pure-hardware plans skip
    /// the parse entirely).
    #[inline]
    pub fn needs_parse(&self) -> bool {
        !self.sw.is_empty()
    }

    /// Execute the plan for one packet into `out[..steps.len()]`.
    ///
    /// Hardware steps always produce `Some`; software steps produce
    /// `None` when the frame does not parse or lacks the layers the shim
    /// needs — the same contract as `AccessorSet::read_packet`.
    pub fn execute_into(
        &self,
        set: &AccessorSet,
        soft: &mut SoftNic,
        frame: &[u8],
        cmpt: &[u8],
        out: &mut [Option<u128>],
    ) {
        self.execute_into_primed(set, soft, frame, cmpt, None, out)
    }

    /// [`execute_into`](RxPlan::execute_into) with the completion's RSS
    /// sideband primed into the shim memo: when the device already
    /// reports the Toeplitz hash (real NICs do, the simulator's steering
    /// stage does), software `rss_hash`/`queue_hint` steps become memo
    /// hits instead of recomputing the hash over the key.
    pub fn execute_into_primed(
        &self,
        set: &AccessorSet,
        soft: &mut SoftNic,
        frame: &[u8],
        cmpt: &[u8],
        rss_hint: Option<u32>,
        out: &mut [Option<u128>],
    ) {
        debug_assert!(out.len() >= self.steps.len());
        let parsed = if self.needs_parse() {
            ParsedFrame::parse(frame)
        } else {
            None
        };
        let mut memo = ShimMemo::default();
        if let Some(h) = rss_hint {
            memo.prime_rss(h);
        }
        for step in &self.steps {
            match *step {
                PlanStep::Hardware { acc_idx } => {
                    out[acc_idx] = Some(set.accessors[acc_idx].read(cmpt));
                }
                PlanStep::Software { acc_idx, op } => {
                    out[acc_idx] = parsed
                        .as_ref()
                        .and_then(|p| soft.exec_op(op, p, frame.len(), &mut memo))
                        .map(|v| v as u128);
                }
            }
        }
    }

    /// Degraded-mode execution: the completion is untrusted and never
    /// read. Every software-recomputable field — including those the
    /// layout normally provides in hardware — is recomputed from the
    /// frame; device-only fields (timestamps, crypto contexts) come out
    /// `None`. Correct-or-absent, never garbage. The shim memo is *not*
    /// primed: the device sideband is as untrusted as the completion.
    pub fn execute_degraded(&self, soft: &mut SoftNic, frame: &[u8], out: &mut [Option<u128>]) {
        debug_assert!(out.len() >= self.steps.len());
        for slot in out[..self.steps.len()].iter_mut() {
            *slot = None;
        }
        let parsed = ParsedFrame::parse(frame);
        let mut memo = ShimMemo::default();
        for &(acc_idx, op) in &self.degraded {
            out[acc_idx] = parsed
                .as_ref()
                .and_then(|p| soft.exec_op(op, p, frame.len(), &mut memo))
                .map(|v| v as u128);
        }
    }

    /// Bitmask of software-step slots whose already-computed values may
    /// be *kept* across a degraded re-serve: software values were never
    /// read from the (now-distrusted) completion. When the trusted pass
    /// was primed with the device's RSS sideband (`hinted`), the
    /// `rss_hash`/`queue_hint` slots are excluded — the hint is device
    /// data and is as untrusted as the failing completion.
    pub fn keep_sw_mask(&self, hinted: bool) -> u128 {
        let mut mask = 0u128;
        for &(acc_idx, op) in &self.sw {
            if acc_idx >= 128 {
                continue;
            }
            if hinted && matches!(op, ShimOp::RssHash | ShimOp::QueueHint) {
                continue;
            }
            mask |= 1u128 << acc_idx;
        }
        mask
    }

    /// Selective degraded re-serve: like
    /// [`execute_degraded`](RxPlan::execute_degraded), but slots whose
    /// bit is set in `keep` retain the value already in `out` — fields
    /// the validator affirmatively proved, or software values that never
    /// touched the completion — instead of being recomputed. `keep = 0`
    /// is exactly full degraded execution; plans wider than the 128-bit
    /// mask fall back to it.
    pub fn execute_degraded_partial(
        &self,
        soft: &mut SoftNic,
        frame: &[u8],
        keep: u128,
        out: &mut [Option<u128>],
    ) {
        if self.steps.len() > 128 {
            return self.execute_degraded(soft, frame, out);
        }
        debug_assert!(out.len() >= self.steps.len());
        for (i, slot) in out[..self.steps.len()].iter_mut().enumerate() {
            if keep & (1u128 << i) == 0 {
                *slot = None;
            }
        }
        let parsed = ParsedFrame::parse(frame);
        let mut memo = ShimMemo::default();
        for &(acc_idx, op) in &self.degraded {
            if keep & (1u128 << acc_idx) != 0 {
                continue;
            }
            out[acc_idx] = parsed
                .as_ref()
                .and_then(|p| soft.exec_op(op, p, frame.len(), &mut memo))
                .map(|v| v as u128);
        }
    }

    /// Verified execution: hardware fields are read from the completion
    /// *and* cross-checked against the SoftNIC reference; on mismatch
    /// the software value wins (masked to the slot width, since that is
    /// all the hardware field could ever carry). Software steps run
    /// unprimed. Returns how many hardware fields were repaired.
    pub fn execute_verified(
        &self,
        set: &AccessorSet,
        soft: &mut SoftNic,
        frame: &[u8],
        cmpt: &[u8],
        out: &mut [Option<u128>],
    ) -> u32 {
        debug_assert!(out.len() >= self.steps.len());
        let parsed = if !self.sw.is_empty() || !self.hw_check.is_empty() {
            ParsedFrame::parse(frame)
        } else {
            None
        };
        let mut memo = ShimMemo::default();
        for &acc_idx in &self.hw {
            out[acc_idx] = Some(set.accessors[acc_idx].read(cmpt));
        }
        let mut repaired = 0;
        for &(acc_idx, op) in &self.hw_check {
            let want = parsed
                .as_ref()
                .and_then(|p| soft.exec_op(op, p, frame.len(), &mut memo))
                .map(|v| width_mask(set.accessors[acc_idx].width_bits) & v as u128);
            if let Some(w) = want {
                if out[acc_idx] != Some(w) {
                    out[acc_idx] = Some(w);
                    repaired += 1;
                }
            }
        }
        for &(acc_idx, op) in &self.sw {
            out[acc_idx] = parsed
                .as_ref()
                .and_then(|p| soft.exec_op(op, p, frame.len(), &mut memo))
                .map(|v| v as u128);
        }
        repaired
    }

    /// Allocating convenience over [`execute_into`].
    ///
    /// [`execute_into`]: RxPlan::execute_into
    pub fn execute(
        &self,
        set: &AccessorSet,
        soft: &mut SoftNic,
        frame: &[u8],
        cmpt: &[u8],
    ) -> Vec<Option<u128>> {
        let mut out = vec![None; self.steps.len()];
        self.execute_into(set, soft, frame, cmpt, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use crate::intent::Intent;
    use opendesc_ir::names;
    use opendesc_nicsim::models;
    use opendesc_softnic::testpkt;

    fn compiled_for(model: opendesc_nicsim::NicModel) -> crate::compiler::CompiledInterface {
        let mut reg = opendesc_ir::SemanticRegistry::with_builtins();
        let intent = Intent::from_p4(crate::intent::FIG1_INTENT_P4, &mut reg).unwrap();
        Compiler::default()
            .compile_model(&model, &intent, &mut reg)
            .unwrap()
    }

    #[test]
    fn plan_partitions_hw_and_sw_steps() {
        let iface = compiled_for(models::e1000e());
        let plan = &iface.plan;
        assert_eq!(plan.steps.len(), iface.accessors.accessors.len());
        assert_eq!(plan.hw.len(), iface.accessors.hardware().count());
        assert_eq!(plan.sw.len(), iface.accessors.software().count());
        assert!(plan.needs_parse(), "e1000e needs RSS + KVS shims");
        // Every software step carries a concrete (supported) op.
        for (_, op) in &plan.sw {
            assert_ne!(*op, ShimOp::Unsupported);
        }
    }

    #[test]
    fn pure_hardware_plan_skips_parsing() {
        let iface = compiled_for(models::mlx5());
        assert!(iface.accessors.software().count() == 0);
        assert!(!iface.plan.needs_parse());
    }

    #[test]
    fn execute_matches_read_packet() {
        for model in [
            models::e1000e(),
            models::ixgbe(),
            models::mlx5(),
            models::qdma_default(),
        ] {
            let iface = compiled_for(model);
            let frame = testpkt::udp4(
                [10, 0, 0, 1],
                [10, 0, 0, 2],
                4242,
                11211,
                &testpkt::kvs_get_payload("plan:key"),
                Some(0x0042),
            );
            let cmpt = vec![0xA5u8; iface.accessors.completion_bytes as usize];
            let mut a = SoftNic::new();
            let mut b = SoftNic::new();
            let legacy = iface
                .accessors
                .read_packet(&iface.reg, &mut a, &frame, &cmpt);
            let planned = iface.plan.execute(&iface.accessors, &mut b, &frame, &cmpt);
            assert_eq!(legacy, planned, "{}", iface.nic_name);
        }
    }

    #[test]
    fn execute_handles_unparseable_frames() {
        let iface = compiled_for(models::e1000e());
        let runt = vec![0u8; 6]; // shorter than an Ethernet header
        let cmpt = vec![0u8; iface.accessors.completion_bytes as usize];
        let mut soft = SoftNic::new();
        let vals = iface
            .plan
            .execute(&iface.accessors, &mut soft, &runt, &cmpt);
        for (step, v) in iface.plan.steps.iter().zip(&vals) {
            match step {
                PlanStep::Hardware { .. } => assert!(v.is_some()),
                PlanStep::Software { .. } => assert!(v.is_none()),
            }
        }
    }

    #[test]
    fn primed_execution_matches_unprimed_with_true_hash() {
        // When the sideband hint is the hash the device truly computed
        // (the only case the datapath produces), priming must be
        // invisible in the output — it only skips the recompute.
        let iface = compiled_for(models::e1000e());
        let frame = testpkt::udp4(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            4242,
            11211,
            &testpkt::kvs_get_payload("primed:key"),
            None,
        );
        let cmpt = vec![0u8; iface.accessors.completion_bytes as usize];
        let mut soft = SoftNic::new();
        let h = soft.compute_by_name(names::RSS_HASH, &frame).unwrap() as u32;
        let mut plain = vec![None; iface.plan.steps.len()];
        let mut primed = vec![None; iface.plan.steps.len()];
        iface
            .plan
            .execute_into(&iface.accessors, &mut soft, &frame, &cmpt, &mut plain);
        iface.plan.execute_into_primed(
            &iface.accessors,
            &mut soft,
            &frame,
            &cmpt,
            Some(h),
            &mut primed,
        );
        assert_eq!(plain, primed);
    }

    #[test]
    fn partial_degrade_keeps_kept_slots_and_recomputes_the_rest() {
        let iface = compiled_for(models::e1000e());
        let plan = &iface.plan;
        let frame = testpkt::udp4(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            4242,
            11211,
            &testpkt::kvs_get_payload("partial:key"),
            Some(0x0042),
        );
        let mut soft = SoftNic::new();
        // keep = 0 is bit-identical to full degraded execution.
        let mut full = vec![Some(0xDEADu128); plan.steps.len()];
        let mut part = vec![Some(0xDEADu128); plan.steps.len()];
        plan.execute_degraded(&mut soft, &frame, &mut full);
        plan.execute_degraded_partial(&mut soft, &frame, 0, &mut part);
        assert_eq!(full, part);
        // A kept slot survives untouched (even with a sentinel value the
        // shims would never produce); everything else matches full
        // degraded output.
        let keep_idx = plan.degraded[0].0;
        let sentinel = Some(0xFEED_FACE_u128);
        let mut kept = vec![None; plan.steps.len()];
        kept[keep_idx] = sentinel;
        plan.execute_degraded_partial(&mut soft, &frame, 1u128 << keep_idx, &mut kept);
        assert_eq!(kept[keep_idx], sentinel, "kept slot must not be recomputed");
        for i in 0..plan.steps.len() {
            if i != keep_idx {
                assert_eq!(kept[i], full[i], "slot {i}");
            }
        }
    }

    #[test]
    fn keep_sw_mask_excludes_hint_fed_slots_when_primed() {
        let mut reg = opendesc_ir::SemanticRegistry::with_builtins();
        let intent = Intent::builder("mask")
            .want(&mut reg, names::RSS_HASH)
            .want(&mut reg, names::QUEUE_HINT)
            .want(&mut reg, names::VLAN_TCI)
            .build();
        let iface = Compiler::default()
            .compile_model(&models::e1000_legacy(), &intent, &mut reg)
            .unwrap();
        let plan = &iface.plan;
        assert!(
            plan.sw.len() >= 2,
            "legacy e1000 computes rss_hash and queue_hint in software"
        );
        let unhinted = plan.keep_sw_mask(false);
        let hinted = plan.keep_sw_mask(true);
        for &(acc_idx, op) in &plan.sw {
            let bit = 1u128 << acc_idx;
            assert_ne!(unhinted & bit, 0, "unhinted keeps every sw slot");
            let hint_fed = matches!(op, ShimOp::RssHash | ShimOp::QueueHint);
            assert_eq!(
                hinted & bit == 0,
                hint_fed,
                "hinted mask drops exactly the hint-fed slots"
            );
        }
    }

    #[test]
    fn memoized_rss_feeds_hash_and_hint_identically() {
        let mut reg = opendesc_ir::SemanticRegistry::with_builtins();
        let intent = Intent::builder("hint")
            .want(&mut reg, names::RSS_HASH)
            .want(&mut reg, names::QUEUE_HINT)
            .build();
        let iface = Compiler::default()
            .compile_model(&models::e1000_legacy(), &intent, &mut reg)
            .unwrap();
        assert!(
            iface.plan.sw.len() >= 2,
            "legacy e1000 computes both in software"
        );
        let frame = testpkt::udp4([1, 2, 3, 4], [5, 6, 7, 8], 9, 10, b"x", None);
        let cmpt = vec![0u8; iface.accessors.completion_bytes as usize];
        let mut soft = SoftNic::new();
        let vals = iface
            .plan
            .execute(&iface.accessors, &mut soft, &frame, &cmpt);
        let rss_idx = iface
            .accessors
            .accessors
            .iter()
            .position(|a| a.semantic == reg.id(names::RSS_HASH).unwrap())
            .unwrap();
        let hint_idx = iface
            .accessors
            .accessors
            .iter()
            .position(|a| a.semantic == reg.id(names::QUEUE_HINT).unwrap())
            .unwrap();
        assert_eq!(vals[hint_idx].unwrap(), vals[rss_idx].unwrap() & 0xFF);
    }
}
