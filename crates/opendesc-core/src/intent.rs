//! Application intent: the set of semantics the application wants
//! delivered with each packet (paper Fig. 5 and §4 "Req ⊆ Σ").
//!
//! An intent is declared either as a P4 header whose fields carry
//! `@semantic` annotations (optionally `@cost` to re-price software
//! fallback for this application's workload), or programmatically through
//! [`Intent::builder`].

use opendesc_ir::semantics::{Cost, SemanticRegistry};
use opendesc_ir::SemanticId;
use opendesc_p4::typecheck::parse_and_check;
use std::collections::BTreeSet;
use std::fmt;

/// One requested metadata field.
#[derive(Debug, Clone, PartialEq)]
pub struct IntentField {
    pub semantic: SemanticId,
    /// Field name in the intent header (used in generated code).
    pub name: String,
    /// Requested width. The compiler checks the layout's slot fits.
    pub width_bits: u16,
}

/// A parsed application intent.
#[derive(Debug, Clone, PartialEq)]
pub struct Intent {
    /// Intent name (header type name or builder-assigned).
    pub name: String,
    pub fields: Vec<IntentField>,
}

/// Errors raised when parsing an intent.
#[derive(Debug, Clone, PartialEq)]
pub enum IntentError {
    /// The P4 source failed to parse/check.
    BadSource(String),
    /// No header with `@semantic` fields found.
    NoIntentHeader,
    /// A field lacks a `@semantic` annotation.
    UnannotatedField { header: String, field: String },
    /// The same semantic is requested twice.
    DuplicateSemantic(String),
}

impl fmt::Display for IntentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntentError::BadSource(m) => write!(f, "intent source error: {m}"),
            IntentError::NoIntentHeader => {
                write!(f, "no header with @semantic fields found in intent source")
            }
            IntentError::UnannotatedField { header, field } => write!(
                f,
                "field `{field}` of intent header `{header}` has no @semantic annotation"
            ),
            IntentError::DuplicateSemantic(s) => {
                write!(f, "semantic `{s}` requested more than once")
            }
        }
    }
}

impl std::error::Error for IntentError {}

impl Intent {
    /// Parse an intent from P4 source (Fig. 5 style). The first header
    /// whose fields all carry `@semantic` is the intent; `@cost(N)`
    /// annotations re-price that semantic's software fallback in `reg`.
    /// Unknown semantic names are registered with infinite software cost
    /// (the "new feature" extension hook) unless they carry `@cost`.
    pub fn from_p4(src: &str, reg: &mut SemanticRegistry) -> Result<Intent, IntentError> {
        let (checked, diags) = parse_and_check(src);
        if diags.has_errors() {
            return Err(IntentError::BadSource(
                diags
                    .iter()
                    .map(|d| d.message.clone())
                    .collect::<Vec<_>>()
                    .join("; "),
            ));
        }
        let header = checked
            .program
            .headers()
            .find(|h| h.fields.iter().any(|f| f.semantic().is_some()))
            .ok_or(IntentError::NoIntentHeader)?;
        let hinfo = checked
            .types
            .header_id(&header.name.name)
            .map(|id| checked.types.header(id))
            .ok_or(IntentError::NoIntentHeader)?;

        let mut fields = Vec::new();
        let mut seen = BTreeSet::new();
        for f in &hinfo.fields {
            let Some(sem_name) = f.semantic.as_deref() else {
                // Padding fields without a semantic are allowed only if
                // plainly named as padding; anything else is a likely bug.
                if f.name.starts_with("pad") || f.name.starts_with("reserved") {
                    continue;
                }
                return Err(IntentError::UnannotatedField {
                    header: hinfo.name.clone(),
                    field: f.name.clone(),
                });
            };
            let id = if let Some(cost) = f.cost {
                reg.register_custom(
                    sem_name,
                    f.width_bits,
                    Cost::flat(cost as f64),
                    "application-priced semantic",
                )
            } else {
                reg.intern(sem_name)
            };
            if !seen.insert(id) {
                return Err(IntentError::DuplicateSemantic(sem_name.to_string()));
            }
            fields.push(IntentField {
                semantic: id,
                name: f.name.clone(),
                width_bits: f.width_bits,
            });
        }
        Ok(Intent {
            name: hinfo.name.clone(),
            fields,
        })
    }

    /// Programmatic construction.
    pub fn builder(name: &str) -> IntentBuilder {
        IntentBuilder {
            intent: Intent {
                name: name.into(),
                fields: Vec::new(),
            },
        }
    }

    /// `Req`: the requested semantic set.
    pub fn req(&self) -> BTreeSet<SemanticId> {
        self.fields.iter().map(|f| f.semantic).collect()
    }

    /// The field requesting `sem`, if any.
    pub fn field_for(&self, sem: SemanticId) -> Option<&IntentField> {
        self.fields.iter().find(|f| f.semantic == sem)
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }
}

/// Builder for programmatic intents.
pub struct IntentBuilder {
    intent: Intent,
}

impl IntentBuilder {
    /// Request a well-known semantic by name, using its registry width.
    pub fn want(mut self, reg: &mut SemanticRegistry, sem_name: &str) -> Self {
        let id = reg.intern(sem_name);
        let width = reg.info(id).width_bits.max(1);
        self.intent.fields.push(IntentField {
            semantic: id,
            name: sem_name.to_string(),
            width_bits: width,
        });
        self
    }

    /// Request a custom semantic with an explicit width and software cost.
    pub fn want_custom(
        mut self,
        reg: &mut SemanticRegistry,
        sem_name: &str,
        width_bits: u16,
        cost: Cost,
    ) -> Self {
        let id = reg.register_custom(sem_name, width_bits, cost, "custom intent semantic");
        self.intent.fields.push(IntentField {
            semantic: id,
            name: sem_name.to_string(),
            width_bits,
        });
        self
    }

    pub fn build(self) -> Intent {
        self.intent
    }
}

/// The paper's Fig. 1 scenario as a ready-made intent source: checksum,
/// decapsulated VLAN TCI, RSS hash, and a KVS-offload result.
pub const FIG1_INTENT_P4: &str = r#"
header app_intent_t {
    @semantic("ip_checksum")  bit<16> csum;
    @semantic("vlan_tci")     bit<16> vlan;
    @semantic("rss_hash")     bit<32> rss;
    @semantic("kvs_key_hash") bit<32> kvs_key;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use opendesc_ir::names;

    #[test]
    fn parse_fig5_intent() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::from_p4(
            r#"
            header intent_t {
                @semantic("rss_hash") bit<32> rss_val;
                @semantic("vlan_tci") bit<16> vlan_tag;
                @semantic("ip_checksum") bit<16> csum;
            }
            "#,
            &mut reg,
        )
        .unwrap();
        assert_eq!(intent.name, "intent_t");
        assert_eq!(intent.len(), 3);
        assert!(intent.req().contains(&reg.id(names::RSS_HASH).unwrap()));
    }

    #[test]
    fn fig1_intent_constant_parses() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::from_p4(FIG1_INTENT_P4, &mut reg).unwrap();
        assert_eq!(intent.len(), 4);
    }

    #[test]
    fn cost_annotation_reprices_semantic() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::from_p4(
            r#"
            header i_t {
                @semantic("rss_hash") @cost(500) bit<32> rss;
            }
            "#,
            &mut reg,
        )
        .unwrap();
        let id = intent.fields[0].semantic;
        assert_eq!(reg.cost(id).eval(64), 500.0);
    }

    #[test]
    fn custom_semantic_interned_with_infinite_cost() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::from_p4(
            r#"
            header i_t {
                @semantic("my_new_offload") bit<64> v;
            }
            "#,
            &mut reg,
        )
        .unwrap();
        assert!(reg.cost(intent.fields[0].semantic).is_infinite());
    }

    #[test]
    fn unannotated_field_rejected_unless_padding() {
        let mut reg = SemanticRegistry::with_builtins();
        let err = Intent::from_p4(
            r#"
            header i_t {
                @semantic("rss_hash") bit<32> rss;
                bit<16> mystery;
            }
            "#,
            &mut reg,
        )
        .unwrap_err();
        assert!(matches!(err, IntentError::UnannotatedField { .. }));

        let ok = Intent::from_p4(
            r#"
            header i_t {
                @semantic("rss_hash") bit<32> rss;
                bit<16> pad0;
            }
            "#,
            &mut reg,
        )
        .unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn duplicate_semantic_rejected() {
        let mut reg = SemanticRegistry::with_builtins();
        let err = Intent::from_p4(
            r#"
            header i_t {
                @semantic("rss_hash") bit<32> a;
                @semantic("rss_hash") bit<32> b;
            }
            "#,
            &mut reg,
        )
        .unwrap_err();
        assert_eq!(err, IntentError::DuplicateSemantic("rss_hash".into()));
    }

    #[test]
    fn builder_equivalent_to_source() {
        let mut reg = SemanticRegistry::with_builtins();
        let built = Intent::builder("intent_t")
            .want(&mut reg, names::RSS_HASH)
            .want(&mut reg, names::VLAN_TCI)
            .build();
        assert_eq!(built.len(), 2);
        assert_eq!(built.fields[0].width_bits, 32);
        assert_eq!(built.fields[1].width_bits, 16);
    }

    #[test]
    fn bad_source_reports_diagnostics() {
        let mut reg = SemanticRegistry::with_builtins();
        let err = Intent::from_p4("header broken {", &mut reg).unwrap_err();
        assert!(matches!(err, IntentError::BadSource(_)));
    }

    #[test]
    fn no_semantic_header_rejected() {
        let mut reg = SemanticRegistry::with_builtins();
        let err = Intent::from_p4("header h_t { bit<8> x; }", &mut reg).unwrap_err();
        assert_eq!(err, IntentError::NoIntentHeader);
    }
}
