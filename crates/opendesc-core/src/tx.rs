//! TX compilation: align the host's transmit intent with the descriptor
//! layouts the NIC's `DescParser` accepts (paper §3 channel ①, §5
//! "synthesizing the complete driver datapath").
//!
//! Mirrors the RX pipeline: enumerate descriptor layouts, select by the
//! same Eq. 1 shape (software cost of offload hints the layout cannot
//! carry + descriptor DMA footprint), then synthesize a [`TxWriter`]
//! that serializes hint values at the layout's fixed offsets. Offloads
//! the layout cannot request are applied by the driver in software
//! before posting — using the same softnic fix-ups the device itself
//! uses, so the wire frame is identical either way.

use crate::compiler::CompileError;
use crate::intent::Intent;
use crate::select::{SelectError, Selector};
use crate::vm::{op, BcInsn, PlanProgram};
use opendesc_ir::bits::write_bits;
use opendesc_ir::semantics::{names, SemanticRegistry};
use opendesc_ir::txpath::{enumerate_tx_layouts, DescriptorLayout};
use opendesc_ir::{Assignment, SemanticId};
use opendesc_nicsim::nic::{NicError, SimNic};
use opendesc_p4::typecheck::parse_and_check;
use opendesc_softnic::fixup;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Serializes TX hint values into descriptor bytes at fixed offsets.
#[derive(Debug, Clone)]
pub struct TxWriter {
    /// `(semantic, offset_bits, width_bits)` for every writable slot.
    slots: Vec<(SemanticId, u32, u16)>,
    pub desc_bytes: u32,
}

impl TxWriter {
    /// Build from a layout.
    pub fn new(layout: &DescriptorLayout) -> TxWriter {
        let slots = layout
            .slots
            .iter()
            .filter_map(|s| s.semantic.map(|sem| (sem, s.offset_bits, s.width_bits)))
            .collect();
        TxWriter {
            slots,
            desc_bytes: layout.size_bytes(),
        }
    }

    /// Serialize a descriptor with the given hint values; semantics the
    /// layout has no slot for are ignored (the caller handles them in
    /// software).
    pub fn build(&self, values: &[(SemanticId, u128)]) -> Vec<u8> {
        let mut desc = vec![0u8; self.desc_bytes as usize];
        self.build_into(&mut desc, values);
        desc
    }

    /// Allocation-free [`TxWriter::build`]: serialize into a caller-owned
    /// buffer of exactly `desc_bytes` bytes (zeroed first, so a reused
    /// scratch buffer never leaks a previous descriptor's bits).
    pub fn build_into(&self, desc: &mut [u8], values: &[(SemanticId, u128)]) {
        assert_eq!(
            desc.len(),
            self.desc_bytes as usize,
            "descriptor scratch must match the layout size"
        );
        desc.fill(0);
        for (sem, off, width) in &self.slots {
            if let Some((_, v)) = values.iter().find(|(s, _)| s == sem) {
                write_bits(desc, *off, *width, *v);
            }
        }
    }

    /// `(semantic, offset_bits, width_bits)` for every writable slot.
    pub fn slots(&self) -> &[(SemanticId, u32, u16)] {
        &self.slots
    }

    /// Whether the layout carries a slot for `sem`.
    pub fn can_write(&self, sem: SemanticId) -> bool {
        self.slots.iter().any(|(s, _, _)| *s == sem)
    }
}

/// The product of TX compilation.
#[derive(Debug, Clone)]
pub struct CompiledTx {
    pub nic_name: String,
    pub layout: DescriptorLayout,
    /// H2C context steering the queue onto this layout.
    pub context: Option<Assignment>,
    pub writer: TxWriter,
    /// Requested TX semantics the layout cannot carry: the driver must
    /// perform these in software before posting.
    pub software: BTreeSet<SemanticId>,
    /// Names of the `software` semantics, resolved once at compile time
    /// so reporting them never re-walks the registry.
    software_names: Vec<String>,
    pub layouts_considered: usize,
}

impl CompiledTx {
    /// Names of software-fallback features (precomputed at compile time).
    pub fn software_features(&self) -> &[String] {
        &self.software_names
    }
}

/// Select the best TX layout for an intent (Eq. 1 over descriptor
/// layouts). Structural semantics (`buf_addr`, `buf_len`) are implicitly
/// required: a layout missing them cannot describe a transmit at all.
pub fn compile_tx(
    selector: &Selector,
    contract_src: &str,
    parser_name: &str,
    nic_name: &str,
    intent: &Intent,
    reg: &mut SemanticRegistry,
) -> Result<CompiledTx, CompileError> {
    let (checked, diags) = parse_and_check(contract_src);
    if diags.has_errors() {
        return Err(CompileError::Contract(
            diags
                .iter()
                .map(|d| d.message.clone())
                .collect::<Vec<_>>()
                .join("; "),
        ));
    }
    let layouts = enumerate_tx_layouts(&checked, parser_name, reg).map_err(|d| {
        CompileError::Extract(
            d.iter()
                .map(|x| x.message.clone())
                .collect::<Vec<_>>()
                .join("; "),
        )
    })?;
    if layouts.is_empty() {
        return Err(CompileError::Select(SelectError::NoPaths));
    }

    let mut req = intent.req();
    let buf_addr = reg.intern(names::BUF_ADDR);
    let buf_len = reg.intern(names::BUF_LEN);
    req.insert(buf_addr);
    req.insert(buf_len);

    // Score each layout with the same objective shape as RX.
    let mut best: Option<(f64, &DescriptorLayout, BTreeSet<SemanticId>)> = None;
    for l in &layouts {
        let missing: BTreeSet<SemanticId> = req
            .iter()
            .filter(|s| !l.consumes.contains(s))
            .copied()
            .collect();
        let soft_cost: f64 = missing
            .iter()
            .map(|s| reg.cost(*s).eval(selector.avg_pkt_len))
            .sum();
        let objective = soft_cost + selector.beta_ns_per_byte * l.size_bytes() as f64;
        if objective.is_finite() && best.as_ref().is_none_or(|(o, _, _)| objective < *o) {
            best = Some((objective, l, missing));
        }
    }
    let Some((_, layout, missing)) = best else {
        let uncomputable = req
            .iter()
            .filter(|s| reg.cost(**s).is_infinite())
            .map(|s| reg.name(*s).to_string())
            .collect();
        return Err(CompileError::Select(SelectError::Unsatisfiable {
            uncomputable,
        }));
    };
    // buf_addr/len are never "software" work — they were required above
    // to force infinite cost when absent; remove them from the fallback
    // set now that the layout is known to carry them.
    let software: BTreeSet<SemanticId> = missing
        .into_iter()
        .filter(|s| *s != buf_addr && *s != buf_len)
        .collect();
    let software_names = software.iter().map(|s| reg.name(*s).to_string()).collect();
    Ok(CompiledTx {
        nic_name: nic_name.to_string(),
        context: layout.solve_context(),
        writer: TxWriter::new(layout),
        layout: layout.clone(),
        software,
        software_names,
        layouts_considered: layouts.len(),
    })
}

/// TX offload requests for one frame.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxRequest {
    /// Insert the IPv4 header checksum.
    pub ip_csum: bool,
    /// Insert the L4 checksum.
    pub l4_csum: bool,
    /// Insert an 802.1Q tag with this TCI.
    pub vlan: Option<u16>,
}

/// The generated transmit half of the driver.
pub struct TxDriver {
    pub compiled: CompiledTx,
    reg: SemanticRegistry,
    // Interned once at attach so the send path never does name lookups.
    sem_addr: SemanticId,
    sem_len: SemanticId,
    sem_vlan: SemanticId,
    sem_ip: SemanticId,
    sem_l4: SemanticId,
    // Scratch reused across sends: after warm-up no send allocates
    // except the NIC-side `alloc_tx_buf` (the DMA buffer itself).
    frame_scratch: Vec<u8>,
    hints_scratch: Vec<(SemanticId, u128)>,
    desc_scratch: Vec<u8>,
}

impl TxDriver {
    /// Attach to a NIC: programs the H2C context.
    pub fn attach(
        nic: &mut SimNic,
        compiled: CompiledTx,
        reg: SemanticRegistry,
    ) -> Result<TxDriver, NicError> {
        if let Some(ctx) = &compiled.context {
            nic.configure_tx(ctx.clone());
        }
        let id = |n: &str| reg.id(n).expect("builtin semantic");
        let desc_scratch = vec![0u8; compiled.writer.desc_bytes as usize];
        Ok(TxDriver {
            sem_addr: id(names::BUF_ADDR),
            sem_len: id(names::BUF_LEN),
            sem_vlan: id(names::TX_VLAN_INSERT),
            sem_ip: id(names::TX_IP_CSUM),
            sem_l4: id(names::TX_L4_CSUM),
            compiled,
            reg,
            frame_scratch: Vec::new(),
            hints_scratch: Vec::new(),
            desc_scratch,
        })
    }

    /// The registry this driver was compiled against.
    pub fn registry(&self) -> &SemanticRegistry {
        &self.reg
    }

    /// Send one frame: offloads the layout carries become descriptor
    /// hints; the rest are applied in software before posting. Reuses
    /// internal scratch buffers, so steady-state sends allocate only the
    /// NIC-side DMA buffer.
    pub fn send(&mut self, nic: &mut SimNic, frame: &[u8], req: TxRequest) -> Result<(), NicError> {
        self.frame_scratch.clear();
        self.frame_scratch.extend_from_slice(frame);
        self.hints_scratch.clear();

        if let Some(tci) = req.vlan {
            if self.compiled.writer.can_write(self.sem_vlan) {
                self.hints_scratch.push((self.sem_vlan, tci as u128));
            } else {
                fixup::insert_vlan_in_place(&mut self.frame_scratch, tci);
            }
        }
        if req.ip_csum {
            if self.compiled.writer.can_write(self.sem_ip) {
                self.hints_scratch.push((self.sem_ip, 1));
            } else {
                fixup::fill_ipv4_checksum(&mut self.frame_scratch);
            }
        }
        if req.l4_csum {
            if self.compiled.writer.can_write(self.sem_l4) {
                self.hints_scratch.push((self.sem_l4, 1));
            } else {
                fixup::fill_l4_checksum(&mut self.frame_scratch);
            }
        }

        let addr = nic.alloc_tx_buf(&self.frame_scratch);
        self.hints_scratch.push((self.sem_addr, addr as u128));
        self.hints_scratch
            .push((self.sem_len, self.frame_scratch.len() as u128));
        self.compiled
            .writer
            .build_into(&mut self.desc_scratch, &self.hints_scratch);
        nic.post_tx(&self.desc_scratch)
    }
}

/// Canonical TX hint register file for the deparse bytecode. Every
/// compiled TX plan stores from the same five registers, so the batched
/// submit path fills one stack array per frame and runs the program —
/// no per-layout dispatch, no name lookups.
pub mod txreg {
    /// DMA address of the frame buffer.
    pub const BUF_ADDR: usize = 0;
    /// Frame length in bytes.
    pub const BUF_LEN: usize = 1;
    /// VLAN TCI to insert (0 = none).
    pub const VLAN: usize = 2;
    /// Request IPv4 header checksum insertion (0/1).
    pub const IP_CSUM: usize = 3;
    /// Request L4 checksum insertion (0/1).
    pub const L4_CSUM: usize = 4;
    /// Register file size.
    pub const COUNT: usize = 5;
}

/// Lower a compiled TX layout to deparse bytecode over the canonical
/// [`txreg`] register file: one store per descriptor slot, with the
/// store shape (aligned width vs. arbitrary bit field) resolved here,
/// once, instead of per packet. Slots whose semantic is outside the
/// canonical file are skipped — the layout may carry them, but this
/// driver never sets them, exactly like [`TxWriter::build`] with no
/// matching hint.
pub fn lower_tx(compiled: &CompiledTx, reg: &SemanticRegistry) -> PlanProgram {
    let canonical = [
        (reg.id(names::BUF_ADDR), txreg::BUF_ADDR),
        (reg.id(names::BUF_LEN), txreg::BUF_LEN),
        (reg.id(names::TX_VLAN_INSERT), txreg::VLAN),
        (reg.id(names::TX_IP_CSUM), txreg::IP_CSUM),
        (reg.id(names::TX_L4_CSUM), txreg::L4_CSUM),
    ];
    let mut deparse = Vec::new();
    for (sem, off, width) in compiled.writer.slots() {
        let Some(dst) = canonical
            .iter()
            .find_map(|(id, r)| (*id == Some(*sem)).then_some(*r as u8))
        else {
            continue;
        };
        let insn = if off % 8 == 0 {
            let byte = (off / 8) as u16;
            match *width {
                8 => BcInsn {
                    op: op::ST_BE1,
                    dst,
                    a: byte,
                    b: 1,
                },
                16 => BcInsn {
                    op: op::ST_BE2,
                    dst,
                    a: byte,
                    b: 2,
                },
                32 => BcInsn {
                    op: op::ST_BE4,
                    dst,
                    a: byte,
                    b: 4,
                },
                64 => BcInsn {
                    op: op::ST_BE8,
                    dst,
                    a: byte,
                    b: 8,
                },
                w if w % 8 == 0 => BcInsn {
                    op: op::ST_BYTES,
                    dst,
                    a: byte,
                    b: w / 8,
                },
                w => BcInsn {
                    op: op::ST_BITS,
                    dst,
                    a: *off as u16,
                    b: w,
                },
            }
        } else {
            BcInsn {
                op: op::ST_BITS,
                dst,
                a: *off as u16,
                b: *width,
            }
        };
        deparse.push(insn);
    }
    PlanProgram {
        deparse,
        ..PlanProgram::default()
    }
}

/// A fully-lowered TX artifact: the Eq. 1 layout match plus its deparse
/// bytecode and the software/hardware disposition of each offload,
/// resolved once at compile time. Shareable across queues behind an
/// `Arc`, like `CompiledRx`.
#[derive(Debug, Clone)]
pub struct CompiledTxPlan {
    pub tx: CompiledTx,
    /// Deparse program over the [`txreg`] register file.
    pub prog: PlanProgram,
    /// VLAN insertion must happen in driver software.
    pub sw_vlan: bool,
    /// IPv4 checksum must be filled in driver software.
    pub sw_ip_csum: bool,
    /// L4 checksum must be filled in driver software.
    pub sw_l4_csum: bool,
}

impl CompiledTxPlan {
    /// Lower a compiled TX layout into a plan.
    pub fn new(tx: CompiledTx, reg: &SemanticRegistry) -> CompiledTxPlan {
        let id = |n: &str| reg.id(n).expect("builtin semantic");
        let prog = lower_tx(&tx, reg);
        CompiledTxPlan {
            sw_vlan: !tx.writer.can_write(id(names::TX_VLAN_INSERT)),
            sw_ip_csum: !tx.writer.can_write(id(names::TX_IP_CSUM)),
            sw_l4_csum: !tx.writer.can_write(id(names::TX_L4_CSUM)),
            prog,
            tx,
        }
    }
}

/// A struct-of-arrays transmit batch: one flat frame arena (each slot
/// reserves 4 bytes of VLAN headroom so software tag insertion never
/// reallocates), a length column, and a request column. Reused across
/// submissions — `clear` keeps the arena.
pub struct TxBatch {
    arena: Vec<u8>,
    lens: Vec<u32>,
    reqs: Vec<TxRequest>,
    cap: usize,
    max_frame: usize,
    slot_bytes: usize,
}

impl TxBatch {
    /// A batch of up to `cap` frames of up to `max_frame` bytes each.
    pub fn new(cap: usize, max_frame: usize) -> TxBatch {
        let slot_bytes = max_frame + 4;
        TxBatch {
            arena: vec![0u8; cap * slot_bytes],
            lens: Vec::with_capacity(cap),
            reqs: Vec::with_capacity(cap),
            cap,
            max_frame,
            slot_bytes,
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.lens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Drop all frames; the arena stays allocated.
    pub fn clear(&mut self) {
        self.lens.clear();
        self.reqs.clear();
    }

    /// Copy a frame into the next arena slot. `false` when the batch is
    /// full or the frame exceeds `max_frame`.
    pub fn push(&mut self, frame: &[u8], req: TxRequest) -> bool {
        if self.lens.len() == self.cap || frame.len() > self.max_frame {
            return false;
        }
        let i = self.lens.len();
        self.arena[i * self.slot_bytes..i * self.slot_bytes + frame.len()].copy_from_slice(frame);
        self.lens.push(frame.len() as u32);
        self.reqs.push(req);
        true
    }

    /// The `i`-th frame at its current length (post-fixup after submit).
    pub fn frame(&self, i: usize) -> &[u8] {
        &self.arena[i * self.slot_bytes..i * self.slot_bytes + self.lens[i] as usize]
    }

    /// The `i`-th offload request.
    pub fn request(&self, i: usize) -> TxRequest {
        self.reqs[i]
    }

    fn slot_mut(&mut self, i: usize) -> &mut [u8] {
        &mut self.arena[i * self.slot_bytes..(i + 1) * self.slot_bytes]
    }
}

/// Counters for one batched TX queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxQueueStats {
    /// Frames submitted to the ring.
    pub frames: u64,
    /// Doorbells rung (one per non-empty submit).
    pub doorbells: u64,
    /// Software fix-ups applied (per offload, not per frame).
    pub sw_fixups: u64,
    /// Submits that could not place every frame (ring back-pressure).
    pub stalls: u64,
}

/// The batched, allocation-free transmit path. `attach` pre-allocates
/// one DMA buffer per ring entry; `submit` then reuses them round-robin,
/// reclaiming lazily from the NIC's consumed count — no completion
/// queue walk, no locks, no per-send allocation. The doorbell rings
/// once per batch.
pub struct TxQueue {
    plan: Arc<CompiledTxPlan>,
    /// Pre-allocated DMA slots, one per ring entry.
    slots: Vec<u64>,
    /// Frames submitted since attach.
    submitted: u64,
    /// NIC consumed-count at attach (the NIC may be shared with other
    /// traffic before this queue exists).
    cons_base: u64,
    desc_scratch: Vec<u8>,
    pub stats: TxQueueStats,
}

impl TxQueue {
    /// Attach to a NIC: program the H2C context and pre-allocate DMA
    /// buffers sized for `max_frame` plus VLAN headroom. The queue
    /// assumes exclusive use of the NIC's TX ring.
    pub fn attach(nic: &mut SimNic, plan: Arc<CompiledTxPlan>, max_frame: usize) -> TxQueue {
        if let Some(ctx) = &plan.tx.context {
            nic.configure_tx(ctx.clone());
        }
        let zero = vec![0u8; max_frame + 4];
        let slots = (0..nic.tx_ring.capacity())
            .map(|_| nic.host_mem.alloc(&zero))
            .collect();
        let desc_scratch = vec![0u8; plan.tx.writer.desc_bytes as usize];
        TxQueue {
            plan,
            slots,
            submitted: 0,
            cons_base: nic.tx_completed(),
            desc_scratch,
            stats: TxQueueStats::default(),
        }
    }

    /// The plan this queue executes.
    pub fn plan(&self) -> &Arc<CompiledTxPlan> {
        &self.plan
    }

    /// Live-swap the queue onto a new compiled TX plan: reprogram the
    /// H2C context and resize the descriptor scratch for the new
    /// writer's record — the transmit twin of the RX drain-and-flip.
    /// The caller must have quiesced the queue first
    /// ([`in_flight`](TxQueue::in_flight) = 0): descriptors written
    /// under the outgoing layout must not be consumed under the
    /// incoming context.
    pub fn set_plan(&mut self, nic: &mut SimNic, plan: Arc<CompiledTxPlan>) {
        if let Some(ctx) = &plan.tx.context {
            nic.configure_tx(ctx.clone());
        }
        self.desc_scratch = vec![0u8; plan.tx.writer.desc_bytes as usize];
        self.plan = plan;
    }

    /// Descriptors posted but not yet consumed by the device.
    pub fn in_flight(&self, nic: &SimNic) -> u64 {
        self.submitted - (nic.tx_completed() - self.cons_base)
    }

    /// Submit as many frames from the batch as the ring can take right
    /// now; returns the count placed. Software fix-ups run in the
    /// batch's arena slots (in place), the deparse bytecode fills the
    /// descriptor scratch, and the doorbell rings once at the end.
    pub fn submit(&mut self, nic: &mut SimNic, batch: &mut TxBatch) -> Result<usize, NicError> {
        self.submit_from(nic, batch, 0)
    }

    /// [`submit`](TxQueue::submit) starting at batch index `from` — the
    /// resubmission path after ring back-pressure. Fix-ups are safe to
    /// re-run on an already-fixed slot (VLAN insertion refuses a tagged
    /// frame; checksum fills are idempotent).
    pub fn submit_from(
        &mut self,
        nic: &mut SimNic,
        batch: &mut TxBatch,
        from: usize,
    ) -> Result<usize, NicError> {
        let free = self.slots.len() as u64 - self.in_flight(nic);
        let pending = batch.len().saturating_sub(from);
        let n = (pending as u64).min(free) as usize;
        let plan = Arc::clone(&self.plan);
        for i in from..from + n {
            let req = batch.reqs[i];
            let mut len = batch.lens[i] as usize;
            {
                let slot = batch.slot_mut(i);
                if let Some(tci) = req.vlan {
                    if plan.sw_vlan {
                        if let Some(nl) = fixup::insert_vlan_in_slice(slot, len, tci) {
                            len = nl;
                            self.stats.sw_fixups += 1;
                        }
                    }
                }
                if req.ip_csum && plan.sw_ip_csum && fixup::fill_ipv4_checksum(&mut slot[..len]) {
                    self.stats.sw_fixups += 1;
                }
                if req.l4_csum && plan.sw_l4_csum && fixup::fill_l4_checksum(&mut slot[..len]) {
                    self.stats.sw_fixups += 1;
                }
            }
            batch.lens[i] = len as u32;
            let dma = self.slots[(self.submitted % self.slots.len() as u64) as usize];
            nic.host_mem.write(dma, batch.frame(i));
            let hints: [u128; txreg::COUNT] = [
                dma as u128,
                len as u128,
                match req.vlan {
                    Some(t) if !plan.sw_vlan => t as u128,
                    _ => 0,
                },
                (req.ip_csum && !plan.sw_ip_csum) as u128,
                (req.l4_csum && !plan.sw_l4_csum) as u128,
            ];
            plan.prog.run_deparse(&hints, &mut self.desc_scratch);
            nic.post_tx_deferred(&self.desc_scratch)?;
            self.submitted += 1;
        }
        if n > 0 {
            nic.ring_tx_doorbell();
            self.stats.doorbells += 1;
            self.stats.frames += n as u64;
        }
        if n < pending {
            self.stats.stalls += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opendesc_nicsim::models;
    use opendesc_softnic::checksum::{verify_ipv4_checksum, verify_l4_checksum};
    use opendesc_softnic::testpkt;
    use opendesc_softnic::wire::ParsedFrame;

    fn zeroed_frame() -> Vec<u8> {
        let mut f = testpkt::udp4([10, 7, 0, 1], [10, 7, 0, 2], 50, 60, b"send me", None);
        f[24] = 0;
        f[25] = 0;
        f[40] = 0;
        f[41] = 0;
        f
    }

    fn tx_intent(reg: &mut SemanticRegistry) -> Intent {
        Intent::builder("tx")
            .want(reg, names::TX_L4_CSUM)
            .want(reg, names::TX_VLAN_INSERT)
            .build()
    }

    #[test]
    fn qdma_tx_selects_extended_layout_for_offload_intent() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = tx_intent(&mut reg);
        let model = models::qdma_default();
        let compiled = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap();
        assert_eq!(compiled.layouts_considered, 2);
        assert_eq!(
            compiled.layout.size_bytes(),
            16,
            "extended layout carries the hints"
        );
        assert!(compiled.software.is_empty());
        // Context selects desc_size = 16.
        let ctx = compiled.context.as_ref().unwrap();
        assert_eq!(ctx.values().next(), Some(&16));
    }

    #[test]
    fn plain_intent_prefers_small_descriptor() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("plain").build(); // just buf_addr/len
        let model = models::qdma_default();
        let compiled = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap();
        assert_eq!(compiled.layout.size_bytes(), 12, "12B base layout suffices");
    }

    #[test]
    fn hardware_offload_end_to_end() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = tx_intent(&mut reg);
        let model = models::qdma_default();
        let compiled = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap();
        let mut nic = SimNic::new(model, 16).unwrap();
        let mut tx = TxDriver::attach(&mut nic, compiled, reg).unwrap();

        tx.send(
            &mut nic,
            &zeroed_frame(),
            TxRequest {
                l4_csum: true,
                vlan: Some(0x0077),
                ..Default::default()
            },
        )
        .unwrap();
        let sent = nic.process_tx();
        assert_eq!(sent.len(), 1);
        let wire = &sent[0];
        let p = ParsedFrame::parse(wire).unwrap();
        assert_eq!(p.vlan_tci, Some(0x0077), "NIC inserted the tag");
        assert!(verify_l4_checksum(&p), "NIC filled the L4 checksum");
        assert_eq!(nic.tx_stats.frames, 1);
    }

    #[test]
    fn software_fallback_produces_identical_wire_frame() {
        // e1000e TX carries only the IP-csum hint: L4 csum and VLAN must
        // fall back to driver software. The wire frame must be
        // byte-identical to the hardware-offload result.
        let mut reg_hw = SemanticRegistry::with_builtins();
        let intent_hw = tx_intent(&mut reg_hw);
        let qdma = models::qdma_default();
        let ctx_hw = compile_tx(
            &Selector::default(),
            &qdma.p4_source,
            "DescParser",
            &qdma.name,
            &intent_hw,
            &mut reg_hw,
        )
        .unwrap();
        let mut nic_hw = SimNic::new(qdma, 16).unwrap();
        let mut tx_hw = TxDriver::attach(&mut nic_hw, ctx_hw, reg_hw).unwrap();

        let mut reg_sw = SemanticRegistry::with_builtins();
        let intent_sw = tx_intent(&mut reg_sw);
        let e1000e = models::e1000e();
        let ctx_sw = compile_tx(
            &Selector::default(),
            &e1000e.p4_source,
            "DescParser",
            &e1000e.name,
            &intent_sw,
            &mut reg_sw,
        )
        .unwrap();
        assert!(
            !ctx_sw.software.is_empty(),
            "e1000e must report software TX features: {:?}",
            ctx_sw.software_features()
        );
        let mut nic_sw = SimNic::new(e1000e, 16).unwrap();
        let mut tx_sw = TxDriver::attach(&mut nic_sw, ctx_sw, reg_sw).unwrap();

        let req = TxRequest {
            l4_csum: true,
            vlan: Some(0x0123),
            ..Default::default()
        };
        tx_hw.send(&mut nic_hw, &zeroed_frame(), req).unwrap();
        tx_sw.send(&mut nic_sw, &zeroed_frame(), req).unwrap();
        let a = nic_hw.process_tx().remove(0);
        let b = nic_sw.process_tx().remove(0);
        assert_eq!(
            a, b,
            "hardware offload and software fallback diverge on the wire"
        );
    }

    #[test]
    fn ip_csum_offload_on_e1000e() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("t")
            .want(&mut reg, names::TX_IP_CSUM)
            .build();
        let model = models::e1000e();
        let compiled = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap();
        assert!(
            compiled.software.is_empty(),
            "e1000e carries the IP-csum hint"
        );
        let mut nic = SimNic::new(model, 16).unwrap();
        let mut tx = TxDriver::attach(&mut nic, compiled, reg).unwrap();
        tx.send(
            &mut nic,
            &zeroed_frame(),
            TxRequest {
                ip_csum: true,
                ..Default::default()
            },
        )
        .unwrap();
        let wire = nic.process_tx().remove(0);
        assert!(verify_ipv4_checksum(&wire[14..34]));
    }

    #[test]
    fn missing_parser_is_select_error() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("t").build();
        let model = models::mlx5(); // no TX parser in this model
        let err = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::Extract(_)));
    }

    #[test]
    fn writer_only_writes_known_slots() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("t").build();
        let model = models::qdma_default();
        let compiled = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap();
        let addr = reg.id(names::BUF_ADDR).unwrap();
        let vlan = reg.id(names::TX_VLAN_INSERT).unwrap();
        assert!(compiled.writer.can_write(addr));
        assert!(
            !compiled.writer.can_write(vlan),
            "12B layout has no vlan slot"
        );
        let desc = compiled.writer.build(&[(addr, 0xABCD), (vlan, 7)]);
        assert_eq!(desc.len(), 12);
        assert_eq!(&desc[..8], &0xABCDu64.to_be_bytes());
    }

    #[test]
    fn deparse_bytecode_matches_writer_on_every_model() {
        // For each TX-capable model: lower the layout and check the
        // bytecode produces byte-identical descriptors to TxWriter.
        for model in [
            models::e1000_legacy(),
            models::e1000e(),
            models::ice(),
            models::qdma_default(),
        ] {
            let mut reg = SemanticRegistry::with_builtins();
            let intent = tx_intent(&mut reg);
            let compiled = compile_tx(
                &Selector::default(),
                &model.p4_source,
                "DescParser",
                &model.name,
                &intent,
                &mut reg,
            )
            .unwrap();
            let plan = CompiledTxPlan::new(compiled, &reg);
            let id = |n: &str| reg.id(n).expect("builtin");
            let cases: [(u64, usize, u16, bool, bool); 3] = [
                (0x1000, 60, 0x0123, true, true),
                (0xFFFF_FF00, 1514, 0, false, true),
                (0x2468, 64, 0x0FFF, true, false),
            ];
            for (addr, len, tci, ip, l4) in cases {
                let mut hints: Vec<(SemanticId, u128)> = vec![
                    (id(names::BUF_ADDR), addr as u128),
                    (id(names::BUF_LEN), len as u128),
                ];
                let mut regs = [0u128; txreg::COUNT];
                regs[txreg::BUF_ADDR] = addr as u128;
                regs[txreg::BUF_LEN] = len as u128;
                if !plan.sw_vlan {
                    hints.push((id(names::TX_VLAN_INSERT), tci as u128));
                    regs[txreg::VLAN] = tci as u128;
                }
                if ip && !plan.sw_ip_csum {
                    hints.push((id(names::TX_IP_CSUM), 1));
                    regs[txreg::IP_CSUM] = 1;
                }
                if l4 && !plan.sw_l4_csum {
                    hints.push((id(names::TX_L4_CSUM), 1));
                    regs[txreg::L4_CSUM] = 1;
                }
                let golden = plan.tx.writer.build(&hints);
                let mut desc = vec![0xFFu8; golden.len()];
                plan.prog.run_deparse(&regs, &mut desc);
                assert_eq!(desc, golden, "bytecode deparse diverges on {}", model.name);
            }
        }
    }

    #[test]
    fn build_into_matches_build() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = tx_intent(&mut reg);
        let model = models::qdma_default();
        let compiled = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap();
        let addr = reg.id(names::BUF_ADDR).unwrap();
        let hints = [(addr, 0xDEAD_BEEFu128)];
        let golden = compiled.writer.build(&hints);
        let mut scratch = vec![0xAAu8; compiled.writer.desc_bytes as usize];
        compiled.writer.build_into(&mut scratch, &hints);
        assert_eq!(scratch, golden, "stale scratch bytes must be zeroed");
    }

    #[test]
    fn batched_queue_rings_one_doorbell_and_respects_ring_capacity() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = tx_intent(&mut reg);
        let model = models::qdma_default();
        let compiled = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap();
        let mut nic = SimNic::new(model, 8).unwrap();
        let plan = Arc::new(CompiledTxPlan::new(compiled, &reg));
        let mut q = TxQueue::attach(&mut nic, plan, 256);

        let mut batch = TxBatch::new(16, 256);
        for _ in 0..12 {
            assert!(batch.push(
                &zeroed_frame(),
                TxRequest {
                    l4_csum: true,
                    vlan: Some(0x0042),
                    ..Default::default()
                },
            ));
        }
        // Ring holds 8: first submit places 8, rings once, stalls.
        let placed = q.submit(&mut nic, &mut batch).unwrap();
        assert_eq!(placed, 8);
        assert_eq!(q.stats.doorbells, 1);
        assert_eq!(q.stats.stalls, 1);
        assert_eq!(q.in_flight(&nic), 8);
        // Device drains; the remaining 4 go out after completions free
        // ring slots (submit skips already-placed frames via a fresh
        // batch here for simplicity).
        assert_eq!(nic.process_tx_drain(), 8);
        assert_eq!(q.in_flight(&nic), 0);
        // Only the placed prefix was fixed up in the arena; 8..12 are
        // still pristine copies and can be re-pushed as-is.
        let mut rest = TxBatch::new(4, 256);
        for i in 8..12 {
            assert!(rest.push(batch.frame(i), batch.request(i)));
        }
        let placed = q.submit(&mut nic, &mut rest).unwrap();
        assert_eq!(placed, 4);
        assert_eq!(q.stats.doorbells, 2);
        assert_eq!(nic.process_tx_drain(), 4);
        assert_eq!(nic.tx_stats.frames, 12);
        assert_eq!(nic.tx_stats.parse_rejects, 0);
        assert_eq!(nic.tx_stats.bad_buffers, 0);
    }

    #[test]
    fn batched_queue_matches_seed_send_on_the_wire() {
        // The batched path and the seed per-send path must emit
        // byte-identical wire frames — hardware offload on qdma,
        // software fallback on e1000e.
        for model_fn in [models::qdma_default, models::e1000e] {
            let mut reg_a = SemanticRegistry::with_builtins();
            let intent_a = tx_intent(&mut reg_a);
            let model = model_fn();
            let name = model.name.clone();
            let compiled_a = compile_tx(
                &Selector::default(),
                &model.p4_source,
                "DescParser",
                &name,
                &intent_a,
                &mut reg_a,
            )
            .unwrap();
            let mut nic_a = SimNic::new(model_fn(), 32).unwrap();
            let mut drv = TxDriver::attach(&mut nic_a, compiled_a, reg_a).unwrap();

            let mut reg_b = SemanticRegistry::with_builtins();
            let intent_b = tx_intent(&mut reg_b);
            let compiled_b = compile_tx(
                &Selector::default(),
                &model.p4_source,
                "DescParser",
                &name,
                &intent_b,
                &mut reg_b,
            )
            .unwrap();
            let mut nic_b = SimNic::new(model_fn(), 32).unwrap();
            let plan = Arc::new(CompiledTxPlan::new(compiled_b, &reg_b));
            let mut q = TxQueue::attach(&mut nic_b, plan, 256);

            let reqs = [
                TxRequest {
                    l4_csum: true,
                    vlan: Some(0x0123),
                    ..Default::default()
                },
                TxRequest {
                    ip_csum: true,
                    ..Default::default()
                },
                TxRequest::default(),
            ];
            let mut batch = TxBatch::new(8, 256);
            for req in reqs {
                drv.send(&mut nic_a, &zeroed_frame(), req).unwrap();
                assert!(batch.push(&zeroed_frame(), req));
            }
            assert_eq!(q.submit(&mut nic_b, &mut batch).unwrap(), 3);
            let a = nic_a.process_tx();
            let b = nic_b.process_tx();
            assert_eq!(a, b, "batched TX diverges from seed send on {name}");
        }
    }
}
