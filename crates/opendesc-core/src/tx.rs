//! TX compilation: align the host's transmit intent with the descriptor
//! layouts the NIC's `DescParser` accepts (paper §3 channel ①, §5
//! "synthesizing the complete driver datapath").
//!
//! Mirrors the RX pipeline: enumerate descriptor layouts, select by the
//! same Eq. 1 shape (software cost of offload hints the layout cannot
//! carry + descriptor DMA footprint), then synthesize a [`TxWriter`]
//! that serializes hint values at the layout's fixed offsets. Offloads
//! the layout cannot request are applied by the driver in software
//! before posting — using the same softnic fix-ups the device itself
//! uses, so the wire frame is identical either way.

use crate::compiler::CompileError;
use crate::intent::Intent;
use crate::select::{SelectError, Selector};
use opendesc_ir::bits::write_bits;
use opendesc_ir::semantics::{names, SemanticRegistry};
use opendesc_ir::txpath::{enumerate_tx_layouts, DescriptorLayout};
use opendesc_ir::{Assignment, SemanticId};
use opendesc_nicsim::nic::{NicError, SimNic};
use opendesc_p4::typecheck::parse_and_check;
use opendesc_softnic::fixup;
use std::collections::BTreeSet;

/// Serializes TX hint values into descriptor bytes at fixed offsets.
#[derive(Debug, Clone)]
pub struct TxWriter {
    /// `(semantic, offset_bits, width_bits)` for every writable slot.
    slots: Vec<(SemanticId, u32, u16)>,
    pub desc_bytes: u32,
}

impl TxWriter {
    /// Build from a layout.
    pub fn new(layout: &DescriptorLayout) -> TxWriter {
        let slots = layout
            .slots
            .iter()
            .filter_map(|s| s.semantic.map(|sem| (sem, s.offset_bits, s.width_bits)))
            .collect();
        TxWriter {
            slots,
            desc_bytes: layout.size_bytes(),
        }
    }

    /// Serialize a descriptor with the given hint values; semantics the
    /// layout has no slot for are ignored (the caller handles them in
    /// software).
    pub fn build(&self, values: &[(SemanticId, u128)]) -> Vec<u8> {
        let mut desc = vec![0u8; self.desc_bytes as usize];
        for (sem, off, width) in &self.slots {
            if let Some((_, v)) = values.iter().find(|(s, _)| s == sem) {
                write_bits(&mut desc, *off, *width, *v);
            }
        }
        desc
    }

    /// Whether the layout carries a slot for `sem`.
    pub fn can_write(&self, sem: SemanticId) -> bool {
        self.slots.iter().any(|(s, _, _)| *s == sem)
    }
}

/// The product of TX compilation.
#[derive(Debug, Clone)]
pub struct CompiledTx {
    pub nic_name: String,
    pub layout: DescriptorLayout,
    /// H2C context steering the queue onto this layout.
    pub context: Option<Assignment>,
    pub writer: TxWriter,
    /// Requested TX semantics the layout cannot carry: the driver must
    /// perform these in software before posting.
    pub software: BTreeSet<SemanticId>,
    pub layouts_considered: usize,
}

impl CompiledTx {
    /// Names of software-fallback features.
    pub fn software_features<'r>(&self, reg: &'r SemanticRegistry) -> Vec<&'r str> {
        self.software.iter().map(|s| reg.name(*s)).collect()
    }
}

/// Select the best TX layout for an intent (Eq. 1 over descriptor
/// layouts). Structural semantics (`buf_addr`, `buf_len`) are implicitly
/// required: a layout missing them cannot describe a transmit at all.
pub fn compile_tx(
    selector: &Selector,
    contract_src: &str,
    parser_name: &str,
    nic_name: &str,
    intent: &Intent,
    reg: &mut SemanticRegistry,
) -> Result<CompiledTx, CompileError> {
    let (checked, diags) = parse_and_check(contract_src);
    if diags.has_errors() {
        return Err(CompileError::Contract(
            diags
                .iter()
                .map(|d| d.message.clone())
                .collect::<Vec<_>>()
                .join("; "),
        ));
    }
    let layouts = enumerate_tx_layouts(&checked, parser_name, reg).map_err(|d| {
        CompileError::Extract(
            d.iter()
                .map(|x| x.message.clone())
                .collect::<Vec<_>>()
                .join("; "),
        )
    })?;
    if layouts.is_empty() {
        return Err(CompileError::Select(SelectError::NoPaths));
    }

    let mut req = intent.req();
    let buf_addr = reg.intern(names::BUF_ADDR);
    let buf_len = reg.intern(names::BUF_LEN);
    req.insert(buf_addr);
    req.insert(buf_len);

    // Score each layout with the same objective shape as RX.
    let mut best: Option<(f64, &DescriptorLayout, BTreeSet<SemanticId>)> = None;
    for l in &layouts {
        let missing: BTreeSet<SemanticId> = req
            .iter()
            .filter(|s| !l.consumes.contains(s))
            .copied()
            .collect();
        let soft_cost: f64 = missing
            .iter()
            .map(|s| reg.cost(*s).eval(selector.avg_pkt_len))
            .sum();
        let objective = soft_cost + selector.beta_ns_per_byte * l.size_bytes() as f64;
        if objective.is_finite() && best.as_ref().is_none_or(|(o, _, _)| objective < *o) {
            best = Some((objective, l, missing));
        }
    }
    let Some((_, layout, missing)) = best else {
        let uncomputable = req
            .iter()
            .filter(|s| reg.cost(**s).is_infinite())
            .map(|s| reg.name(*s).to_string())
            .collect();
        return Err(CompileError::Select(SelectError::Unsatisfiable {
            uncomputable,
        }));
    };
    // buf_addr/len are never "software" work — they were required above
    // to force infinite cost when absent; remove them from the fallback
    // set now that the layout is known to carry them.
    let software: BTreeSet<SemanticId> = missing
        .into_iter()
        .filter(|s| *s != buf_addr && *s != buf_len)
        .collect();
    Ok(CompiledTx {
        nic_name: nic_name.to_string(),
        context: layout.solve_context(),
        writer: TxWriter::new(layout),
        layout: layout.clone(),
        software,
        layouts_considered: layouts.len(),
    })
}

/// TX offload requests for one frame.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxRequest {
    /// Insert the IPv4 header checksum.
    pub ip_csum: bool,
    /// Insert the L4 checksum.
    pub l4_csum: bool,
    /// Insert an 802.1Q tag with this TCI.
    pub vlan: Option<u16>,
}

/// The generated transmit half of the driver.
pub struct TxDriver {
    pub compiled: CompiledTx,
    reg: SemanticRegistry,
}

impl TxDriver {
    /// Attach to a NIC: programs the H2C context.
    pub fn attach(
        nic: &mut SimNic,
        compiled: CompiledTx,
        reg: SemanticRegistry,
    ) -> Result<TxDriver, NicError> {
        if let Some(ctx) = &compiled.context {
            nic.configure_tx(ctx.clone());
        }
        Ok(TxDriver { compiled, reg })
    }

    /// Send one frame: offloads the layout carries become descriptor
    /// hints; the rest are applied in software before posting.
    pub fn send(&mut self, nic: &mut SimNic, frame: &[u8], req: TxRequest) -> Result<(), NicError> {
        let mut frame = frame.to_vec();
        let id = |n: &str| self.reg.id(n).expect("builtin semantic");
        let mut hints: Vec<(SemanticId, u128)> = Vec::new();

        if let Some(tci) = req.vlan {
            let sem = id(names::TX_VLAN_INSERT);
            if self.compiled.writer.can_write(sem) {
                hints.push((sem, tci as u128));
            } else if let Some(tagged) = fixup::insert_vlan(&frame, tci) {
                frame = tagged;
            }
        }
        if req.ip_csum {
            let sem = id(names::TX_IP_CSUM);
            if self.compiled.writer.can_write(sem) {
                hints.push((sem, 1));
            } else {
                fixup::fill_ipv4_checksum(&mut frame);
            }
        }
        if req.l4_csum {
            let sem = id(names::TX_L4_CSUM);
            if self.compiled.writer.can_write(sem) {
                hints.push((sem, 1));
            } else {
                fixup::fill_l4_checksum(&mut frame);
            }
        }

        let addr = nic.alloc_tx_buf(&frame);
        hints.push((id(names::BUF_ADDR), addr as u128));
        hints.push((id(names::BUF_LEN), frame.len() as u128));
        let desc = self.compiled.writer.build(&hints);
        nic.post_tx(&desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opendesc_nicsim::models;
    use opendesc_softnic::checksum::{verify_ipv4_checksum, verify_l4_checksum};
    use opendesc_softnic::testpkt;
    use opendesc_softnic::wire::ParsedFrame;

    fn zeroed_frame() -> Vec<u8> {
        let mut f = testpkt::udp4([10, 7, 0, 1], [10, 7, 0, 2], 50, 60, b"send me", None);
        f[24] = 0;
        f[25] = 0;
        f[40] = 0;
        f[41] = 0;
        f
    }

    fn tx_intent(reg: &mut SemanticRegistry) -> Intent {
        Intent::builder("tx")
            .want(reg, names::TX_L4_CSUM)
            .want(reg, names::TX_VLAN_INSERT)
            .build()
    }

    #[test]
    fn qdma_tx_selects_extended_layout_for_offload_intent() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = tx_intent(&mut reg);
        let model = models::qdma_default();
        let compiled = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap();
        assert_eq!(compiled.layouts_considered, 2);
        assert_eq!(
            compiled.layout.size_bytes(),
            16,
            "extended layout carries the hints"
        );
        assert!(compiled.software.is_empty());
        // Context selects desc_size = 16.
        let ctx = compiled.context.as_ref().unwrap();
        assert_eq!(ctx.values().next(), Some(&16));
    }

    #[test]
    fn plain_intent_prefers_small_descriptor() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("plain").build(); // just buf_addr/len
        let model = models::qdma_default();
        let compiled = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap();
        assert_eq!(compiled.layout.size_bytes(), 12, "12B base layout suffices");
    }

    #[test]
    fn hardware_offload_end_to_end() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = tx_intent(&mut reg);
        let model = models::qdma_default();
        let compiled = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap();
        let mut nic = SimNic::new(model, 16).unwrap();
        let mut tx = TxDriver::attach(&mut nic, compiled, reg).unwrap();

        tx.send(
            &mut nic,
            &zeroed_frame(),
            TxRequest {
                l4_csum: true,
                vlan: Some(0x0077),
                ..Default::default()
            },
        )
        .unwrap();
        let sent = nic.process_tx();
        assert_eq!(sent.len(), 1);
        let wire = &sent[0];
        let p = ParsedFrame::parse(wire).unwrap();
        assert_eq!(p.vlan_tci, Some(0x0077), "NIC inserted the tag");
        assert!(verify_l4_checksum(&p), "NIC filled the L4 checksum");
        assert_eq!(nic.tx_stats.frames, 1);
    }

    #[test]
    fn software_fallback_produces_identical_wire_frame() {
        // e1000e TX carries only the IP-csum hint: L4 csum and VLAN must
        // fall back to driver software. The wire frame must be
        // byte-identical to the hardware-offload result.
        let mut reg_hw = SemanticRegistry::with_builtins();
        let intent_hw = tx_intent(&mut reg_hw);
        let qdma = models::qdma_default();
        let ctx_hw = compile_tx(
            &Selector::default(),
            &qdma.p4_source,
            "DescParser",
            &qdma.name,
            &intent_hw,
            &mut reg_hw,
        )
        .unwrap();
        let mut nic_hw = SimNic::new(qdma, 16).unwrap();
        let mut tx_hw = TxDriver::attach(&mut nic_hw, ctx_hw, reg_hw).unwrap();

        let mut reg_sw = SemanticRegistry::with_builtins();
        let intent_sw = tx_intent(&mut reg_sw);
        let e1000e = models::e1000e();
        let ctx_sw = compile_tx(
            &Selector::default(),
            &e1000e.p4_source,
            "DescParser",
            &e1000e.name,
            &intent_sw,
            &mut reg_sw,
        )
        .unwrap();
        assert!(
            !ctx_sw.software.is_empty(),
            "e1000e must report software TX features: {:?}",
            ctx_sw.software_features(&reg_sw)
        );
        let mut nic_sw = SimNic::new(e1000e, 16).unwrap();
        let mut tx_sw = TxDriver::attach(&mut nic_sw, ctx_sw, reg_sw).unwrap();

        let req = TxRequest {
            l4_csum: true,
            vlan: Some(0x0123),
            ..Default::default()
        };
        tx_hw.send(&mut nic_hw, &zeroed_frame(), req).unwrap();
        tx_sw.send(&mut nic_sw, &zeroed_frame(), req).unwrap();
        let a = nic_hw.process_tx().remove(0);
        let b = nic_sw.process_tx().remove(0);
        assert_eq!(
            a, b,
            "hardware offload and software fallback diverge on the wire"
        );
    }

    #[test]
    fn ip_csum_offload_on_e1000e() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("t")
            .want(&mut reg, names::TX_IP_CSUM)
            .build();
        let model = models::e1000e();
        let compiled = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap();
        assert!(
            compiled.software.is_empty(),
            "e1000e carries the IP-csum hint"
        );
        let mut nic = SimNic::new(model, 16).unwrap();
        let mut tx = TxDriver::attach(&mut nic, compiled, reg).unwrap();
        tx.send(
            &mut nic,
            &zeroed_frame(),
            TxRequest {
                ip_csum: true,
                ..Default::default()
            },
        )
        .unwrap();
        let wire = nic.process_tx().remove(0);
        assert!(verify_ipv4_checksum(&wire[14..34]));
    }

    #[test]
    fn missing_parser_is_select_error() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("t").build();
        let model = models::mlx5(); // no TX parser in this model
        let err = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::Extract(_)));
    }

    #[test]
    fn writer_only_writes_known_slots() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("t").build();
        let model = models::qdma_default();
        let compiled = compile_tx(
            &Selector::default(),
            &model.p4_source,
            "DescParser",
            &model.name,
            &intent,
            &mut reg,
        )
        .unwrap();
        let addr = reg.id(names::BUF_ADDR).unwrap();
        let vlan = reg.id(names::TX_VLAN_INSERT).unwrap();
        assert!(compiled.writer.can_write(addr));
        assert!(
            !compiled.writer.can_write(vlan),
            "12B layout has no vlan slot"
        );
        let desc = compiled.writer.build(&[(addr, 0xABCD), (vlan, 7)]);
        assert_eq!(desc.len(), 12);
        assert_eq!(&desc[..8], &0xABCDu64.to_be_bytes());
    }
}
