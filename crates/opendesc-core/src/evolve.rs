//! Live interface evolution: hot relayout of a running queue onto a new
//! compiled interface, with zero packet loss and no reordering within a
//! flow (paper §4 — the descriptor interface as an *evolvable* contract,
//! renegotiated at runtime rather than frozen at driver build time).
//!
//! The unit of evolution is the *drain-and-flip*: a queue stops taking
//! new frames, drains its in-flight work under the outgoing plan, then
//! atomically swaps — device context reprogram plus host plan swap —
//! onto the incoming generation. The protocol is deliberately built
//! from the robustness machinery that already polices a faulty device:
//!
//! * **Generation-tagged epochs.** Each committed flip bumps the
//!   driver's plan generation and the device's ring generation. Old
//!   plans stay pinned in the [`PlanCache`](crate::cache::PlanCache)
//!   (`Arc` refcount = in-flight pin) until the last queue drops them,
//!   then [`evict_superseded`](crate::cache::PlanCache::evict_superseded)
//!   reclaims them — N relayouts hold ≤2 live generations per key.
//! * **Transition-window shims.** During the drain, writebacks
//!   serialized under the *old* layout are parsed by the *old* plan —
//!   the host swap happens strictly after the device ring ticks, so no
//!   completion is ever read through the wrong accessor table. Anything
//!   the device strands across the tick is re-tagged into the
//!   stale-generation fault class and discarded by sequence admission
//!   instead of being misparsed.
//! * **Health-machine interplay.** A relayout requested while the queue
//!   is `Degraded` is *parked* ([`FlipProgress::Deferred`]): a queue
//!   that just caught the device lying should not also renegotiate the
//!   contract. The request is retried at later control boundaries and
//!   commits once health recovers. `Recovering` does not defer.
//! * **Roll-forward on watchdog reset.** If the watchdog declares a
//!   stall *mid-flip*, recovery reprograms the queue onto the **new**
//!   ring generation instead of re-arming the old one — the flip can be
//!   accelerated by a crash, never wedged or rolled back.

use crate::cache::CompiledRx;
use crate::shard::ShardReport;
use opendesc_telemetry::MetricRegistry;
use std::sync::Arc;

/// Default drain budget: polls a queue may spend draining before the
/// flip is forced (stragglers forgiven and stranded device-side). E19
/// gates observed flip latency at this many polls.
pub const FLIP_POLL_BUDGET: u32 = 16;

/// Where a queue's relayout stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipProgress {
    /// No relayout pending.
    Idle,
    /// Parked: requested while the queue was `Degraded`; retried once
    /// health recovers.
    Deferred,
    /// Draining in-flight work under the outgoing plan.
    Draining,
    /// Committed onto this plan generation.
    Committed(u64),
}

/// Per-queue relayout counters, registered under `{scope}.relayout`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayoutCounters {
    /// Relayouts requested (including ones later deferred).
    pub requested: u64,
    /// Requests parked because the queue was `Degraded`.
    pub deferred: u64,
    /// Flips committed (device + host on the new generation).
    pub completed: u64,
    /// Watchdog resets mid-flip that rolled the device forward to the
    /// new ring generation.
    pub rolled_forward: u64,
}

impl RelayoutCounters {
    /// Register the counters under `scope` (callers pass
    /// `…​.relayout`). Registered per queue and again under the engine
    /// scope, where additive folding produces engine totals.
    pub fn register_into(&self, reg: &mut MetricRegistry, scope: &str) {
        reg.counter(&format!("{scope}.requested"), self.requested);
        reg.counter(&format!("{scope}.deferred"), self.deferred);
        reg.counter(&format!("{scope}.completed"), self.completed);
        reg.counter(&format!("{scope}.rolled_forward"), self.rolled_forward);
    }
}

/// One scheduled relayout: at the end of control interval
/// `at_interval`, every queue is asked to flip onto `rx`.
#[derive(Clone)]
pub struct RelayoutRequest {
    /// Control interval (0-based) whose boundary triggers the request.
    pub at_interval: u32,
    /// The incoming compiled interface (from the
    /// [`PlanCache`](crate::cache::PlanCache), under a fresh
    /// [`begin_generation`](crate::cache::PlanCache::begin_generation)).
    pub rx: Arc<CompiledRx>,
}

/// Configuration of one [`run_evolving`](crate::shard::ShardedRx::run_evolving)
/// run: the adaptive loop's interval cadence plus a relayout schedule.
#[derive(Clone)]
pub struct EvolveConfig {
    /// Frames per control interval (relayout decisions land on interval
    /// boundaries, where the drain-before-remap rule already holds).
    pub interval: usize,
    /// Scheduled intent migrations, applied engine-wide.
    pub schedule: Vec<RelayoutRequest>,
    /// Drain budget per flip, in polls (see [`FLIP_POLL_BUDGET`]).
    pub budget: u32,
}

impl EvolveConfig {
    pub fn new(interval: usize, schedule: Vec<RelayoutRequest>) -> EvolveConfig {
        EvolveConfig {
            interval,
            schedule,
            budget: FLIP_POLL_BUDGET,
        }
    }
}

/// One committed (or still-parked) flip, as the evolving run saw it.
#[derive(Debug, Clone, Copy)]
pub struct FlipRecord {
    /// Control interval at whose boundary the flip resolved.
    pub interval: u32,
    /// Queue that flipped.
    pub queue: usize,
    /// Drain polls spent between request and commit.
    pub polls: u32,
    /// The plan generation the queue landed on.
    pub generation: u64,
    /// Whether the request spent time parked (`Degraded` deferral)
    /// before committing.
    pub was_deferred: bool,
}

/// What one evolving run produced.
pub struct RelayoutOutcome {
    /// Whole-run per-worker counters (same shape as the adaptive loop).
    pub report: ShardReport,
    /// Every committed flip, in commit order.
    pub flips: Vec<FlipRecord>,
    /// Queues whose relayout was still parked when the run ended
    /// (health never recovered; the request survives in the driver and
    /// commits on the next recovered boundary).
    pub unresolved: usize,
}

impl RelayoutOutcome {
    /// Worst drain-to-commit latency across all flips, in polls — the
    /// E19 headline number.
    pub fn max_flip_polls(&self) -> u32 {
        self.flips.iter().map(|f| f.polls).max().unwrap_or(0)
    }

    /// Flips that committed.
    pub fn completed(&self) -> usize {
        self.flips.len()
    }
}
