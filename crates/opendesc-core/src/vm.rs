//! Plan bytecode: the compiled-execution form of an [`RxPlan`](crate::plan::RxPlan).
//!
//! The tree-walking interpreter in [`crate::plan`] re-dispatches on
//! `PlanStep` and re-derives each accessor's load strategy (alignment,
//! width, offset arithmetic inside `Accessor::read`) for every packet.
//! That interpreter tax made the plan path *slower* than the seed
//! per-packet accessors on hardware-heavy models (the E12 regression
//! this module fixes). Lowering (see [`mod@crate::lower`]) runs that
//! derivation once, at compile time, and emits a compact register
//! bytecode: each instruction is a fixed 6-byte cell whose opcode
//! already encodes the load shape (`ld.be4` instead of "figure out how
//! to read 32 aligned bits"), so the per-packet loop is a single
//! jump-table dispatch over pre-resolved operations.
//!
//! One [`PlanProgram`] carries three instruction streams — `trusted`,
//! `verified`, and `degraded` — mirroring the three execution
//! dispositions of the self-healing datapath. All runners take a
//! `(stride, idx)` output addressing pair so the same code serves the
//! row-major per-packet path (`stride = 1, idx = 0`) and the
//! column-major batched path (`stride = cap, idx = pkt`). Batched
//! hardware loads additionally go through [`load_column`], which runs
//! one *instruction* across the whole batch — amortizing even the
//! jump-table dispatch to once per field per batch.
//!
//! The legacy tree interpreter stays as the differential-test oracle
//! (`tests/vm_equivalence.rs`); every runner here is bit-identical to
//! its `RxPlan::execute_*` counterpart by construction and by test.

use opendesc_softnic::wire::ParsedFrame;
use opendesc_softnic::{ShimMemo, ShimOp, SoftNic};

use opendesc_ir::bits::{read_bits, read_bytes_be, width_mask, write_bits};

/// Opcodes of the plan bytecode. The `LD_*` family reads the completion
/// record into the destination slot; `SHIM` runs a SoftNIC op against
/// the parsed frame; `SHIM_CHECK` cross-checks a hardware slot against
/// its SoftNIC reference (verified mode's compare-and-repair).
pub mod op {
    /// `dst = cmpt[a]` — one-byte load.
    pub const LD_BE1: u8 = 0x01;
    /// `dst = be16(cmpt[a..a+2])`.
    pub const LD_BE2: u8 = 0x02;
    /// `dst = be32(cmpt[a..a+4])`.
    pub const LD_BE4: u8 = 0x03;
    /// `dst = be64(cmpt[a..a+8])`.
    pub const LD_BE8: u8 = 0x04;
    /// `dst = be(cmpt[a..a+b])` — aligned odd/wide widths (3, 5, 16 B…).
    pub const LD_BYTES: u8 = 0x05;
    /// `dst = bits(cmpt, offset_bits = a, width_bits = b)` — unaligned.
    pub const LD_BITS: u8 = 0x06;
    /// `dst = softnic(shim a)` over the parsed frame.
    pub const SHIM: u8 = 0x10;
    /// Compare slot `dst` (width `b` bits) against `softnic(shim a)`;
    /// on mismatch the software reference wins and the repair counts.
    pub const SHIM_CHECK: u8 = 0x11;
    /// `desc[a] = hints[dst]` — one-byte store (TX deparse).
    pub const ST_BE1: u8 = 0x21;
    /// `desc[a..a+2] = be16(hints[dst])`.
    pub const ST_BE2: u8 = 0x22;
    /// `desc[a..a+4] = be32(hints[dst])`.
    pub const ST_BE4: u8 = 0x23;
    /// `desc[a..a+8] = be64(hints[dst])`.
    pub const ST_BE8: u8 = 0x24;
    /// `desc[a..a+b] = be(hints[dst])` — aligned odd/wide widths.
    pub const ST_BYTES: u8 = 0x25;
    /// `bits(desc, offset_bits = a, width_bits = b) = hints[dst]`.
    pub const ST_BITS: u8 = 0x26;
}

/// One bytecode instruction: a fixed 6-byte cell (see the binary format
/// table in DESIGN.md). `dst` is the output slot — the accessor index,
/// which is also the metadata column. `a`/`b` are opcode-specific
/// operands (byte offset / bit offset / shim code, and length / width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcInsn {
    pub op: u8,
    pub dst: u8,
    pub a: u16,
    pub b: u16,
}

impl BcInsn {
    /// Serialize to the on-disk cell: `[op, dst, a.le, b.le]`.
    pub fn encode(&self) -> [u8; 6] {
        let a = self.a.to_le_bytes();
        let b = self.b.to_le_bytes();
        [self.op, self.dst, a[0], a[1], b[0], b[1]]
    }

    pub fn decode(cell: [u8; 6]) -> BcInsn {
        BcInsn {
            op: cell[0],
            dst: cell[1],
            a: u16::from_le_bytes([cell[2], cell[3]]),
            b: u16::from_le_bytes([cell[4], cell[5]]),
        }
    }
}

/// Stable numeric code of a shim op, used as the `a` operand of `SHIM`
/// and `SHIM_CHECK` instructions (part of the binary format — do not
/// renumber).
pub fn shim_code(op: ShimOp) -> u16 {
    match op {
        ShimOp::RssHash => 0,
        ShimOp::IpChecksum => 1,
        ShimOp::L4Checksum => 2,
        ShimOp::VlanTci => 3,
        ShimOp::PktLen => 4,
        ShimOp::PacketType => 5,
        ShimOp::IpId => 6,
        ShimOp::PayloadOffset => 7,
        ShimOp::FlowTag => 8,
        ShimOp::KvsKeyHash => 9,
        ShimOp::QueueHint => 10,
        ShimOp::RxStatus => 11,
        ShimOp::Unsupported => 12,
    }
}

/// Inverse of [`shim_code`]; unknown codes decode to `Unsupported`.
pub fn shim_from_code(code: u16) -> ShimOp {
    match code {
        0 => ShimOp::RssHash,
        1 => ShimOp::IpChecksum,
        2 => ShimOp::L4Checksum,
        3 => ShimOp::VlanTci,
        4 => ShimOp::PktLen,
        5 => ShimOp::PacketType,
        6 => ShimOp::IpId,
        7 => ShimOp::PayloadOffset,
        8 => ShimOp::FlowTag,
        9 => ShimOp::KvsKeyHash,
        10 => ShimOp::QueueHint,
        11 => ShimOp::RxStatus,
        _ => ShimOp::Unsupported,
    }
}

/// The bytecode form of one compiled plan: three instruction streams,
/// one per execution disposition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanProgram {
    /// Trusted-mode program: the hardware loads first (`hw_len` of
    /// them, so the batched runner can execute them columnar), then the
    /// software shims. Slots are disjoint, so the reorder relative to
    /// intent order is invisible in the output.
    pub trusted: Vec<BcInsn>,
    /// Number of hardware-load instructions at the head of `trusted`.
    pub hw_len: usize,
    /// Verified-mode program: hardware loads, then `SHIM_CHECK`
    /// cross-checks, then software shims.
    pub verified: Vec<BcInsn>,
    /// Degraded-mode program: software shims only; the runner clears
    /// every slot first (device-only fields come out `None`).
    pub degraded: Vec<BcInsn>,
    /// Output slots (= accessor count = metadata columns).
    pub slots: usize,
    /// TX deparse program: `ST_*` stores serializing the hint register
    /// file into descriptor bytes (empty for RX-only plans). `dst` here
    /// is the *input* hint register, not an output slot.
    pub deparse: Vec<BcInsn>,
}

/// Execute one hardware-load instruction against a completion record.
///
/// # Panics
/// Panics if the completion is shorter than the instruction's range —
/// the same contract as `Accessor::read`: the datapath's truncation
/// guard keeps short records away from loads.
#[inline(always)]
pub fn exec_load(insn: &BcInsn, cmpt: &[u8]) -> u128 {
    let off = insn.a as usize;
    match insn.op {
        op::LD_BE1 => cmpt[off] as u128,
        op::LD_BE2 => u16::from_be_bytes([cmpt[off], cmpt[off + 1]]) as u128,
        op::LD_BE4 => {
            u32::from_be_bytes(cmpt[off..off + 4].try_into().expect("4-byte load")) as u128
        }
        op::LD_BE8 => {
            u64::from_be_bytes(cmpt[off..off + 8].try_into().expect("8-byte load")) as u128
        }
        op::LD_BYTES => read_bytes_be(cmpt, off, insn.b as usize),
        op::LD_BITS => read_bits(cmpt, insn.a as u32, insn.b),
        other => unreachable!("opcode {other:#x} is not a load"),
    }
}

/// Execute one store instruction: serialize `hints[insn.dst]` into the
/// descriptor at the instruction's pre-resolved offset — the TX mirror
/// of [`exec_load`], with the same specialization idea (the opcode
/// already encodes the store shape, nothing is re-derived per packet).
///
/// # Panics
/// Panics if the descriptor is shorter than the instruction's range or
/// the hint register file shorter than `dst` — both are fixed at
/// lowering time, so a correctly-lowered plan can never trip this.
#[inline(always)]
pub fn exec_store(insn: &BcInsn, hints: &[u128], desc: &mut [u8]) {
    let v = hints[insn.dst as usize];
    let off = insn.a as usize;
    match insn.op {
        op::ST_BE1 => desc[off] = v as u8,
        op::ST_BE2 => desc[off..off + 2].copy_from_slice(&(v as u16).to_be_bytes()),
        op::ST_BE4 => desc[off..off + 4].copy_from_slice(&(v as u32).to_be_bytes()),
        op::ST_BE8 => desc[off..off + 8].copy_from_slice(&(v as u64).to_be_bytes()),
        op::ST_BYTES => write_bits(desc, off as u32 * 8, insn.b * 8, v),
        op::ST_BITS => write_bits(desc, insn.a as u32, insn.b, v),
        other => unreachable!("opcode {other:#x} is not a store"),
    }
}

/// Run one load instruction across a whole batch of completion records,
/// unrolled four-wide like `AccessorSet::read_column` — but with the
/// load shape resolved once, not re-derived per record.
pub fn load_column<C: AsRef<[u8]>>(insn: &BcInsn, cmpts: &[C], out: &mut [Option<u128>]) {
    let n = cmpts.len();
    let mut i = 0;
    while i + 4 <= n {
        let v0 = exec_load(insn, cmpts[i].as_ref());
        let v1 = exec_load(insn, cmpts[i + 1].as_ref());
        let v2 = exec_load(insn, cmpts[i + 2].as_ref());
        let v3 = exec_load(insn, cmpts[i + 3].as_ref());
        out[i] = Some(v0);
        out[i + 1] = Some(v1);
        out[i + 2] = Some(v2);
        out[i + 3] = Some(v3);
        i += 4;
    }
    while i < n {
        out[i] = Some(exec_load(insn, cmpts[i].as_ref()));
        i += 1;
    }
}

/// Execute one `SHIM` instruction (shared by the per-packet and batched
/// software loops).
#[inline(always)]
pub fn exec_shim(
    soft: &mut SoftNic,
    insn: &BcInsn,
    parsed: Option<&ParsedFrame<'_>>,
    frame_len: usize,
    memo: &mut ShimMemo,
) -> Option<u128> {
    parsed
        .and_then(|p| soft.exec_op(shim_from_code(insn.a), p, frame_len, memo))
        .map(|v| v as u128)
}

impl PlanProgram {
    /// The hardware-load prefix of the trusted program.
    #[inline]
    pub fn hw_insns(&self) -> &[BcInsn] {
        &self.trusted[..self.hw_len]
    }

    /// The software-shim tail of the trusted program.
    #[inline]
    pub fn sw_insns(&self) -> &[BcInsn] {
        &self.trusted[self.hw_len..]
    }

    /// Whether trusted execution needs the frame parsed.
    #[inline]
    pub fn needs_parse(&self) -> bool {
        self.hw_len < self.trusted.len()
    }

    /// Trusted execution of one packet; output slot `s` lands at
    /// `out[s * stride + idx]` (row-major callers pass `stride = 1,
    /// idx = 0`; the batched column-major path passes `stride = cap,
    /// idx = pkt`). Bit-identical to `RxPlan::execute_into_primed`.
    #[allow(clippy::too_many_arguments)] // mirrors the datapath call sites' full per-packet context
    pub fn run_trusted_at(
        &self,
        soft: &mut SoftNic,
        frame: &[u8],
        cmpt: &[u8],
        rss_hint: Option<u32>,
        out: &mut [Option<u128>],
        stride: usize,
        idx: usize,
    ) {
        let parsed = if self.needs_parse() {
            ParsedFrame::parse(frame)
        } else {
            None
        };
        let mut memo = ShimMemo::default();
        if let Some(h) = rss_hint {
            memo.prime_rss(h);
        }
        for insn in &self.trusted {
            let slot = insn.dst as usize * stride + idx;
            out[slot] = if insn.op == op::SHIM {
                exec_shim(soft, insn, parsed.as_ref(), frame.len(), &mut memo)
            } else {
                Some(exec_load(insn, cmpt))
            };
        }
    }

    /// [`run_trusted_at`](PlanProgram::run_trusted_at) with row-major
    /// addressing.
    #[inline]
    pub fn run_trusted(
        &self,
        soft: &mut SoftNic,
        frame: &[u8],
        cmpt: &[u8],
        rss_hint: Option<u32>,
        out: &mut [Option<u128>],
    ) {
        self.run_trusted_at(soft, frame, cmpt, rss_hint, out, 1, 0)
    }

    /// Verified execution: hardware loads, compare-and-repair against
    /// the SoftNIC reference, unprimed software shims. Returns the
    /// number of repaired fields. Bit-identical to
    /// `RxPlan::execute_verified`.
    pub fn run_verified_at(
        &self,
        soft: &mut SoftNic,
        frame: &[u8],
        cmpt: &[u8],
        out: &mut [Option<u128>],
        stride: usize,
        idx: usize,
    ) -> u32 {
        let parsed = if self.verified.len() > self.hw_len {
            ParsedFrame::parse(frame)
        } else {
            None
        };
        let mut memo = ShimMemo::default();
        let mut repaired = 0;
        for insn in &self.verified {
            let slot = insn.dst as usize * stride + idx;
            match insn.op {
                op::SHIM => {
                    out[slot] = exec_shim(soft, insn, parsed.as_ref(), frame.len(), &mut memo);
                }
                op::SHIM_CHECK => {
                    let want = parsed
                        .as_ref()
                        .and_then(|p| {
                            soft.exec_op(shim_from_code(insn.a), p, frame.len(), &mut memo)
                        })
                        .map(|v| width_mask(insn.b) & v as u128);
                    if let Some(w) = want {
                        if out[slot] != Some(w) {
                            out[slot] = Some(w);
                            repaired += 1;
                        }
                    }
                }
                _ => out[slot] = Some(exec_load(insn, cmpt)),
            }
        }
        repaired
    }

    /// Row-major [`run_verified_at`](PlanProgram::run_verified_at).
    #[inline]
    pub fn run_verified(
        &self,
        soft: &mut SoftNic,
        frame: &[u8],
        cmpt: &[u8],
        out: &mut [Option<u128>],
    ) -> u32 {
        self.run_verified_at(soft, frame, cmpt, out, 1, 0)
    }

    /// Degraded execution: the completion is untrusted and never read;
    /// every slot is cleared, then the recomputable ones are filled from
    /// frame bytes. Bit-identical to `RxPlan::execute_degraded`.
    pub fn run_degraded_at(
        &self,
        soft: &mut SoftNic,
        frame: &[u8],
        out: &mut [Option<u128>],
        stride: usize,
        idx: usize,
    ) {
        self.run_degraded_partial_at(soft, frame, 0, out, stride, idx)
    }

    /// Row-major [`run_degraded_at`](PlanProgram::run_degraded_at).
    #[inline]
    pub fn run_degraded(&self, soft: &mut SoftNic, frame: &[u8], out: &mut [Option<u128>]) {
        self.run_degraded_at(soft, frame, out, 1, 0)
    }

    /// Selective degraded re-serve: slots whose bit is set in `keep`
    /// retain their already-validated value; every other slot is
    /// cleared and recomputed from frame bytes (device-only fields come
    /// out `None`). `keep = 0` is exactly full degraded execution.
    pub fn run_degraded_partial_at(
        &self,
        soft: &mut SoftNic,
        frame: &[u8],
        keep: u128,
        out: &mut [Option<u128>],
        stride: usize,
        idx: usize,
    ) {
        for s in 0..self.slots {
            if keep & (1u128 << s) == 0 {
                out[s * stride + idx] = None;
            }
        }
        let parsed = ParsedFrame::parse(frame);
        let mut memo = ShimMemo::default();
        for insn in &self.degraded {
            if keep & (1u128 << insn.dst) != 0 {
                continue;
            }
            out[insn.dst as usize * stride + idx] =
                exec_shim(soft, insn, parsed.as_ref(), frame.len(), &mut memo);
        }
    }

    /// TX deparse: serialize the hint register file into descriptor
    /// bytes. Zeroes the descriptor first (unwritten slots must read as
    /// zero, matching `TxWriter::build`'s fresh-buffer semantics), then
    /// runs the `deparse` store stream.
    #[inline]
    pub fn run_deparse(&self, hints: &[u128], desc: &mut [u8]) {
        desc.fill(0);
        for insn in &self.deparse {
            exec_store(insn, hints, desc);
        }
    }

    /// Serialize to the container format documented in DESIGN.md:
    /// magic, version, slot count, then the instruction sections as
    /// `u16 count ++ count × 6-byte cells`. RX-only programs encode as
    /// version 1 (three sections, bit-compatible with older readers);
    /// programs carrying a TX deparse stream encode as version 2 with a
    /// fourth section.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            8 + 6
                * (self.trusted.len()
                    + self.verified.len()
                    + self.degraded.len()
                    + self.deparse.len()),
        );
        out.extend_from_slice(b"ODBC");
        let version = if self.deparse.is_empty() { 1 } else { 2 };
        out.push(version);
        out.push(self.slots as u8);
        let mut sections = vec![&self.trusted, &self.verified, &self.degraded];
        if version == 2 {
            sections.push(&self.deparse);
        }
        for section in sections {
            out.extend_from_slice(&(section.len() as u16).to_le_bytes());
            for insn in section.iter() {
                out.extend_from_slice(&insn.encode());
            }
        }
        out
    }

    /// FNV-1a content digest of the encoded container — the value a
    /// manifest pins so a consumer can check the plan bytecode it loads
    /// is the one that was negotiated.
    pub fn digest(&self) -> u64 {
        crate::codegen::manifest::fnv64(&self.encode())
    }

    /// Parse the container format back; `None` on any structural
    /// mismatch. `hw_len` is recomputed from the trusted section's
    /// load prefix. Accepts version 1 (RX-only) and version 2 (with a
    /// deparse section).
    pub fn decode(bytes: &[u8]) -> Option<PlanProgram> {
        if bytes.len() < 6 || &bytes[..4] != b"ODBC" || !(bytes[4] == 1 || bytes[4] == 2) {
            return None;
        }
        let n_sections = if bytes[4] == 2 { 4 } else { 3 };
        let slots = bytes[5] as usize;
        let mut pos = 6;
        let mut sections: [Vec<BcInsn>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for section in sections.iter_mut().take(n_sections) {
            let count = u16::from_le_bytes([*bytes.get(pos)?, *bytes.get(pos + 1)?]) as usize;
            pos += 2;
            for _ in 0..count {
                let cell: [u8; 6] = bytes.get(pos..pos + 6)?.try_into().ok()?;
                section.push(BcInsn::decode(cell));
                pos += 6;
            }
        }
        if pos != bytes.len() {
            return None;
        }
        let [trusted, verified, degraded, deparse] = sections;
        let hw_len = trusted
            .iter()
            .take_while(|i| i.op != op::SHIM && i.op != op::SHIM_CHECK)
            .count();
        Some(PlanProgram {
            trusted,
            hw_len,
            verified,
            degraded,
            slots,
            deparse,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insn_cell_roundtrips() {
        let insn = BcInsn {
            op: op::LD_BITS,
            dst: 7,
            a: 0x1234,
            b: 0x00FF,
        };
        assert_eq!(BcInsn::decode(insn.encode()), insn);
    }

    #[test]
    fn shim_codes_roundtrip() {
        for op in [
            ShimOp::RssHash,
            ShimOp::IpChecksum,
            ShimOp::L4Checksum,
            ShimOp::VlanTci,
            ShimOp::PktLen,
            ShimOp::PacketType,
            ShimOp::IpId,
            ShimOp::PayloadOffset,
            ShimOp::FlowTag,
            ShimOp::KvsKeyHash,
            ShimOp::QueueHint,
            ShimOp::RxStatus,
            ShimOp::Unsupported,
        ] {
            assert_eq!(shim_from_code(shim_code(op)), op);
        }
    }

    #[test]
    fn program_container_roundtrips() {
        let prog = PlanProgram {
            trusted: vec![
                BcInsn {
                    op: op::LD_BE4,
                    dst: 0,
                    a: 0,
                    b: 4,
                },
                BcInsn {
                    op: op::SHIM,
                    dst: 1,
                    a: shim_code(ShimOp::VlanTci),
                    b: 0,
                },
            ],
            hw_len: 1,
            verified: vec![BcInsn {
                op: op::SHIM_CHECK,
                dst: 0,
                a: shim_code(ShimOp::PktLen),
                b: 16,
            }],
            degraded: vec![BcInsn {
                op: op::SHIM,
                dst: 1,
                a: shim_code(ShimOp::VlanTci),
                b: 0,
            }],
            slots: 2,
            deparse: Vec::new(),
        };
        let bytes = prog.encode();
        assert_eq!(&bytes[..4], b"ODBC");
        assert_eq!(bytes[4], 1, "RX-only programs stay on the v1 container");
        assert_eq!(PlanProgram::decode(&bytes), Some(prog));
        // Truncated and corrupted containers are rejected, not panics.
        assert_eq!(PlanProgram::decode(&bytes[..bytes.len() - 1]), None);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(PlanProgram::decode(&bad), None);
    }

    #[test]
    fn specialized_loads_match_generic_bit_reads() {
        let cmpt: Vec<u8> = (0u8..32).map(|i| i.wrapping_mul(37) ^ 0x5A).collect();
        for (opc, off, b, bits_off, bits_w) in [
            (op::LD_BE1, 3u16, 1u16, 24u32, 8u16),
            (op::LD_BE2, 4, 2, 32, 16),
            (op::LD_BE4, 8, 4, 64, 32),
            (op::LD_BE8, 16, 8, 128, 64),
            (op::LD_BYTES, 1, 3, 8, 24),
            (op::LD_BYTES, 0, 16, 0, 128),
        ] {
            let insn = BcInsn {
                op: opc,
                dst: 0,
                a: off,
                b,
            };
            assert_eq!(
                exec_load(&insn, &cmpt),
                read_bits(&cmpt, bits_off, bits_w),
                "opcode {opc:#x}"
            );
        }
        let unaligned = BcInsn {
            op: op::LD_BITS,
            dst: 0,
            a: 13,
            b: 27,
        };
        assert_eq!(exec_load(&unaligned, &cmpt), read_bits(&cmpt, 13, 27));
    }

    #[test]
    fn stores_roundtrip_through_loads() {
        // Every store shape must be read back exactly by the matching
        // load — the TX deparse and RX parse halves of the same cells.
        let hints: [u128; 3] = [0xDEAD_BEEF_CAFE_F00D, 0x1234, 0x5A];
        for (st, ld, dst, a, b) in [
            (op::ST_BE1, op::LD_BE1, 2u8, 3u16, 1u16),
            (op::ST_BE2, op::LD_BE2, 1, 4, 2),
            (op::ST_BE4, op::LD_BE4, 0, 8, 4),
            (op::ST_BE8, op::LD_BE8, 0, 0, 8),
            (op::ST_BYTES, op::LD_BYTES, 0, 1, 3),
        ] {
            let mut desc = vec![0u8; 16];
            let store = BcInsn { op: st, dst, a, b };
            exec_store(&store, &hints, &mut desc);
            let load = BcInsn { op: ld, dst, a, b };
            let width_bits = b * 8;
            assert_eq!(
                exec_load(&load, &desc),
                hints[dst as usize] & width_mask(width_bits),
                "store opcode {st:#x}"
            );
        }
        // Unaligned store: 27 bits at bit offset 13.
        let mut desc = vec![0u8; 16];
        let store = BcInsn {
            op: op::ST_BITS,
            dst: 0,
            a: 13,
            b: 27,
        };
        exec_store(&store, &hints, &mut desc);
        assert_eq!(read_bits(&desc, 13, 27), hints[0] & width_mask(27));
    }

    #[test]
    fn deparse_program_roundtrips_v2_container() {
        let prog = PlanProgram {
            deparse: vec![
                BcInsn {
                    op: op::ST_BE8,
                    dst: 0,
                    a: 0,
                    b: 8,
                },
                BcInsn {
                    op: op::ST_BE2,
                    dst: 1,
                    a: 8,
                    b: 2,
                },
            ],
            slots: 0,
            ..PlanProgram::default()
        };
        let bytes = prog.encode();
        assert_eq!(bytes[4], 2, "deparse-carrying programs use v2");
        assert_eq!(PlanProgram::decode(&bytes), Some(prog.clone()));
        // run_deparse zeroes stale bytes before storing.
        let mut desc = [0xFFu8; 12];
        prog.run_deparse(&[0xABCD, 0x0042], &mut desc);
        assert_eq!(&desc[..8], &0xABCDu64.to_be_bytes());
        assert_eq!(&desc[8..10], &0x0042u16.to_be_bytes());
        assert_eq!(&desc[10..], &[0, 0], "unwritten tail must be zeroed");
    }

    #[test]
    fn load_column_matches_scalar_loads() {
        let cmpts: Vec<Vec<u8>> = (0u8..7)
            .map(|i| (0u8..16).map(|j| i.wrapping_mul(31) ^ j).collect())
            .collect();
        let insn = BcInsn {
            op: op::LD_BE4,
            dst: 0,
            a: 4,
            b: 4,
        };
        let mut out = vec![None; cmpts.len()];
        load_column(&insn, &cmpts, &mut out);
        for (c, got) in cmpts.iter().zip(&out) {
            assert_eq!(*got, Some(exec_load(&insn, c)));
        }
    }
}
