//! Compile once, run everywhere: shareable compiled artifacts and the
//! keyed plan cache.
//!
//! The compiler's output is immutable after compilation — the accessor
//! table, the lowered [`RxPlan`](crate::plan::RxPlan), the selected path
//! and context are all read-only on the datapath. [`CompiledRx`] makes
//! that explicit: an `Arc`-held artifact that N queues share instead of
//! holding N copies, and that worker threads can hold concurrently
//! (`Send + Sync` is asserted at compile time below).
//!
//! [`PlanCache`] keys artifacts by what determines them — `(model,
//! context, intent)` — so N queues with the same intent trigger one
//! compilation, while queues with *different* intents (the paper's §3
//! "multiple OpenDesc instances with different intents to obtain
//! different queues" scenario) each get their own artifact. Identical
//! requests return pointer-equal `Arc`s.

use crate::compiler::{CompileError, CompiledInterface, Compiler};
use crate::intent::Intent;
use crate::lower::{lower, LowerError, LoweredPlan};
use crate::robust::ValidatorSpec;
use crate::tx::{compile_tx, CompiledTxPlan};
use opendesc_ir::{Assignment, SemanticRegistry};
use opendesc_nicsim::models::NicModel;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::{Arc, Mutex};

/// An immutable, thread-shareable compiled RX interface.
///
/// Wraps [`CompiledInterface`] and hides `&mut` access; `Deref` keeps
/// every `iface.accessors` / `iface.plan` call site working unchanged.
#[derive(Debug)]
pub struct CompiledRx {
    iface: CompiledInterface,
    /// Layout-derived completion validator, computed once here so N
    /// queues sharing the artifact share one spec.
    validator: ValidatorSpec,
    /// The plan's bytecode + verified-eBPF form, lowered once here. An
    /// `Err` records why the plan cannot run on the VM path (the tree
    /// interpreter remains as fallback for directly-attached drivers;
    /// the cache refuses to serve such artifacts at all).
    lowered: Result<LoweredPlan, LowerError>,
}

impl CompiledRx {
    pub fn new(iface: CompiledInterface) -> Self {
        let validator = ValidatorSpec::derive(&iface.accessors, &iface.reg);
        let lowered = lower(&iface.accessors, &iface.plan);
        CompiledRx {
            iface,
            validator,
            lowered,
        }
    }

    /// The wrapped interface (also reachable through `Deref`).
    pub fn interface(&self) -> &CompiledInterface {
        &self.iface
    }

    /// The layout-derived completion validator spec.
    pub fn validator(&self) -> &ValidatorSpec {
        &self.validator
    }

    /// The verifier-accepted bytecode form, when lowering succeeded.
    pub fn lowered(&self) -> Option<&LoweredPlan> {
        self.lowered.as_ref().ok()
    }

    /// Why lowering failed, when it did.
    pub fn lowering_error(&self) -> Option<&LowerError> {
        self.lowered.as_ref().err()
    }
}

impl Deref for CompiledRx {
    type Target = CompiledInterface;
    fn deref(&self) -> &CompiledInterface {
        &self.iface
    }
}

impl From<CompiledInterface> for CompiledRx {
    fn from(iface: CompiledInterface) -> Self {
        CompiledRx::new(iface)
    }
}

// The whole point of `CompiledRx` is cross-thread sharing; break the
// build if a future field introduces interior mutability.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledRx>();
    assert_send_sync::<CompiledTxPlan>();
    assert_send_sync::<PlanCache>();
};

/// Cache key: everything that determines a compilation's output.
///
/// An intent's meaning depends on *which registry* interned its
/// semantic ids — the same name can map to different ids (or widths) in
/// different registries. Keying on semantic-name strings alone therefore
/// aliases across registries and can hand a worker a plan compiled for
/// the wrong id assignment. The key instead binds the registry's
/// [`fingerprint`](SemanticRegistry::fingerprint) together with a hash
/// of the intent's `(id, field name, width)` rows; the context override
/// is canonicalized by sorting.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    model: String,
    deparser: String,
    /// Fingerprint of the registry's id ↔ (name, width) assignment.
    reg_fingerprint: u64,
    /// FNV-1a over the intent name and its `(id, name, width)` fields.
    intent_hash: u64,
    /// Sorted `(dotted field, value)` of the context override, if any.
    context: Option<Vec<(String, u128)>>,
}

impl PlanKey {
    fn new(
        model: &NicModel,
        intent: &Intent,
        context: Option<&Assignment>,
        reg: &SemanticRegistry,
    ) -> PlanKey {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut byte = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in intent.name.as_bytes() {
            byte(*b);
        }
        byte(0xFF);
        for f in &intent.fields {
            for b in f.semantic.0.to_le_bytes() {
                byte(b);
            }
            for b in f.name.as_bytes() {
                byte(*b);
            }
            for b in f.width_bits.to_le_bytes() {
                byte(b);
            }
            byte(0xFF);
        }
        let context = context.map(|ctx| {
            let mut kv: Vec<(String, u128)> = ctx.iter().map(|(f, v)| (f.dotted(), *v)).collect();
            kv.sort();
            kv
        });
        PlanKey {
            model: model.name.clone(),
            deparser: model.deparser.clone(),
            reg_fingerprint: reg.fingerprint(),
            intent_hash: h,
            context,
        }
    }
}

/// A cached artifact tagged with the cache epoch of the last request
/// that returned it. Entries whose epoch falls behind the current one
/// are *superseded* — a relayout has moved every consumer to a newer
/// plan — and become evictable once their external refcount drops to
/// zero (only the cache's own `Arc` remains).
#[derive(Debug)]
struct Versioned<T> {
    plan: Arc<T>,
    epoch: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<PlanKey, Versioned<CompiledRx>>,
    hits: u64,
    misses: u64,
    /// TX plans live in their own map with their own counters, so the
    /// RX `stats()`/`len()` numbers existing callers assert on never
    /// shift when a full-duplex engine also compiles TX.
    tx_map: HashMap<PlanKey, Versioned<CompiledTxPlan>>,
    tx_hits: u64,
    tx_misses: u64,
    /// Current plan epoch. 0 until the first
    /// [`begin_generation`](PlanCache::begin_generation); a cache that
    /// never relayouts never evicts, so pre-evolution callers see the
    /// exact historical behavior.
    epoch: u64,
}

/// Keyed plan cache: `(model, context, intent) → Arc<CompiledRx>`.
///
/// The lock guards only the map — setup-time state. Queues take their
/// `Arc` once at attach and the per-packet path never touches the cache.
#[derive(Debug, Default)]
pub struct PlanCache {
    compiler: Compiler,
    inner: Mutex<CacheInner>,
}

impl PlanCache {
    pub fn new(compiler: Compiler) -> Self {
        PlanCache {
            compiler,
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// Compiled artifact for `(model, intent)`, compiling at most once:
    /// repeated calls with an identical request return pointer-equal
    /// `Arc`s (`Arc::ptr_eq` holds).
    pub fn get_or_compile(
        &self,
        model: &NicModel,
        intent: &Intent,
        reg: &mut SemanticRegistry,
    ) -> Result<Arc<CompiledRx>, CompileError> {
        self.get_or_compile_with(model, intent, None, reg)
    }

    /// [`get_or_compile`](PlanCache::get_or_compile) with an explicit
    /// context override — for queues steered onto a specific completion
    /// path (or models whose winning guard is opaque and needs manual
    /// context). The override replaces the compiler-derived context in
    /// the artifact and participates in the key.
    pub fn get_or_compile_with(
        &self,
        model: &NicModel,
        intent: &Intent,
        context: Option<&Assignment>,
        reg: &mut SemanticRegistry,
    ) -> Result<Arc<CompiledRx>, CompileError> {
        let key = PlanKey::new(model, intent, context, reg);
        {
            let mut inner = self.inner.lock().unwrap();
            let epoch = inner.epoch;
            if let Some(hit) = inner.map.get_mut(&key) {
                // A hit re-adopts the entry into the current epoch: a
                // plan still being requested is not superseded.
                hit.epoch = epoch;
                let hit = Arc::clone(&hit.plan);
                inner.hits += 1;
                return Ok(hit);
            }
        }
        // Compile outside the lock: compilation is the slow part, and
        // racing compilers at setup are harmless (last insert wins the
        // map; both callers get a valid artifact — callers needing
        // pointer equality call sequentially, as the engine setup does).
        let mut iface = self.compiler.compile_model(model, intent, reg)?;
        if let Some(ctx) = context {
            iface.context = Some(ctx.clone());
        }
        let rx = Arc::new(CompiledRx::new(iface));
        // The cache only serves verifier-accepted plans: a plan whose
        // lowered eBPF form the verifier rejected never enters the map.
        if let Some(e) = rx.lowering_error() {
            return Err(CompileError::Lowering(e.to_string()));
        }
        let mut inner = self.inner.lock().unwrap();
        inner.misses += 1;
        let epoch = inner.epoch;
        let entry = inner
            .map
            .entry(key)
            .or_insert_with(|| Versioned { plan: rx, epoch });
        entry.epoch = epoch;
        Ok(Arc::clone(&entry.plan))
    }

    /// Compiled TX plan for `(model, intent)`, compiling at most once —
    /// the transmit-side twin of [`get_or_compile`](PlanCache::get_or_compile).
    /// The returned artifact carries the Eq. 1 layout match, its deparse
    /// bytecode, and the software/hardware offload split; N queues with
    /// the same intent share one pointer-equal `Arc`.
    pub fn get_or_compile_tx(
        &self,
        model: &NicModel,
        intent: &Intent,
        reg: &mut SemanticRegistry,
    ) -> Result<Arc<CompiledTxPlan>, CompileError> {
        let key = PlanKey::new(model, intent, None, reg);
        {
            let mut inner = self.inner.lock().unwrap();
            let epoch = inner.epoch;
            if let Some(hit) = inner.tx_map.get_mut(&key) {
                hit.epoch = epoch;
                let hit = Arc::clone(&hit.plan);
                inner.tx_hits += 1;
                return Ok(hit);
            }
        }
        // Compile outside the lock, exactly like the RX path.
        let parser = model.desc_parser.as_deref().unwrap_or("DescParser");
        let tx = compile_tx(
            &self.compiler.selector,
            &model.p4_source,
            parser,
            &model.name,
            intent,
            reg,
        )?;
        let plan = Arc::new(CompiledTxPlan::new(tx, reg));
        let mut inner = self.inner.lock().unwrap();
        inner.tx_misses += 1;
        let epoch = inner.epoch;
        let entry = inner
            .tx_map
            .entry(key)
            .or_insert_with(|| Versioned { plan, epoch });
        entry.epoch = epoch;
        Ok(Arc::clone(&entry.plan))
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.hits, inner.misses)
    }

    /// `(hits, misses)` of the TX plan map.
    pub fn tx_stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.tx_hits, inner.tx_misses)
    }

    /// Distinct artifacts held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct TX plans held.
    pub fn tx_len(&self) -> usize {
        self.inner.lock().unwrap().tx_map.len()
    }

    /// Current plan epoch. 0 until the first
    /// [`begin_generation`](PlanCache::begin_generation).
    pub fn generation(&self) -> u64 {
        self.inner.lock().unwrap().epoch
    }

    /// Open a new plan generation and return its epoch. Entries served
    /// before this call become *superseded*: once no consumer outside
    /// the cache holds them they are reclaimable by
    /// [`evict_superseded`](PlanCache::evict_superseded). A relayout
    /// calls this before compiling the incoming layout's plans, so the
    /// outgoing generation ages out while any entry the new intent
    /// re-requests (a hit) is re-adopted into the new epoch and kept.
    pub fn begin_generation(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        inner.epoch += 1;
        inner.epoch
    }

    /// Drop superseded artifacts no consumer still holds. An entry is
    /// evicted when its epoch predates the current generation *and* the
    /// cache's `Arc` is the last reference — a queue still draining the
    /// old layout pins its plan (the `Arc` refcount is the "in-flight
    /// batch" pin) until its flip commits and it drops the handle.
    /// Returns how many artifacts (RX + TX) were reclaimed.
    pub fn evict_superseded(&self) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let epoch = inner.epoch;
        let before = inner.map.len() + inner.tx_map.len();
        inner
            .map
            .retain(|_, v| v.epoch == epoch || Arc::strong_count(&v.plan) > 1);
        inner
            .tx_map
            .retain(|_, v| v.epoch == epoch || Arc::strong_count(&v.plan) > 1);
        before - (inner.map.len() + inner.tx_map.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opendesc_ir::names;
    use opendesc_nicsim::models;

    fn intent(reg: &mut SemanticRegistry, name: &str, sems: &[&str]) -> Intent {
        let mut b = Intent::builder(name);
        for s in sems {
            b = b.want(reg, s);
        }
        b.build()
    }

    #[test]
    fn identical_requests_are_pointer_equal() {
        let cache = PlanCache::default();
        let mut reg = SemanticRegistry::with_builtins();
        let i = intent(&mut reg, "app", &[names::RSS_HASH, names::PKT_LEN]);
        let a = cache
            .get_or_compile(&models::e1000e(), &i, &mut reg)
            .unwrap();
        let b = cache
            .get_or_compile(&models::e1000e(), &i, &mut reg)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same request must share one artifact");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_model_or_intent_miss() {
        let cache = PlanCache::default();
        let mut reg = SemanticRegistry::with_builtins();
        let i1 = intent(&mut reg, "app", &[names::RSS_HASH, names::PKT_LEN]);
        let i2 = intent(&mut reg, "app2", &[names::VLAN_TCI]);
        let a = cache
            .get_or_compile(&models::e1000e(), &i1, &mut reg)
            .unwrap();
        let b = cache
            .get_or_compile(&models::mlx5(), &i1, &mut reg)
            .unwrap();
        let c = cache
            .get_or_compile(&models::e1000e(), &i2, &mut reg)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 3);
        // Artifacts genuinely differ.
        assert_eq!(a.nic_name, "e1000e");
        assert_eq!(b.nic_name, "mlx5");
        assert_eq!(c.intent.name, "app2");
    }

    #[test]
    fn context_override_participates_in_key_and_artifact() {
        let cache = PlanCache::default();
        let mut reg = SemanticRegistry::with_builtins();
        let i = intent(&mut reg, "app", &[names::RSS_HASH, names::PKT_LEN]);
        let plain = cache.get_or_compile(&models::mlx5(), &i, &mut reg).unwrap();
        let mut ctx = Assignment::new();
        ctx.insert(
            opendesc_ir::pred::FieldRef::new(&["ctx", "cqe_format"], 2),
            0,
        );
        let forced = cache
            .get_or_compile_with(&models::mlx5(), &i, Some(&ctx), &mut reg)
            .unwrap();
        assert!(!Arc::ptr_eq(&plain, &forced));
        assert_eq!(forced.context.as_ref(), Some(&ctx));
        // Same override again: cache hit.
        let again = cache
            .get_or_compile_with(&models::mlx5(), &i, Some(&ctx), &mut reg)
            .unwrap();
        assert!(Arc::ptr_eq(&forced, &again));
    }

    #[test]
    fn distinct_registries_never_alias_cache_entries() {
        // Regression: the old key was semantic-*name* strings, so two
        // registries assigning the same names to different ids collided
        // and the second caller got a plan compiled for the wrong id
        // assignment. The fingerprint in the key must keep them apart.
        let cache = PlanCache::default();
        let mut reg_a = SemanticRegistry::with_builtins();
        let mut reg_b = SemanticRegistry::empty();
        reg_b.register_custom(
            "shift_ids",
            8,
            opendesc_ir::Cost::flat(1.0),
            "displaces every builtin id",
        );
        for (_, info) in SemanticRegistry::with_builtins().iter() {
            reg_b.register(info.clone());
        }
        let ia = intent(&mut reg_a, "app", &[names::RSS_HASH, names::PKT_LEN]);
        let ib = intent(&mut reg_b, "app", &[names::RSS_HASH, names::PKT_LEN]);
        let a = cache
            .get_or_compile(&models::e1000e(), &ia, &mut reg_a)
            .unwrap();
        let b = cache
            .get_or_compile(&models::e1000e(), &ib, &mut reg_b)
            .unwrap();
        assert!(
            !Arc::ptr_eq(&a, &b),
            "same names on different registries must not share an artifact"
        );
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (0, 2), "both requests must be misses");
    }

    #[test]
    fn cache_serves_only_verifier_accepted_plans() {
        let cache = PlanCache::default();
        let mut reg = SemanticRegistry::with_builtins();
        let i = intent(&mut reg, "app", &[names::RSS_HASH, names::PKT_LEN]);
        for model in [
            models::e1000e(),
            models::ixgbe(),
            models::mlx5(),
            models::qdma_default(),
        ] {
            let rx = cache.get_or_compile(&model, &i, &mut reg).unwrap();
            let low = rx
                .lowered()
                .expect("every cache-served plan carries its lowered form");
            assert!(
                low.verifier_states > 0 || low.ebpf.is_empty(),
                "{}: the verifier must actually have run",
                model.name
            );
        }
    }

    #[test]
    fn tx_plans_cache_separately_from_rx() {
        let cache = PlanCache::default();
        let mut reg = SemanticRegistry::with_builtins();
        let ti = intent(&mut reg, "tx", &[names::TX_L4_CSUM, names::TX_VLAN_INSERT]);
        let a = cache
            .get_or_compile_tx(&models::qdma_default(), &ti, &mut reg)
            .unwrap();
        let b = cache
            .get_or_compile_tx(&models::qdma_default(), &ti, &mut reg)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same TX request shares one plan");
        assert_eq!(cache.tx_stats(), (1, 1));
        assert_eq!(
            cache.stats(),
            (0, 0),
            "TX compiles must not move the RX counters"
        );
        assert_eq!(cache.len(), 0, "TX plans live outside the RX map");
        assert!(!a.prog.deparse.is_empty(), "plan carries deparse bytecode");
        // A model without a TX parser errors and is never cached.
        assert!(cache
            .get_or_compile_tx(&models::mlx5(), &ti, &mut reg)
            .is_err());
        assert_eq!(cache.tx_stats(), (1, 1));
    }

    #[test]
    fn relayout_generations_are_bounded() {
        // Regression for unbounded growth: N relayouts cycling through
        // distinct intents must never leave more than 2 live RX
        // generations (the incoming plan plus the still-pinned outgoing
        // one), and exactly 1 once each flip's old handle is dropped.
        let cache = PlanCache::default();
        let mut reg = SemanticRegistry::with_builtins();
        let pool = [
            names::RSS_HASH,
            names::VLAN_TCI,
            names::PKT_LEN,
            names::PACKET_TYPE,
        ];
        let mut live = cache
            .get_or_compile(
                &models::ixgbe(),
                &intent(&mut reg, "gen0", &[names::PKT_LEN]),
                &mut reg,
            )
            .unwrap();
        for n in 1..=8usize {
            cache.begin_generation();
            let i = intent(&mut reg, &format!("gen{n}"), &[pool[n % pool.len()]]);
            let next = cache
                .get_or_compile(&models::ixgbe(), &i, &mut reg)
                .unwrap();
            // Transition window: the outgoing plan is still pinned by
            // `live`, so eviction must not reclaim it.
            assert_eq!(cache.evict_superseded(), 0);
            assert_eq!(cache.len(), 2, "old pinned + new = 2 live generations");
            live = next; // flip commits; old Arc drops here
            assert_eq!(cache.evict_superseded(), 1);
            assert_eq!(cache.len(), 1, "superseded generation reclaimed");
        }
        assert_eq!(cache.generation(), 8);
        drop(live);
    }

    #[test]
    fn hits_readopt_entries_into_the_current_generation() {
        // A relayout back to a layout the cache already holds must not
        // age that entry out: the hit re-adopts it into the new epoch.
        let cache = PlanCache::default();
        let mut reg = SemanticRegistry::with_builtins();
        let i = intent(&mut reg, "app", &[names::RSS_HASH, names::PKT_LEN]);
        let a = cache
            .get_or_compile(&models::e1000e(), &i, &mut reg)
            .unwrap();
        cache.begin_generation();
        let b = cache
            .get_or_compile(&models::e1000e(), &i, &mut reg)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        drop(a);
        drop(b);
        assert_eq!(
            cache.evict_superseded(),
            0,
            "re-adopted entry is current-generation, never evicted"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn deref_reaches_interface_fields() {
        let cache = PlanCache::default();
        let mut reg = SemanticRegistry::with_builtins();
        let i = intent(&mut reg, "app", &[names::RSS_HASH, names::PKT_LEN]);
        let rx = cache.get_or_compile(&models::mlx5(), &i, &mut reg).unwrap();
        // The whole accessor/plan surface is reachable through Deref.
        assert_eq!(rx.accessors.accessors.len(), 2);
        assert_eq!(rx.plan.steps.len(), 2);
        assert_eq!(rx.interface().nic_name, "mlx5");
    }
}
