//! The generated receive datapath: a compiled interface attached to a
//! (simulated) NIC.
//!
//! This is the paper's end goal in miniature — "a generated minimalist
//! driver datapath": the driver programs the NIC context from the
//! compiled selection, then per packet reads exactly the requested
//! fields through constant-time accessors, invoking SoftNIC shims only
//! for semantics the layout does not carry.

use crate::accessor::AccessorSet;
use crate::cache::CompiledRx;
use crate::compiler::CompiledInterface;
use crate::evolve::{FlipProgress, RelayoutCounters};
use crate::plan::RxPlan;
use crate::robust::{
    HealthConfig, HealthState, QueueHealth, SeqTracker, SeqVerdict, ValidationMode,
    ValidationStats, Watchdog, WatchdogConfig,
};
use crate::vm;
use opendesc_ir::bits::width_mask;
use opendesc_ir::SemanticId;
use opendesc_nicsim::nic::{NicError, SimNic};
use opendesc_softnic::wire::ParsedFrame;
use opendesc_softnic::{ShimMemo, SoftNic};
use opendesc_telemetry::{MetricRegistry, QueueTelemetry, TraceKind};
use std::sync::Arc;
use std::time::Instant;

/// Metadata for one received packet, ordered like the intent's fields.
#[derive(Debug, Clone, PartialEq)]
pub struct RxPacket {
    pub frame: Vec<u8>,
    /// `(semantic, value)` per intent field; `None` when a software shim
    /// could not compute (e.g. non-IP frame).
    pub meta: Vec<(SemanticId, Option<u128>)>,
}

impl RxPacket {
    /// Value of a semantic, if present.
    pub fn get(&self, sem: SemanticId) -> Option<u128> {
        self.meta
            .iter()
            .find(|(s, _)| *s == sem)
            .and_then(|(_, v)| *v)
    }
}

/// Struct-of-arrays batch storage for the zero-allocation RX path.
///
/// One `RxBatch` is created per queue (see
/// [`OpenDescDriver::make_batch`]) and refilled by
/// [`OpenDescDriver::poll_batch_into`]; frame, completion, and metadata
/// storage is recycled across calls, so a steady-state poll loop stops
/// allocating entirely. Metadata is column-major — all packets' values
/// of one field are contiguous (`meta[field * cap + pkt]`) — which is
/// what the columnar hardware reader fills.
#[derive(Debug, Default)]
pub struct RxBatch {
    /// Packets currently held (set by the last `poll_batch_into`).
    len: usize,
    /// Capacity in packets.
    cap: usize,
    /// Intent fields per packet (accessor order).
    sems: Vec<SemanticId>,
    /// Received frames; `frames[i]` is valid for `i < len`.
    frames: Vec<Vec<u8>>,
    /// Completion records, parallel to `frames`.
    cmpts: Vec<Vec<u8>>,
    /// Column-major metadata: `meta[field * cap + pkt]`.
    meta: Vec<Option<u128>>,
    /// Scratch column for the hardware batch reader.
    hwcol: Vec<u128>,
    /// Steering sideband per packet (device-reported RSS hash), consumed
    /// to prime the shim memo; recycled like the other columns.
    hints: Vec<Option<u32>>,
    /// Truncated-completion flag per packet: these records are shorter
    /// than the layout promises, must never reach a hardware accessor
    /// (which would read past the end), and are served degraded.
    short: Vec<bool>,
}

impl RxBatch {
    fn new(iface: &CompiledInterface, cap: usize) -> RxBatch {
        let sems: Vec<SemanticId> = iface
            .accessors
            .accessors
            .iter()
            .map(|a| a.semantic)
            .collect();
        let fields = sems.len();
        RxBatch {
            len: 0,
            cap,
            sems,
            frames: (0..cap).map(|_| Vec::new()).collect(),
            cmpts: (0..cap).map(|_| Vec::new()).collect(),
            meta: vec![None; fields * cap],
            hwcol: vec![0; cap],
            hints: vec![None; cap],
            short: vec![false; cap],
        }
    }

    /// Packets received by the last poll.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum packets per poll.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The per-packet fields, in intent/accessor order.
    pub fn semantics(&self) -> &[SemanticId] {
        &self.sems
    }

    /// Frame bytes of packet `pkt` (`pkt < len`).
    pub fn frame(&self, pkt: usize) -> &[u8] {
        assert!(pkt < self.len);
        &self.frames[pkt]
    }

    /// Completion record of packet `pkt` (`pkt < len`).
    pub fn cmpt(&self, pkt: usize) -> &[u8] {
        assert!(pkt < self.len);
        &self.cmpts[pkt]
    }

    /// Metadata by field position (accessor order) and packet.
    pub fn value_at(&self, field: usize, pkt: usize) -> Option<u128> {
        assert!(pkt < self.len);
        self.meta[field * self.cap + pkt]
    }

    /// Metadata by semantic and packet.
    pub fn get(&self, pkt: usize, sem: SemanticId) -> Option<u128> {
        let field = self.sems.iter().position(|s| *s == sem)?;
        self.value_at(field, pkt)
    }

    /// One field's values across the batch (`[..len]`).
    pub fn column(&self, field: usize) -> &[Option<u128>] {
        &self.meta[field * self.cap..field * self.cap + self.len]
    }

    /// The steering-stage RSS hash delivered with packet `pkt`, if the
    /// device reported one.
    pub fn rss_hint(&self, pkt: usize) -> Option<u32> {
        assert!(pkt < self.len);
        self.hints[pkt]
    }
}

/// How one packet (or one batch) should be executed, chosen from the
/// validation mode and the queue's current health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Disposition {
    /// Hardware reads trusted (structural checks still run in
    /// `Structural` mode).
    Trusted,
    /// Hardware reads cross-checked field-by-field against the SoftNIC
    /// (compare-and-repair).
    Verified,
    /// Completion untrusted and never read; everything recomputable is
    /// recomputed from frame bytes.
    Degraded,
}

/// A compiled OpenDesc driver bound to a NIC instance.
///
/// The compiled interface is held through a shared immutable
/// [`CompiledRx`]: N queues attached with the same artifact hold one
/// compilation, not N copies (`iface` still reads like a
/// `CompiledInterface` via `Deref`).
///
/// The driver distrusts the device's *behavior*, not just its layout
/// (see [`crate::robust`]): completions pass sequence and length
/// admission, hardware fields are validated per [`ValidationMode`], and
/// a per-queue [`HealthState`] plus [`Watchdog`] drive degraded-mode
/// execution and ring-reset recovery. At the default `Structural` mode
/// an honest device runs the exact pre-validator fast path.
pub struct OpenDescDriver {
    pub nic: SimNic,
    pub iface: Arc<CompiledRx>,
    soft: SoftNic,
    mode: ValidationMode,
    seq: SeqTracker,
    vstats: ValidationStats,
    health: HealthState,
    watchdog: Watchdog,
    /// Per-queue instruments: poll-cycle histograms, field-source mix,
    /// and the trace ring. Driver-owned, so hot-path updates need no
    /// synchronization; disabled it costs one branch per hook.
    tel: QueueTelemetry,
    /// Recycled completion-record storage for the per-packet [`poll`]
    /// path (`receive_into_hinted` clears and refills it), so a
    /// steady-state poll loop stops allocating for completions.
    ///
    /// [`poll`]: OpenDescDriver::poll
    scratch_cmpt: Vec<u8>,
    /// Recycled metadata-values scratch for the per-packet [`poll`]
    /// path; its contents move into the returned [`RxPacket`] by copy,
    /// never by reallocation.
    ///
    /// [`poll`]: OpenDescDriver::poll
    scratch_values: Vec<Option<u128>>,
    /// Pending drain-and-flip, if a relayout is underway (see
    /// [`crate::evolve`]).
    flip: FlipState,
    /// Plan generation this queue runs: bumped once per committed flip,
    /// mirroring the device's ring generation.
    generation: u64,
    /// Set when a watchdog reset mid-flip already rolled the *device*
    /// onto the new ring generation; the host plan swap then happens at
    /// commit without reprogramming twice.
    device_rolled: bool,
    /// Relayout lifecycle counters (`{scope}.relayout.*`).
    evolve: RelayoutCounters,
}

/// Driver-internal relayout state. The held `Arc` is the incoming
/// plan's in-flight pin: the cache cannot evict a generation a queue is
/// still flipping toward (or, via `iface`, still draining from).
enum FlipState {
    Idle,
    /// Requested while `Degraded`; parked until health recovers.
    Deferred(Arc<CompiledRx>),
    /// Draining in-flight work under the outgoing plan.
    Draining(Arc<CompiledRx>),
}

impl OpenDescDriver {
    /// Attach a compiled interface to a NIC: programs the selected
    /// context via the control channel and returns the ready driver.
    pub fn attach(nic: SimNic, iface: CompiledInterface) -> Result<Self, NicError> {
        Self::attach_shared(nic, Arc::new(CompiledRx::new(iface)))
    }

    /// [`attach`](OpenDescDriver::attach) over an already-shared
    /// artifact — the sharded engine's path: every worker's queue
    /// attaches the same `Arc` (typically from the
    /// [`PlanCache`](crate::cache::PlanCache)).
    pub fn attach_shared(mut nic: SimNic, iface: Arc<CompiledRx>) -> Result<Self, NicError> {
        if let Some(ctx) = &iface.context {
            nic.configure(ctx.clone())?;
        }
        Ok(OpenDescDriver {
            nic,
            iface,
            soft: SoftNic::new(),
            mode: ValidationMode::default(),
            seq: SeqTracker::default(),
            vstats: ValidationStats::default(),
            health: HealthState::default(),
            watchdog: Watchdog::default(),
            tel: QueueTelemetry::default(),
            scratch_cmpt: Vec::new(),
            scratch_values: Vec::new(),
            flip: FlipState::Idle,
            generation: 0,
            device_rolled: false,
            evolve: RelayoutCounters::default(),
        })
    }

    /// Wire-side: deliver a frame into the NIC. Feeds the watchdog's
    /// outstanding-work counter.
    pub fn deliver(&mut self, frame: &[u8]) -> Result<(), NicError> {
        self.watchdog.note_fed(1);
        self.tel.event(TraceKind::Doorbell, frame.len() as u64, 0);
        self.nic.deliver(frame)
    }

    /// [`deliver`](OpenDescDriver::deliver) with steering-stage state
    /// handed down (the sharded engine's path), also fed to the
    /// watchdog.
    pub fn deliver_steered(
        &mut self,
        frame: &[u8],
        parsed: Option<&ParsedFrame<'_>>,
        rss_hint: Option<u32>,
    ) -> Result<(), NicError> {
        self.watchdog.note_fed(1);
        self.tel.event(TraceKind::Doorbell, frame.len() as u64, 0);
        self.nic.deliver_steered(frame, parsed, rss_hint)
    }

    /// How strictly hardware fields are validated (default:
    /// [`ValidationMode::Structural`]).
    pub fn validation_mode(&self) -> ValidationMode {
        self.mode
    }

    pub fn set_validation_mode(&mut self, mode: ValidationMode) {
        self.mode = mode;
    }

    /// Current queue health.
    pub fn health(&self) -> QueueHealth {
        self.health.health()
    }

    /// Health-machine transitions taken so far.
    pub fn health_transitions(&self) -> u64 {
        self.health.transitions
    }

    /// Cumulative validation counters.
    pub fn validation_stats(&self) -> ValidationStats {
        self.vstats
    }

    /// Ring resets the watchdog has requested.
    pub fn watchdog_resets(&self) -> u64 {
        self.watchdog.resets
    }

    /// Frames fed to this queue but not yet observed by a poll — the
    /// watchdog's honest in-flight count (doorbell-lost completions are
    /// written but unpublished, so the device's ring occupancy would
    /// under-report). Zero means the queue has *quiesced*, which is the
    /// rebalancer's precondition for migrating a bucket off it.
    pub fn in_flight(&self) -> u64 {
        self.watchdog.outstanding()
    }

    pub fn set_health_config(&mut self, cfg: HealthConfig) {
        self.health = HealthState::with_config(cfg);
    }

    pub fn set_watchdog_config(&mut self, cfg: WatchdogConfig) {
        self.watchdog = Watchdog::with_config(cfg);
    }

    /// This queue's telemetry instruments (histograms, field mix, trace
    /// ring).
    pub fn telemetry(&self) -> &QueueTelemetry {
        &self.tel
    }

    pub fn telemetry_mut(&mut self) -> &mut QueueTelemetry {
        &mut self.tel
    }

    /// Turn hot-path instrumentation on/off (the E15 on/off arms).
    pub fn set_telemetry_enabled(&mut self, enabled: bool) {
        self.tel.set_enabled(enabled);
    }

    /// Tag this driver's telemetry with its queue index (trace-event
    /// attribution; the sharded engine sets it at worker construction).
    pub fn set_queue_index(&mut self, queue: u16) {
        self.tel.set_queue(queue);
    }

    /// Register everything this driver can see into `reg` under `scope`
    /// (e.g. `rx.q0`): its own instruments, the validator and watchdog
    /// ledgers, the health machine, the device's counters, and the
    /// SoftNIC engine — the existing struct APIs become named views in
    /// one registry.
    pub fn register_metrics(&self, reg: &mut MetricRegistry, scope: &str) {
        self.tel.register_into(reg, scope);
        self.vstats
            .register_into(reg, &format!("{scope}.validation"));
        self.watchdog
            .register_into(reg, &format!("{scope}.watchdog"));
        reg.gauge(
            &format!("{scope}.health"),
            health_rank(self.health()) as f64,
        );
        reg.counter(
            &format!("{scope}.health_transitions"),
            self.health.transitions,
        );
        self.nic.register_metrics(reg, &format!("{scope}.nic"));
        self.soft.register_metrics(reg, &format!("{scope}.softnic"));
        self.evolve.register_into(reg, &format!("{scope}.relayout"));
        reg.counter(&format!("{scope}.plan_generation"), self.generation);
    }

    /// Watchdog-declared stall: reset/re-arm the ring (republishes lost
    /// doorbells, clears wedged writeback state) and revoke trust.
    ///
    /// Mid-flip the reset *rolls the queue forward*: instead of
    /// re-arming the outgoing ring generation, it reprograms the device
    /// onto the incoming one — a crash during a relayout accelerates
    /// the flip, it never wedges it or resurrects the old layout.
    /// Old-layout completions the device had in flight are re-tagged
    /// into the stale-generation fault class and discarded by sequence
    /// admission rather than misparsed. The *host* plan swap still
    /// happens only at commit (the caller's batch storage is shaped for
    /// the current plan), gated by `device_rolled`.
    fn recover(&mut self) {
        let mut rolled = false;
        if let FlipState::Draining(new) = &self.flip {
            if !self.device_rolled {
                if let Ok(stranded) = self.nic.reprogram_queue(new.context.clone()) {
                    self.device_rolled = true;
                    self.evolve.rolled_forward += 1;
                    self.tel.event(
                        TraceKind::RelayoutRolledForward,
                        self.generation + 1,
                        stranded as u64,
                    );
                    rolled = true;
                }
            }
        }
        if !rolled {
            self.nic.reset_queue();
        }
        self.health.on_fault();
        self.tel
            .event(TraceKind::WatchdogReset, self.watchdog.resets, 0);
    }

    /// Plan generation this queue runs (bumped per committed flip).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Relayout lifecycle counters so far.
    pub fn relayout_counters(&self) -> RelayoutCounters {
        self.evolve
    }

    /// Whether a relayout is pending (parked or draining).
    pub fn flip_pending(&self) -> bool {
        !matches!(self.flip, FlipState::Idle)
    }

    /// Begin a live relayout onto `new`. A healthy (or recovering)
    /// queue enters the drain; a `Degraded` one parks the request —
    /// renegotiating the contract with a device that was just caught
    /// misbehaving is exactly when a half-programmed context does the
    /// most damage — and [`advance_relayout`] retries it once health
    /// recovers. A newer request supersedes a pending one (latest
    /// intent wins).
    ///
    /// [`advance_relayout`]: OpenDescDriver::advance_relayout
    pub fn request_relayout(&mut self, new: Arc<CompiledRx>) -> FlipProgress {
        self.evolve.requested += 1;
        if self.health() == QueueHealth::Degraded {
            if !matches!(self.flip, FlipState::Deferred(_)) {
                self.evolve.deferred += 1;
                self.tel.event(
                    TraceKind::RelayoutDeferred,
                    self.generation + 1,
                    health_rank(self.health()),
                );
            }
            self.flip = FlipState::Deferred(new);
            FlipProgress::Deferred
        } else {
            self.flip = FlipState::Draining(new);
            FlipProgress::Draining
        }
    }

    /// Advance a pending flip. Promotes a parked request once health
    /// has left `Degraded`, and commits a draining one the moment the
    /// queue quiesces (`in_flight` = 0). `polls_spent` is the drain
    /// polls the caller has invested, recorded on the commit trace
    /// event. Call between polls; returns where the flip stands.
    pub fn advance_relayout(&mut self, polls_spent: u64) -> FlipProgress {
        loop {
            match &self.flip {
                FlipState::Idle => return FlipProgress::Idle,
                FlipState::Deferred(_) => {
                    if self.health() == QueueHealth::Degraded {
                        return FlipProgress::Deferred;
                    }
                    let FlipState::Deferred(new) =
                        std::mem::replace(&mut self.flip, FlipState::Idle)
                    else {
                        unreachable!()
                    };
                    self.flip = FlipState::Draining(new);
                }
                FlipState::Draining(_) => {
                    if self.in_flight() > 0 {
                        return FlipProgress::Draining;
                    }
                    return self.commit_relayout(polls_spent);
                }
            }
        }
    }

    /// Force a draining flip to commit now: outstanding frames are
    /// forgiven (struck from the watchdog ledger — the device keeps
    /// them and strands them across the generation tick as stale).
    /// The budget-exhaustion path of the drain loop; a no-op unless
    /// the flip is draining.
    pub fn force_relayout(&mut self, polls_spent: u64) -> FlipProgress {
        if matches!(self.flip, FlipState::Draining(_)) {
            self.watchdog.forgive_outstanding();
            self.commit_relayout(polls_spent)
        } else {
            self.advance_relayout(polls_spent)
        }
    }

    /// Commit the flip: device-side ring-generation reprogram (unless a
    /// roll-forward already did it), then the host plan swap. Strictly
    /// ordered — the old plan parses every completion up to the ring
    /// tick, the new plan everything after — so no completion is ever
    /// read through the wrong layout. Callers that hold batch storage
    /// must rebuild it after a commit (the plan's shape changed).
    fn commit_relayout(&mut self, polls_spent: u64) -> FlipProgress {
        let FlipState::Draining(new) = std::mem::replace(&mut self.flip, FlipState::Idle) else {
            unreachable!("commit only from Draining");
        };
        if !self.device_rolled && self.nic.reprogram_queue(new.context.clone()).is_err() {
            // The device rejected the incoming context: abort the flip
            // and stay on the old, still-programmed generation rather
            // than run a plan the device cannot serialize for.
            return FlipProgress::Idle;
        }
        self.device_rolled = false;
        self.iface = new;
        self.generation += 1;
        self.evolve.completed += 1;
        self.tel
            .event(TraceKind::RelayoutCompleted, self.generation, polls_spent);
        FlipProgress::Committed(self.generation)
    }

    /// Admit one consumed completion's sequence tag, updating the
    /// watchdog's ledger (a replay proves liveness but consumed no fed
    /// frame, so it must not mask hidden completions as progress).
    /// `true` = deliver, `false` = discard (duplicate or stale
    /// writeback).
    /// Clean admissions are NOT traced here: on the batched hot path a
    /// per-packet ring write would eat the E15 overhead budget, and the
    /// batch's `BatchPolled` event already summarizes them. Anomalies
    /// (discard verdicts) always trace; the per-packet [`poll`] path
    /// traces its writebacks itself.
    ///
    /// [`poll`]: OpenDescDriver::poll
    fn admit_seq(&mut self, seq: u64) -> bool {
        if self.mode == ValidationMode::Off {
            self.watchdog.note_progress(1);
            return true;
        }
        match self.seq.admit(seq) {
            SeqVerdict::Fresh => {
                self.watchdog.note_progress(1);
                true
            }
            SeqVerdict::Duplicate => {
                self.watchdog.note_alive();
                self.vstats.duplicates += 1;
                self.health.on_fault();
                self.tel.event(TraceKind::DiscardDuplicate, seq, 0);
                false
            }
            SeqVerdict::Stale => {
                // The stale tag occupied (and its consume retired) a
                // slot a fed frame produced: progress, just unusable.
                self.watchdog.note_progress(1);
                self.vstats.stale += 1;
                self.health.on_fault();
                self.tel.event(TraceKind::DiscardStale, seq, 0);
                false
            }
        }
    }

    /// The execution strategy the current mode + health call for.
    fn disposition(&self) -> Disposition {
        match (self.mode, self.health.health()) {
            (ValidationMode::Off, _) => Disposition::Trusted,
            (_, QueueHealth::Degraded) => Disposition::Degraded,
            (ValidationMode::Full, _) | (_, QueueHealth::Recovering) => Disposition::Verified,
            (ValidationMode::Structural, QueueHealth::Healthy) => Disposition::Trusted,
        }
    }

    /// Execute one admitted packet into `values`, applying the
    /// truncation guard, the mode/health disposition, and structural
    /// checks; updates validation stats and health.
    ///
    /// All three dispositions run the lowered, verifier-accepted
    /// bytecode ([`crate::vm`]) when the interface carries one; the
    /// tree interpreter in [`crate::plan`] is only the fallback for
    /// plans that could not be lowered (and the differential-test
    /// oracle).
    fn execute_checked(
        &mut self,
        frame: &[u8],
        cmpt: &[u8],
        rss_hint: Option<u32>,
        values: &mut [Option<u128>],
    ) {
        let iface = Arc::clone(&self.iface);
        let plan = &iface.plan;
        let set = &iface.accessors;
        let spec = iface.validator();
        let prog = iface.lowered().map(|l| &l.prog);
        // Truncated writeback: shorter than the layout promises; no
        // accessor may touch it (reads would run past the end).
        if self.mode != ValidationMode::Off && cmpt.len() < spec.expected_len {
            self.vstats.truncated += 1;
            self.health.on_fault();
            self.tel.event(
                TraceKind::Truncated,
                cmpt.len() as u64,
                spec.expected_len as u64,
            );
            match prog {
                Some(p) => p.run_degraded(&mut self.soft, frame, values),
                None => plan.execute_degraded(&mut self.soft, frame, values),
            }
            self.vstats.degraded_packets += 1;
            self.vstats.accepted += 1;
            if self.tel.enabled() {
                self.tel.fields_sw += plan.degraded.len() as u64;
                self.tel.event(TraceKind::DegradedServe, 0, 0);
            }
            return;
        }
        match self.disposition() {
            Disposition::Degraded => {
                match prog {
                    Some(p) => p.run_degraded(&mut self.soft, frame, values),
                    None => plan.execute_degraded(&mut self.soft, frame, values),
                }
                self.vstats.degraded_packets += 1;
                self.health.on_clean();
                if self.tel.enabled() {
                    self.tel.fields_sw += plan.degraded.len() as u64;
                    self.tel.event(TraceKind::DegradedServe, 0, 0);
                }
            }
            Disposition::Verified => {
                let repaired = match prog {
                    Some(p) => p.run_verified(&mut self.soft, frame, cmpt, values),
                    None => plan.execute_verified(set, &mut self.soft, frame, cmpt, values),
                };
                if repaired > 0 {
                    self.vstats.repaired_fields += repaired as u64;
                    self.health.on_fault();
                    self.tel.event(TraceKind::Repaired, repaired as u64, 0);
                } else {
                    self.health.on_clean();
                }
                if self.tel.enabled() {
                    self.tel.fields_hw += plan.hw.len() as u64;
                    self.tel.fields_sw += plan.sw.len() as u64;
                }
            }
            Disposition::Trusted => {
                match prog {
                    Some(p) => p.run_trusted(&mut self.soft, frame, cmpt, rss_hint, values),
                    None => {
                        plan.execute_into_primed(set, &mut self.soft, frame, cmpt, rss_hint, values)
                    }
                }
                if self.tel.enabled() {
                    self.tel.fields_hw += plan.hw.len() as u64;
                    self.tel.fields_sw += plan.sw.len() as u64;
                }
                if self.mode == ValidationMode::Off {
                    return;
                }
                let (fail, proven) = spec.check_values_all(frame.len(), |i| values[i]);
                if fail.is_some() {
                    self.vstats.structural_failures += 1;
                    self.health.on_fault();
                    self.tel.event(TraceKind::StructuralFailure, 0, 0);
                    // Selective re-serve: fields the structural checks
                    // just proved against frame truth keep their
                    // validated values, as do software slots (already
                    // frame-derived — minus hint-fed ones, whose memo
                    // was primed by untrusted device sideband). Only
                    // the remainder is recomputed.
                    let keep = proven | plan.keep_sw_mask(rss_hint.is_some());
                    match prog {
                        Some(p) => {
                            p.run_degraded_partial_at(&mut self.soft, frame, keep, values, 1, 0)
                        }
                        None => plan.execute_degraded_partial(&mut self.soft, frame, keep, values),
                    }
                    self.vstats.degraded_packets += 1;
                    self.tel.event(TraceKind::DegradedServe, 0, 0);
                } else {
                    self.health.on_clean();
                }
            }
        }
        self.vstats.accepted += 1;
    }

    /// Host-side: poll one packet with its requested metadata.
    ///
    /// Runs the full admission pipeline: duplicated/stale completions
    /// are discarded (the loop keeps polling), truncated or failing
    /// completions are re-served through degraded execution, and an
    /// empty poll with work outstanding feeds the watchdog — when it
    /// trips, the ring is reset/re-armed and polling retries once.
    pub fn poll(&mut self) -> Option<RxPacket> {
        let before = self.health();
        let r = self.poll_inner();
        self.note_health_transition(before);
        r
    }

    fn poll_inner(&mut self) -> Option<RxPacket> {
        // Frames move into the returned packet, so their storage is
        // per-call; completion and values scratch recycle across polls.
        let mut frame = Vec::new();
        let mut cmpt = std::mem::take(&mut self.scratch_cmpt);
        let mut values = std::mem::take(&mut self.scratch_values);
        let result = loop {
            let Some(side) = self.nic.receive_into_hinted(&mut frame, &mut cmpt) else {
                if self.watchdog.observe_empty() {
                    self.recover();
                    continue;
                }
                break None;
            };
            if !self.admit_seq(side.seq) {
                continue;
            }
            self.tel.event(TraceKind::Writeback, side.seq, 0);
            values.clear();
            values.resize(self.iface.plan.steps.len(), None);
            self.execute_checked(&frame, &cmpt, side.rss_hint, &mut values);
            let meta = self
                .iface
                .accessors
                .accessors
                .iter()
                .zip(values.iter())
                .map(|(a, v)| (a.semantic, *v))
                .collect();
            break Some(RxPacket {
                frame: std::mem::take(&mut frame),
                meta,
            });
        };
        self.scratch_cmpt = cmpt;
        self.scratch_values = values;
        result
    }

    /// Poll up to `n` packets.
    pub fn poll_batch(&mut self, n: usize) -> Vec<RxPacket> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.poll() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out
    }

    /// Batch storage sized for this interface, holding up to `cap`
    /// packets. Create once, then refill with [`poll_batch_into`].
    ///
    /// [`poll_batch_into`]: OpenDescDriver::poll_batch_into
    pub fn make_batch(&self, cap: usize) -> RxBatch {
        RxBatch::new(&self.iface, cap)
    }

    /// Zero-allocation batched poll: drain up to `batch.capacity()`
    /// pending packets into recycled storage, then fill the metadata
    /// columns — hardware fields via the columnar batch reader, software
    /// fields via the compiled shim plan (one parse per packet, memoized
    /// intra-packet repeats). Returns the number of packets received.
    ///
    /// Runs the same admission pipeline as [`poll`] (sequence discard,
    /// truncation guard, mode/health disposition, watchdog) and produces
    /// bit-identical metadata to calling [`poll`] per packet.
    ///
    /// [`poll`]: OpenDescDriver::poll
    pub fn poll_batch_into(&mut self, batch: &mut RxBatch) -> usize {
        assert_eq!(
            batch.sems.len(),
            self.iface.accessors.accessors.len(),
            "batch was built for a different interface"
        );
        // Telemetry discipline: a handful of integer histogram records
        // per *batch* (not per packet), skipped entirely when disabled.
        // Even the two `Instant` reads are too hot for every cycle at
        // ~1µs/batch, so the poll-cost clock is sampled 1-in-2^k cycles
        // (`sample_clock`) — the ≤3% E15 overhead budget.
        let instrument = self.tel.enabled();
        let (t0, occupancy, health_before) = if instrument {
            let t0 = self.tel.sample_clock().then(Instant::now);
            (t0, self.nic.pending_completions() as u64, self.health())
        } else {
            (None, 0, self.health())
        };
        let mut n = self.drain_batch(batch);
        if n == 0 && self.watchdog.observe_empty() {
            // Stall declared: reset/re-arm and retry once — the re-arm
            // republishes completions a lost doorbell was hiding.
            self.recover();
            n = self.drain_batch(batch);
        }
        if n > 0 {
            self.fill_batch(batch);
        }
        if instrument {
            if let Some(t0) = t0 {
                self.tel.poll_ns.record(t0.elapsed().as_nanos() as u64);
            }
            self.tel.ring_occupancy.record(occupancy);
            if n > 0 {
                self.tel
                    .batch_fill_permille
                    .record((n * 1000 / batch.cap.max(1)) as u64);
                self.tel
                    .trace
                    .record(TraceKind::BatchPolled, n as u64, occupancy);
            }
            self.note_health_transition(health_before);
        }
        n
    }

    /// Record a health-machine move since `before`, if any, into the
    /// trace ring (operands are severity ranks: 0 = Healthy,
    /// 1 = Recovering, 2 = Degraded).
    fn note_health_transition(&mut self, before: QueueHealth) {
        let after = self.health();
        if after != before {
            self.tel.event(
                TraceKind::HealthTransition,
                health_rank(before),
                health_rank(after),
            );
        }
    }

    /// Drain the rings into recycled frame/completion storage, keeping
    /// each packet's steering sideband and truncation flag alongside it;
    /// duplicated/stale completions are discarded here.
    fn drain_batch(&mut self, batch: &mut RxBatch) -> usize {
        let expected_len = self.iface.validator().expected_len;
        let mut n = 0;
        while n < batch.cap {
            let Some(side) = self
                .nic
                .receive_into_hinted(&mut batch.frames[n], &mut batch.cmpts[n])
            else {
                break;
            };
            if !self.admit_seq(side.seq) {
                continue;
            }
            batch.hints[n] = side.rss_hint;
            let short = self.mode != ValidationMode::Off && batch.cmpts[n].len() < expected_len;
            batch.short[n] = short;
            if short {
                self.vstats.truncated += 1;
                self.health.on_fault();
            }
            n += 1;
        }
        batch.len = n;
        n
    }

    /// Fill the metadata columns of a drained batch. The disposition is
    /// chosen once from the health at entry; structural failures inside
    /// the batch re-serve that packet degraded and demote health for the
    /// *next* batch.
    ///
    /// When the interface carries a lowered [`PlanProgram`] (every
    /// verifier-accepted plan does), all three dispositions execute the
    /// bytecode; hardware fields additionally run one *instruction*
    /// across the whole batch ([`vm::load_column`]), amortizing dispatch
    /// to once per field per batch. The tree interpreter remains only as
    /// the fallback for unlowerable plans.
    ///
    /// [`PlanProgram`]: crate::vm::PlanProgram
    fn fill_batch(&mut self, batch: &mut RxBatch) {
        let iface = Arc::clone(&self.iface);
        let plan = &iface.plan;
        let set = &iface.accessors;
        let spec = iface.validator();
        let prog = iface.lowered().map(|l| &l.prog);
        let n = batch.len;
        let cap = batch.cap;
        let fields = batch.sems.len();
        match self.disposition() {
            Disposition::Degraded => {
                for pkt in 0..n {
                    match prog {
                        Some(p) => p.run_degraded_at(
                            &mut self.soft,
                            &batch.frames[pkt],
                            &mut batch.meta,
                            cap,
                            pkt,
                        ),
                        None => degrade_one(
                            plan,
                            &mut self.soft,
                            fields,
                            cap,
                            pkt,
                            &batch.frames[pkt],
                            &mut batch.meta,
                        ),
                    }
                    self.vstats.degraded_packets += 1;
                    self.vstats.accepted += 1;
                    if !batch.short[pkt] {
                        self.health.on_clean();
                    }
                }
                if self.tel.enabled() {
                    self.tel.fields_sw += (n * plan.degraded.len()) as u64;
                    self.tel.event(TraceKind::DegradedServe, n as u64, 0);
                }
            }
            Disposition::Verified => {
                let mut degraded = 0usize;
                for pkt in 0..n {
                    if batch.short[pkt] {
                        degraded += 1;
                        match prog {
                            Some(p) => p.run_degraded_at(
                                &mut self.soft,
                                &batch.frames[pkt],
                                &mut batch.meta,
                                cap,
                                pkt,
                            ),
                            None => degrade_one(
                                plan,
                                &mut self.soft,
                                fields,
                                cap,
                                pkt,
                                &batch.frames[pkt],
                                &mut batch.meta,
                            ),
                        }
                        self.vstats.degraded_packets += 1;
                        self.vstats.accepted += 1;
                        continue;
                    }
                    let repaired = match prog {
                        Some(p) => p.run_verified_at(
                            &mut self.soft,
                            &batch.frames[pkt],
                            &batch.cmpts[pkt],
                            &mut batch.meta,
                            cap,
                            pkt,
                        ),
                        None => verify_one(
                            plan,
                            set,
                            &mut self.soft,
                            cap,
                            pkt,
                            &batch.frames[pkt],
                            &batch.cmpts[pkt],
                            &mut batch.meta,
                        ),
                    };
                    if repaired > 0 {
                        self.vstats.repaired_fields += repaired as u64;
                        self.health.on_fault();
                        self.tel
                            .event(TraceKind::Repaired, repaired as u64, pkt as u64);
                    } else {
                        self.health.on_clean();
                    }
                    self.vstats.accepted += 1;
                }
                if self.tel.enabled() {
                    self.tel.fields_sw +=
                        (degraded * plan.degraded.len() + (n - degraded) * plan.sw.len()) as u64;
                    self.tel.fields_hw += ((n - degraded) * plan.hw.len()) as u64;
                }
            }
            Disposition::Trusted => {
                let any_short = batch.short[..n].iter().any(|s| *s);
                // Hardware fields: one column at a time across the whole
                // batch; truncated records fall back to per-packet guarded
                // reads (`None` for the short ones).
                match prog {
                    Some(p) => {
                        for insn in p.hw_insns() {
                            let base = insn.dst as usize * cap;
                            if any_short {
                                for pkt in 0..n {
                                    batch.meta[base + pkt] = if batch.short[pkt] {
                                        None
                                    } else {
                                        Some(vm::exec_load(insn, &batch.cmpts[pkt]))
                                    };
                                }
                            } else {
                                vm::load_column(
                                    insn,
                                    &batch.cmpts[..n],
                                    &mut batch.meta[base..base + n],
                                );
                            }
                        }
                    }
                    None => {
                        for &acc_idx in &plan.hw {
                            let base = acc_idx * cap;
                            if any_short {
                                for pkt in 0..n {
                                    batch.meta[base + pkt] = if batch.short[pkt] {
                                        None
                                    } else {
                                        Some(set.accessors[acc_idx].read(&batch.cmpts[pkt]))
                                    };
                                }
                            } else {
                                set.read_column(acc_idx, &batch.cmpts[..n], &mut batch.hwcol[..n]);
                                for pkt in 0..n {
                                    batch.meta[base + pkt] = Some(batch.hwcol[pkt]);
                                }
                            }
                        }
                    }
                }
                // Software fields: parse each frame once, share it across
                // shims; a device-reported hash primes the memo so
                // software RSS steps are lookups, not Toeplitz runs.
                if plan.needs_parse() {
                    for pkt in 0..n {
                        if batch.short[pkt] {
                            continue;
                        }
                        let frame = &batch.frames[pkt];
                        let parsed = ParsedFrame::parse(frame);
                        let mut memo = ShimMemo::default();
                        if let Some(h) = batch.hints[pkt] {
                            memo.prime_rss(h);
                        }
                        match prog {
                            Some(p) => {
                                for insn in p.sw_insns() {
                                    batch.meta[insn.dst as usize * cap + pkt] = vm::exec_shim(
                                        &mut self.soft,
                                        insn,
                                        parsed.as_ref(),
                                        frame.len(),
                                        &mut memo,
                                    );
                                }
                            }
                            None => {
                                for &(acc_idx, op) in &plan.sw {
                                    batch.meta[acc_idx * cap + pkt] = parsed
                                        .as_ref()
                                        .and_then(|p| {
                                            self.soft.exec_op(op, p, frame.len(), &mut memo)
                                        })
                                        .map(|v| v as u128);
                                }
                            }
                        }
                    }
                }
                if self.tel.enabled() {
                    let shorts = batch.short[..n].iter().filter(|s| **s).count();
                    self.tel.fields_hw += ((n - shorts) * plan.hw.len()) as u64;
                    self.tel.fields_sw += ((n - shorts) * plan.sw.len()) as u64;
                }
                if self.mode == ValidationMode::Off {
                    return;
                }
                for pkt in 0..n {
                    if batch.short[pkt] {
                        match prog {
                            Some(p) => p.run_degraded_at(
                                &mut self.soft,
                                &batch.frames[pkt],
                                &mut batch.meta,
                                cap,
                                pkt,
                            ),
                            None => degrade_one(
                                plan,
                                &mut self.soft,
                                fields,
                                cap,
                                pkt,
                                &batch.frames[pkt],
                                &mut batch.meta,
                            ),
                        }
                        self.vstats.degraded_packets += 1;
                        self.vstats.accepted += 1;
                        if self.tel.enabled() {
                            self.tel.fields_sw += plan.degraded.len() as u64;
                            self.tel.event(TraceKind::DegradedServe, 1, pkt as u64);
                        }
                        continue;
                    }
                    let frame_len = batch.frames[pkt].len();
                    let (fail, proven) =
                        spec.check_values_all(frame_len, |i| batch.meta[i * cap + pkt]);
                    if fail.is_some() {
                        self.vstats.structural_failures += 1;
                        self.health.on_fault();
                        self.tel.event(TraceKind::StructuralFailure, pkt as u64, 0);
                        // Selective re-serve: structurally-proven fields
                        // and frame-derived software slots (minus
                        // hint-fed ones) keep their values; only the
                        // remainder is recomputed.
                        let keep = proven | plan.keep_sw_mask(batch.hints[pkt].is_some());
                        match prog {
                            Some(p) => p.run_degraded_partial_at(
                                &mut self.soft,
                                &batch.frames[pkt],
                                keep,
                                &mut batch.meta,
                                cap,
                                pkt,
                            ),
                            None => degrade_partial_one(
                                plan,
                                &mut self.soft,
                                fields,
                                cap,
                                pkt,
                                keep,
                                &batch.frames[pkt],
                                &mut batch.meta,
                            ),
                        }
                        self.vstats.degraded_packets += 1;
                        if self.tel.enabled() {
                            self.tel.fields_sw += plan.degraded.len() as u64;
                            self.tel.event(TraceKind::DegradedServe, 1, pkt as u64);
                        }
                    } else {
                        self.health.on_clean();
                    }
                    self.vstats.accepted += 1;
                }
            }
        }
    }
}

/// Severity rank of a health state, used as trace-event operand
/// encoding and as the `*.health` gauge value: 0 = Healthy,
/// 1 = Recovering, 2 = Degraded.
fn health_rank(h: QueueHealth) -> u64 {
    match h {
        QueueHealth::Healthy => 0,
        QueueHealth::Recovering => 1,
        QueueHealth::Degraded => 2,
    }
}

/// Tree-interpreter fallback for verified execution of one batched
/// packet (same contract as [`RxPlan::execute_verified`], on
/// column-major storage); returns repaired-field count. Only reached
/// when the plan could not be lowered to bytecode.
#[allow(clippy::too_many_arguments)]
fn verify_one(
    plan: &RxPlan,
    set: &AccessorSet,
    soft: &mut SoftNic,
    cap: usize,
    pkt: usize,
    frame: &[u8],
    cmpt: &[u8],
    meta: &mut [Option<u128>],
) -> u32 {
    let parsed = ParsedFrame::parse(frame);
    let mut memo = ShimMemo::default();
    for &acc_idx in &plan.hw {
        meta[acc_idx * cap + pkt] = Some(set.accessors[acc_idx].read(cmpt));
    }
    let mut repaired = 0u32;
    for &(acc_idx, op) in &plan.hw_check {
        let want = parsed
            .as_ref()
            .and_then(|p| soft.exec_op(op, p, frame.len(), &mut memo))
            .map(|v| width_mask(set.accessors[acc_idx].width_bits) & v as u128);
        if let Some(w) = want {
            let slot = &mut meta[acc_idx * cap + pkt];
            if *slot != Some(w) {
                *slot = Some(w);
                repaired += 1;
            }
        }
    }
    for &(acc_idx, op) in &plan.sw {
        meta[acc_idx * cap + pkt] = parsed
            .as_ref()
            .and_then(|p| soft.exec_op(op, p, frame.len(), &mut memo))
            .map(|v| v as u128);
    }
    repaired
}

/// Tree-interpreter fallback for selective degraded re-serve of one
/// batched packet (same contract as
/// [`RxPlan::execute_degraded_partial`], on column-major storage).
#[allow(clippy::too_many_arguments)]
fn degrade_partial_one(
    plan: &RxPlan,
    soft: &mut SoftNic,
    fields: usize,
    cap: usize,
    pkt: usize,
    keep: u128,
    frame: &[u8],
    meta: &mut [Option<u128>],
) {
    if fields > 128 {
        return degrade_one(plan, soft, fields, cap, pkt, frame, meta);
    }
    for f in 0..fields {
        if keep & (1u128 << f) == 0 {
            meta[f * cap + pkt] = None;
        }
    }
    let parsed = ParsedFrame::parse(frame);
    let mut memo = ShimMemo::default();
    for &(acc_idx, op) in &plan.degraded {
        if acc_idx < 128 && keep & (1u128 << acc_idx) != 0 {
            continue;
        }
        meta[acc_idx * cap + pkt] = parsed
            .as_ref()
            .and_then(|p| soft.exec_op(op, p, frame.len(), &mut memo))
            .map(|v| v as u128);
    }
}

/// Degraded-mode recomputation of one batched packet: clear every field
/// slot, then fill the recomputable ones from frame bytes (same contract
/// as [`RxPlan::execute_degraded`], on column-major storage).
fn degrade_one(
    plan: &RxPlan,
    soft: &mut SoftNic,
    fields: usize,
    cap: usize,
    pkt: usize,
    frame: &[u8],
    meta: &mut [Option<u128>],
) {
    for f in 0..fields {
        meta[f * cap + pkt] = None;
    }
    let parsed = ParsedFrame::parse(frame);
    let mut memo = ShimMemo::default();
    for &(acc_idx, op) in &plan.degraded {
        meta[acc_idx * cap + pkt] = parsed
            .as_ref()
            .and_then(|p| soft.exec_op(op, p, frame.len(), &mut memo))
            .map(|v| v as u128);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use crate::intent::Intent;
    use opendesc_ir::{names, SemanticRegistry};
    use opendesc_nicsim::models;
    use opendesc_softnic::testpkt;

    fn kvs_frame(key: &str) -> Vec<u8> {
        testpkt::udp4(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            40000,
            11211,
            &testpkt::kvs_get_payload(key),
            Some(0x0123),
        )
    }

    fn driver_for(model: opendesc_nicsim::NicModel) -> (OpenDescDriver, SemanticRegistry) {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::from_p4(crate::intent::FIG1_INTENT_P4, &mut reg).unwrap();
        let compiled = Compiler::default()
            .compile_model(&model, &intent, &mut reg)
            .unwrap();
        let nic = SimNic::new(model, 256).unwrap();
        (OpenDescDriver::attach(nic, compiled).unwrap(), reg)
    }

    #[test]
    fn fig1_scenario_on_mlx5_all_hardware() {
        let (mut drv, reg) = driver_for(models::mlx5());
        drv.deliver(&kvs_frame("user:1")).unwrap();
        let pkt = drv.poll().unwrap();
        let rss = reg.id(names::RSS_HASH).unwrap();
        let vlan = reg.id(names::VLAN_TCI).unwrap();
        let kvs = reg.id(names::KVS_KEY_HASH).unwrap();
        assert_eq!(pkt.get(vlan), Some(0x0123));
        let expected_kvs = opendesc_softnic::kvs_key_hash(b"get user:1\r\n").unwrap() as u128;
        assert_eq!(pkt.get(kvs), Some(expected_kvs));
        // RSS from hardware must equal the reference computation.
        let mut soft = SoftNic::new();
        let want = soft.compute_by_name(names::RSS_HASH, &pkt.frame).unwrap() as u128;
        assert_eq!(pkt.get(rss), Some(want));
    }

    #[test]
    fn fig1_scenario_on_e1000e_mixes_hw_and_soft() {
        let (mut drv, reg) = driver_for(models::e1000e());
        drv.deliver(&kvs_frame("user:2")).unwrap();
        let pkt = drv.poll().unwrap();
        // The compiler chose the csum path; RSS and KVS are software
        // shims but the application still gets every value.
        for name in [
            names::RSS_HASH,
            names::VLAN_TCI,
            names::IP_CHECKSUM,
            names::KVS_KEY_HASH,
        ] {
            let id = reg.id(name).unwrap();
            assert!(pkt.get(id).is_some(), "{name} missing from RxPacket");
        }
    }

    #[test]
    fn hardware_and_software_values_agree_across_models() {
        // The portability claim: the same application observes identical
        // metadata values on every NIC model, regardless of which side
        // computed them.
        let frame = kvs_frame("same:key");
        let mut per_model: Vec<Vec<Option<u128>>> = Vec::new();
        for model in [
            models::e1000e(),
            models::ixgbe(),
            models::mlx5(),
            models::qdma_default(),
        ] {
            let (mut drv, _) = driver_for(model);
            drv.deliver(&frame).unwrap();
            let pkt = drv.poll().unwrap();
            per_model.push(pkt.meta.iter().map(|(_, v)| *v).collect());
        }
        for window in per_model.windows(2) {
            assert_eq!(window[0], window[1], "metadata diverged between models");
        }
    }

    #[test]
    fn batched_poll_matches_per_packet_poll() {
        for model in [
            models::e1000e(),
            models::ixgbe(),
            models::mlx5(),
            models::qdma_default(),
        ] {
            let name = model.name.clone();
            let (mut a, _) = driver_for(model.clone());
            let (mut b, _) = driver_for(model);
            let frames: Vec<Vec<u8>> = (0..7)
                .map(|i| kvs_frame(&format!("flow:{}", i % 3)))
                .collect();
            for f in &frames {
                a.deliver(f).unwrap();
                b.deliver(f).unwrap();
            }
            let singles = a.poll_batch(7);
            let mut batch = b.make_batch(7);
            assert_eq!(b.poll_batch_into(&mut batch), 7, "{name}");
            for (pkt, single) in singles.iter().enumerate() {
                assert_eq!(batch.frame(pkt), &single.frame[..], "{name}");
                for (field, (sem, want)) in single.meta.iter().enumerate() {
                    assert_eq!(batch.value_at(field, pkt), *want, "{name}");
                    assert_eq!(batch.get(pkt, *sem), *want, "{name}");
                }
            }
        }
    }

    #[test]
    fn batch_storage_recycles_across_polls() {
        let (mut drv, reg) = driver_for(models::e1000e());
        let vlan = reg.id(names::VLAN_TCI).unwrap();
        let mut batch = drv.make_batch(4);
        for round in 0..3 {
            for i in 0..4 {
                drv.deliver(&kvs_frame(&format!("r{round}:{i}"))).unwrap();
            }
            assert_eq!(drv.poll_batch_into(&mut batch), 4);
            assert_eq!(batch.len(), 4);
            for pkt in 0..4 {
                assert_eq!(batch.get(pkt, vlan), Some(0x0123), "round {round}");
            }
        }
        // Partial refill shrinks len; stale packets are not readable.
        drv.deliver(&kvs_frame("last")).unwrap();
        assert_eq!(drv.poll_batch_into(&mut batch), 1);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.column(0).len(), 1);
    }

    #[test]
    fn poll_empty_returns_none() {
        let (mut drv, _) = driver_for(models::mlx5());
        assert!(drv.poll().is_none());
    }

    fn faults(b: opendesc_nicsim::FaultConfigBuilder) -> opendesc_nicsim::FaultConfig {
        b.build().unwrap()
    }

    #[test]
    fn duplicated_completions_are_discarded_once() {
        use opendesc_nicsim::FaultConfig;
        let (mut drv, reg) = driver_for(models::e1000e());
        drv.nic
            .set_faults(faults(FaultConfig::builder().duplicate_chance(1.0).seed(5)))
            .unwrap();
        drv.deliver(&kvs_frame("dup:key")).unwrap();
        let pkt = drv.poll().expect("the original completion is delivered");
        let vlan = reg.id(names::VLAN_TCI).unwrap();
        assert_eq!(pkt.get(vlan), Some(0x0123));
        // The replay is discarded inside the poll loop, not delivered.
        assert!(drv.poll().is_none());
        assert_eq!(drv.validation_stats().duplicates, 1);
        assert_eq!(drv.health(), crate::robust::QueueHealth::Degraded);
    }

    #[test]
    fn truncated_completions_are_served_degraded_not_panicking() {
        use opendesc_nicsim::FaultConfig;
        let (mut drv, reg) = driver_for(models::e1000e());
        drv.nic
            .set_faults(faults(FaultConfig::builder().truncate_chance(1.0).seed(7)))
            .unwrap();
        drv.deliver(&kvs_frame("trunc:key")).unwrap();
        let pkt = drv.poll().expect("truncated records still deliver");
        // Every FIG1 field is software-recomputable, so degraded
        // execution produces all of them — correct-or-absent, no reads
        // of the short record.
        for name in [
            names::RSS_HASH,
            names::VLAN_TCI,
            names::IP_CHECKSUM,
            names::KVS_KEY_HASH,
        ] {
            let id = reg.id(name).unwrap();
            assert!(pkt.get(id).is_some(), "{name} missing in degraded mode");
        }
        assert_eq!(pkt.get(reg.id(names::VLAN_TCI).unwrap()), Some(0x0123));
        let s = drv.validation_stats();
        assert_eq!(s.truncated, 1);
        assert_eq!(s.degraded_packets, 1);
    }

    #[test]
    fn lost_doorbell_recovers_via_watchdog_reset() {
        use opendesc_nicsim::FaultConfig;
        let (mut drv, reg) = driver_for(models::e1000e());
        drv.nic
            .set_faults(faults(
                FaultConfig::builder().doorbell_loss_chance(1.0).seed(9),
            ))
            .unwrap();
        drv.deliver(&kvs_frame("lost:key")).unwrap();
        // The completion exists but was never published; empty polls
        // accumulate until the watchdog trips (default: 3) and the
        // reset/re-arm republishes it within the same poll call.
        let mut polls = 0;
        let pkt = loop {
            polls += 1;
            assert!(polls <= 8, "watchdog never recovered the queue");
            if let Some(p) = drv.poll() {
                break p;
            }
        };
        assert_eq!(pkt.get(reg.id(names::VLAN_TCI).unwrap()), Some(0x0123));
        assert_eq!(drv.watchdog_resets(), 1);
        assert_eq!(drv.nic.stats.resets, 1);
    }

    #[test]
    fn full_mode_repairs_corrupted_hardware_fields() {
        use opendesc_nicsim::FaultConfig;
        let (mut drv, _) = driver_for(models::e1000e());
        drv.set_validation_mode(crate::robust::ValidationMode::Full);
        drv.nic
            .set_faults(faults(FaultConfig::builder().corrupt_chance(1.0).seed(13)))
            .unwrap();
        // Reference values from an honest driver seeing the same frames.
        let (mut clean, _) = driver_for(models::e1000e());
        for i in 0..20 {
            let f = kvs_frame(&format!("fix:{i}"));
            drv.deliver(&f).unwrap();
            clean.deliver(&f).unwrap();
            let got = drv.poll().unwrap();
            let want = clean.poll().unwrap();
            assert_eq!(got.meta, want.meta, "packet {i} survived corruption wrong");
        }
        assert!(
            drv.validation_stats().repaired_fields > 0,
            "20 corrupted completions should hit at least one checked field"
        );
    }

    #[test]
    fn health_walks_back_to_healthy_after_faults_stop() {
        use crate::robust::{HealthConfig, QueueHealth};
        use opendesc_nicsim::FaultConfig;
        let (mut drv, _) = driver_for(models::e1000e());
        drv.set_health_config(HealthConfig {
            degraded_clean: 2,
            recovering_clean: 2,
        });
        drv.nic
            .set_faults(faults(
                FaultConfig::builder().duplicate_chance(1.0).seed(21),
            ))
            .unwrap();
        drv.deliver(&kvs_frame("sick")).unwrap();
        drv.poll().unwrap();
        assert!(drv.poll().is_none(), "replay discarded");
        assert_eq!(drv.health(), QueueHealth::Degraded);
        // Faults stop; clean traffic rebuilds trust through Recovering.
        drv.nic.set_faults(FaultConfig::default()).unwrap();
        for i in 0..6 {
            drv.deliver(&kvs_frame(&format!("well:{i}"))).unwrap();
            drv.poll().unwrap();
        }
        assert_eq!(drv.health(), QueueHealth::Healthy);
        let s = drv.validation_stats();
        assert!(s.degraded_packets >= 2, "degraded streak executed software");
    }

    #[test]
    fn batched_poll_runs_the_same_admission_pipeline() {
        use opendesc_nicsim::FaultConfig;
        let (mut drv, reg) = driver_for(models::e1000e());
        drv.nic
            .set_faults(faults(
                FaultConfig::builder().duplicate_chance(1.0).seed(23),
            ))
            .unwrap();
        for i in 0..3 {
            drv.deliver(&kvs_frame(&format!("b:{i}"))).unwrap();
        }
        let mut batch = drv.make_batch(8);
        assert_eq!(drv.poll_batch_into(&mut batch), 3, "replays are discarded");
        assert_eq!(drv.validation_stats().duplicates, 3);
        let vlan = reg.id(names::VLAN_TCI).unwrap();
        for pkt in 0..3 {
            // Served degraded (trust was revoked mid-drain) but still
            // correct: recomputable fields match the wire truth.
            assert_eq!(batch.get(pkt, vlan), Some(0x0123));
        }
    }

    #[test]
    fn validation_off_skips_admission_and_checks() {
        use opendesc_nicsim::FaultConfig;
        let (mut drv, _) = driver_for(models::e1000e());
        drv.set_validation_mode(crate::robust::ValidationMode::Off);
        drv.nic
            .set_faults(faults(
                FaultConfig::builder().duplicate_chance(1.0).seed(25),
            ))
            .unwrap();
        drv.deliver(&kvs_frame("off")).unwrap();
        assert!(drv.poll().is_some());
        assert!(drv.poll().is_some(), "replay delivered verbatim when Off");
        assert_eq!(drv.validation_stats(), Default::default());
        assert_eq!(drv.health(), crate::robust::QueueHealth::Healthy);
    }

    #[test]
    fn poll_batch_respects_available() {
        let (mut drv, _) = driver_for(models::mlx5());
        for i in 0..5 {
            drv.deliver(&kvs_frame(&format!("k{i}"))).unwrap();
        }
        assert_eq!(drv.poll_batch(3).len(), 3);
        assert_eq!(drv.poll_batch(10).len(), 2);
    }
}
