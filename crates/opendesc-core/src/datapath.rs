//! The generated receive datapath: a compiled interface attached to a
//! (simulated) NIC.
//!
//! This is the paper's end goal in miniature — "a generated minimalist
//! driver datapath": the driver programs the NIC context from the
//! compiled selection, then per packet reads exactly the requested
//! fields through constant-time accessors, invoking SoftNIC shims only
//! for semantics the layout does not carry.

use crate::cache::CompiledRx;
use crate::compiler::CompiledInterface;
use opendesc_ir::SemanticId;
use opendesc_nicsim::nic::{NicError, SimNic};
use opendesc_softnic::wire::ParsedFrame;
use opendesc_softnic::{ShimMemo, SoftNic};
use std::sync::Arc;

/// Metadata for one received packet, ordered like the intent's fields.
#[derive(Debug, Clone, PartialEq)]
pub struct RxPacket {
    pub frame: Vec<u8>,
    /// `(semantic, value)` per intent field; `None` when a software shim
    /// could not compute (e.g. non-IP frame).
    pub meta: Vec<(SemanticId, Option<u128>)>,
}

impl RxPacket {
    /// Value of a semantic, if present.
    pub fn get(&self, sem: SemanticId) -> Option<u128> {
        self.meta
            .iter()
            .find(|(s, _)| *s == sem)
            .and_then(|(_, v)| *v)
    }
}

/// Struct-of-arrays batch storage for the zero-allocation RX path.
///
/// One `RxBatch` is created per queue (see
/// [`OpenDescDriver::make_batch`]) and refilled by
/// [`OpenDescDriver::poll_batch_into`]; frame, completion, and metadata
/// storage is recycled across calls, so a steady-state poll loop stops
/// allocating entirely. Metadata is column-major — all packets' values
/// of one field are contiguous (`meta[field * cap + pkt]`) — which is
/// what the columnar hardware reader fills.
#[derive(Debug, Default)]
pub struct RxBatch {
    /// Packets currently held (set by the last `poll_batch_into`).
    len: usize,
    /// Capacity in packets.
    cap: usize,
    /// Intent fields per packet (accessor order).
    sems: Vec<SemanticId>,
    /// Received frames; `frames[i]` is valid for `i < len`.
    frames: Vec<Vec<u8>>,
    /// Completion records, parallel to `frames`.
    cmpts: Vec<Vec<u8>>,
    /// Column-major metadata: `meta[field * cap + pkt]`.
    meta: Vec<Option<u128>>,
    /// Scratch column for the hardware batch reader.
    hwcol: Vec<u128>,
    /// Steering sideband per packet (device-reported RSS hash), consumed
    /// to prime the shim memo; recycled like the other columns.
    hints: Vec<Option<u32>>,
}

impl RxBatch {
    fn new(iface: &CompiledInterface, cap: usize) -> RxBatch {
        let sems: Vec<SemanticId> = iface
            .accessors
            .accessors
            .iter()
            .map(|a| a.semantic)
            .collect();
        let fields = sems.len();
        RxBatch {
            len: 0,
            cap,
            sems,
            frames: (0..cap).map(|_| Vec::new()).collect(),
            cmpts: (0..cap).map(|_| Vec::new()).collect(),
            meta: vec![None; fields * cap],
            hwcol: vec![0; cap],
            hints: vec![None; cap],
        }
    }

    /// Packets received by the last poll.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum packets per poll.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The per-packet fields, in intent/accessor order.
    pub fn semantics(&self) -> &[SemanticId] {
        &self.sems
    }

    /// Frame bytes of packet `pkt` (`pkt < len`).
    pub fn frame(&self, pkt: usize) -> &[u8] {
        assert!(pkt < self.len);
        &self.frames[pkt]
    }

    /// Completion record of packet `pkt` (`pkt < len`).
    pub fn cmpt(&self, pkt: usize) -> &[u8] {
        assert!(pkt < self.len);
        &self.cmpts[pkt]
    }

    /// Metadata by field position (accessor order) and packet.
    pub fn value_at(&self, field: usize, pkt: usize) -> Option<u128> {
        assert!(pkt < self.len);
        self.meta[field * self.cap + pkt]
    }

    /// Metadata by semantic and packet.
    pub fn get(&self, pkt: usize, sem: SemanticId) -> Option<u128> {
        let field = self.sems.iter().position(|s| *s == sem)?;
        self.value_at(field, pkt)
    }

    /// One field's values across the batch (`[..len]`).
    pub fn column(&self, field: usize) -> &[Option<u128>] {
        &self.meta[field * self.cap..field * self.cap + self.len]
    }

    /// The steering-stage RSS hash delivered with packet `pkt`, if the
    /// device reported one.
    pub fn rss_hint(&self, pkt: usize) -> Option<u32> {
        assert!(pkt < self.len);
        self.hints[pkt]
    }
}

/// A compiled OpenDesc driver bound to a NIC instance.
///
/// The compiled interface is held through a shared immutable
/// [`CompiledRx`]: N queues attached with the same artifact hold one
/// compilation, not N copies (`iface` still reads like a
/// `CompiledInterface` via `Deref`).
pub struct OpenDescDriver {
    pub nic: SimNic,
    pub iface: Arc<CompiledRx>,
    soft: SoftNic,
}

impl OpenDescDriver {
    /// Attach a compiled interface to a NIC: programs the selected
    /// context via the control channel and returns the ready driver.
    pub fn attach(nic: SimNic, iface: CompiledInterface) -> Result<Self, NicError> {
        Self::attach_shared(nic, Arc::new(CompiledRx::new(iface)))
    }

    /// [`attach`](OpenDescDriver::attach) over an already-shared
    /// artifact — the sharded engine's path: every worker's queue
    /// attaches the same `Arc` (typically from the
    /// [`PlanCache`](crate::cache::PlanCache)).
    pub fn attach_shared(mut nic: SimNic, iface: Arc<CompiledRx>) -> Result<Self, NicError> {
        if let Some(ctx) = &iface.context {
            nic.configure(ctx.clone())?;
        }
        Ok(OpenDescDriver {
            nic,
            iface,
            soft: SoftNic::new(),
        })
    }

    /// Wire-side: deliver a frame into the NIC.
    pub fn deliver(&mut self, frame: &[u8]) -> Result<(), NicError> {
        self.nic.deliver(frame)
    }

    /// Host-side: poll one packet with its requested metadata.
    pub fn poll(&mut self) -> Option<RxPacket> {
        let mut frame = Vec::new();
        let mut cmpt = Vec::new();
        let side = self.nic.receive_into_hinted(&mut frame, &mut cmpt)?;
        let mut values = vec![None; self.iface.plan.steps.len()];
        self.iface.plan.execute_into_primed(
            &self.iface.accessors,
            &mut self.soft,
            &frame,
            &cmpt,
            side.rss_hint,
            &mut values,
        );
        let meta = self
            .iface
            .accessors
            .accessors
            .iter()
            .zip(values)
            .map(|(a, v)| (a.semantic, v))
            .collect();
        Some(RxPacket { frame, meta })
    }

    /// Poll up to `n` packets.
    pub fn poll_batch(&mut self, n: usize) -> Vec<RxPacket> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.poll() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out
    }

    /// Batch storage sized for this interface, holding up to `cap`
    /// packets. Create once, then refill with [`poll_batch_into`].
    ///
    /// [`poll_batch_into`]: OpenDescDriver::poll_batch_into
    pub fn make_batch(&self, cap: usize) -> RxBatch {
        RxBatch::new(&self.iface, cap)
    }

    /// Zero-allocation batched poll: drain up to `batch.capacity()`
    /// pending packets into recycled storage, then fill the metadata
    /// columns — hardware fields via the columnar batch reader, software
    /// fields via the compiled shim plan (one parse per packet, memoized
    /// intra-packet repeats). Returns the number of packets received.
    ///
    /// Produces bit-identical metadata to calling [`poll`] per packet.
    ///
    /// [`poll`]: OpenDescDriver::poll
    pub fn poll_batch_into(&mut self, batch: &mut RxBatch) -> usize {
        assert_eq!(
            batch.sems.len(),
            self.iface.accessors.accessors.len(),
            "batch was built for a different interface"
        );
        // Drain the rings into recycled frame/completion storage,
        // keeping each packet's steering sideband alongside it.
        let mut n = 0;
        while n < batch.cap {
            match self
                .nic
                .receive_into_hinted(&mut batch.frames[n], &mut batch.cmpts[n])
            {
                Some(side) => batch.hints[n] = side.rss_hint,
                None => break,
            }
            n += 1;
        }
        batch.len = n;

        let plan = &self.iface.plan;
        let set = &self.iface.accessors;
        // Hardware fields: one column at a time across the whole batch.
        for &acc_idx in &plan.hw {
            set.read_column(acc_idx, &batch.cmpts[..n], &mut batch.hwcol[..n]);
            let base = acc_idx * batch.cap;
            for pkt in 0..n {
                batch.meta[base + pkt] = Some(batch.hwcol[pkt]);
            }
        }
        // Software fields: parse each frame once, share it across shims;
        // a device-reported hash primes the memo so software RSS steps
        // are lookups, not Toeplitz runs.
        if plan.needs_parse() {
            for pkt in 0..n {
                let frame = &batch.frames[pkt];
                let parsed = ParsedFrame::parse(frame);
                let mut memo = ShimMemo::default();
                if let Some(h) = batch.hints[pkt] {
                    memo.prime_rss(h);
                }
                for &(acc_idx, op) in &plan.sw {
                    batch.meta[acc_idx * batch.cap + pkt] = parsed
                        .as_ref()
                        .and_then(|p| self.soft.exec_op(op, p, frame.len(), &mut memo))
                        .map(|v| v as u128);
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use crate::intent::Intent;
    use opendesc_ir::{names, SemanticRegistry};
    use opendesc_nicsim::models;
    use opendesc_softnic::testpkt;

    fn kvs_frame(key: &str) -> Vec<u8> {
        testpkt::udp4(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            40000,
            11211,
            &testpkt::kvs_get_payload(key),
            Some(0x0123),
        )
    }

    fn driver_for(model: opendesc_nicsim::NicModel) -> (OpenDescDriver, SemanticRegistry) {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::from_p4(crate::intent::FIG1_INTENT_P4, &mut reg).unwrap();
        let compiled = Compiler::default()
            .compile_model(&model, &intent, &mut reg)
            .unwrap();
        let nic = SimNic::new(model, 256).unwrap();
        (OpenDescDriver::attach(nic, compiled).unwrap(), reg)
    }

    #[test]
    fn fig1_scenario_on_mlx5_all_hardware() {
        let (mut drv, reg) = driver_for(models::mlx5());
        drv.deliver(&kvs_frame("user:1")).unwrap();
        let pkt = drv.poll().unwrap();
        let rss = reg.id(names::RSS_HASH).unwrap();
        let vlan = reg.id(names::VLAN_TCI).unwrap();
        let kvs = reg.id(names::KVS_KEY_HASH).unwrap();
        assert_eq!(pkt.get(vlan), Some(0x0123));
        let expected_kvs = opendesc_softnic::kvs_key_hash(b"get user:1\r\n").unwrap() as u128;
        assert_eq!(pkt.get(kvs), Some(expected_kvs));
        // RSS from hardware must equal the reference computation.
        let mut soft = SoftNic::new();
        let want = soft.compute_by_name(names::RSS_HASH, &pkt.frame).unwrap() as u128;
        assert_eq!(pkt.get(rss), Some(want));
    }

    #[test]
    fn fig1_scenario_on_e1000e_mixes_hw_and_soft() {
        let (mut drv, reg) = driver_for(models::e1000e());
        drv.deliver(&kvs_frame("user:2")).unwrap();
        let pkt = drv.poll().unwrap();
        // The compiler chose the csum path; RSS and KVS are software
        // shims but the application still gets every value.
        for name in [
            names::RSS_HASH,
            names::VLAN_TCI,
            names::IP_CHECKSUM,
            names::KVS_KEY_HASH,
        ] {
            let id = reg.id(name).unwrap();
            assert!(pkt.get(id).is_some(), "{name} missing from RxPacket");
        }
    }

    #[test]
    fn hardware_and_software_values_agree_across_models() {
        // The portability claim: the same application observes identical
        // metadata values on every NIC model, regardless of which side
        // computed them.
        let frame = kvs_frame("same:key");
        let mut per_model: Vec<Vec<Option<u128>>> = Vec::new();
        for model in [
            models::e1000e(),
            models::ixgbe(),
            models::mlx5(),
            models::qdma_default(),
        ] {
            let (mut drv, _) = driver_for(model);
            drv.deliver(&frame).unwrap();
            let pkt = drv.poll().unwrap();
            per_model.push(pkt.meta.iter().map(|(_, v)| *v).collect());
        }
        for window in per_model.windows(2) {
            assert_eq!(window[0], window[1], "metadata diverged between models");
        }
    }

    #[test]
    fn batched_poll_matches_per_packet_poll() {
        for model in [
            models::e1000e(),
            models::ixgbe(),
            models::mlx5(),
            models::qdma_default(),
        ] {
            let name = model.name.clone();
            let (mut a, _) = driver_for(model.clone());
            let (mut b, _) = driver_for(model);
            let frames: Vec<Vec<u8>> = (0..7)
                .map(|i| kvs_frame(&format!("flow:{}", i % 3)))
                .collect();
            for f in &frames {
                a.deliver(f).unwrap();
                b.deliver(f).unwrap();
            }
            let singles = a.poll_batch(7);
            let mut batch = b.make_batch(7);
            assert_eq!(b.poll_batch_into(&mut batch), 7, "{name}");
            for (pkt, single) in singles.iter().enumerate() {
                assert_eq!(batch.frame(pkt), &single.frame[..], "{name}");
                for (field, (sem, want)) in single.meta.iter().enumerate() {
                    assert_eq!(batch.value_at(field, pkt), *want, "{name}");
                    assert_eq!(batch.get(pkt, *sem), *want, "{name}");
                }
            }
        }
    }

    #[test]
    fn batch_storage_recycles_across_polls() {
        let (mut drv, reg) = driver_for(models::e1000e());
        let vlan = reg.id(names::VLAN_TCI).unwrap();
        let mut batch = drv.make_batch(4);
        for round in 0..3 {
            for i in 0..4 {
                drv.deliver(&kvs_frame(&format!("r{round}:{i}"))).unwrap();
            }
            assert_eq!(drv.poll_batch_into(&mut batch), 4);
            assert_eq!(batch.len(), 4);
            for pkt in 0..4 {
                assert_eq!(batch.get(pkt, vlan), Some(0x0123), "round {round}");
            }
        }
        // Partial refill shrinks len; stale packets are not readable.
        drv.deliver(&kvs_frame("last")).unwrap();
        assert_eq!(drv.poll_batch_into(&mut batch), 1);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.column(0).len(), 1);
    }

    #[test]
    fn poll_empty_returns_none() {
        let (mut drv, _) = driver_for(models::mlx5());
        assert!(drv.poll().is_none());
    }

    #[test]
    fn poll_batch_respects_available() {
        let (mut drv, _) = driver_for(models::mlx5());
        for i in 0..5 {
            drv.deliver(&kvs_frame(&format!("k{i}"))).unwrap();
        }
        assert_eq!(drv.poll_batch(3).len(), 3);
        assert_eq!(drv.poll_batch(10).len(), 2);
    }
}
