//! The generated receive datapath: a compiled interface attached to a
//! (simulated) NIC.
//!
//! This is the paper's end goal in miniature — "a generated minimalist
//! driver datapath": the driver programs the NIC context from the
//! compiled selection, then per packet reads exactly the requested
//! fields through constant-time accessors, invoking SoftNIC shims only
//! for semantics the layout does not carry.

use crate::compiler::CompiledInterface;
use opendesc_ir::SemanticId;
use opendesc_nicsim::nic::{NicError, SimNic};
use opendesc_softnic::SoftNic;

/// Metadata for one received packet, ordered like the intent's fields.
#[derive(Debug, Clone, PartialEq)]
pub struct RxPacket {
    pub frame: Vec<u8>,
    /// `(semantic, value)` per intent field; `None` when a software shim
    /// could not compute (e.g. non-IP frame).
    pub meta: Vec<(SemanticId, Option<u128>)>,
}

impl RxPacket {
    /// Value of a semantic, if present.
    pub fn get(&self, sem: SemanticId) -> Option<u128> {
        self.meta.iter().find(|(s, _)| *s == sem).and_then(|(_, v)| *v)
    }
}

/// A compiled OpenDesc driver bound to a NIC instance.
pub struct OpenDescDriver {
    pub nic: SimNic,
    pub iface: CompiledInterface,
    soft: SoftNic,
}

impl OpenDescDriver {
    /// Attach a compiled interface to a NIC: programs the selected
    /// context via the control channel and returns the ready driver.
    pub fn attach(mut nic: SimNic, iface: CompiledInterface) -> Result<Self, NicError> {
        if let Some(ctx) = &iface.context {
            nic.configure(ctx.clone())?;
        }
        Ok(OpenDescDriver { nic, iface, soft: SoftNic::new() })
    }

    /// Wire-side: deliver a frame into the NIC.
    pub fn deliver(&mut self, frame: &[u8]) -> Result<(), NicError> {
        self.nic.deliver(frame)
    }

    /// Host-side: poll one packet with its requested metadata.
    pub fn poll(&mut self) -> Option<RxPacket> {
        let (frame, cmpt) = self.nic.receive()?;
        let values =
            self.iface
                .accessors
                .read_packet(&self.iface.reg, &mut self.soft, &frame, &cmpt);
        let meta = self
            .iface
            .accessors
            .accessors
            .iter()
            .zip(values)
            .map(|(a, v)| (a.semantic, v))
            .collect();
        Some(RxPacket { frame, meta })
    }

    /// Poll up to `n` packets.
    pub fn poll_batch(&mut self, n: usize) -> Vec<RxPacket> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.poll() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use crate::intent::Intent;
    use opendesc_ir::{names, SemanticRegistry};
    use opendesc_nicsim::models;
    use opendesc_softnic::testpkt;

    fn kvs_frame(key: &str) -> Vec<u8> {
        testpkt::udp4(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            40000,
            11211,
            &testpkt::kvs_get_payload(key),
            Some(0x0123),
        )
    }

    fn driver_for(model: opendesc_nicsim::NicModel) -> (OpenDescDriver, SemanticRegistry) {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::from_p4(crate::intent::FIG1_INTENT_P4, &mut reg).unwrap();
        let compiled = Compiler::default().compile_model(&model, &intent, &mut reg).unwrap();
        let nic = SimNic::new(model, 256).unwrap();
        (OpenDescDriver::attach(nic, compiled).unwrap(), reg)
    }

    #[test]
    fn fig1_scenario_on_mlx5_all_hardware() {
        let (mut drv, reg) = driver_for(models::mlx5());
        drv.deliver(&kvs_frame("user:1")).unwrap();
        let pkt = drv.poll().unwrap();
        let rss = reg.id(names::RSS_HASH).unwrap();
        let vlan = reg.id(names::VLAN_TCI).unwrap();
        let kvs = reg.id(names::KVS_KEY_HASH).unwrap();
        assert_eq!(pkt.get(vlan), Some(0x0123));
        let expected_kvs = opendesc_softnic::kvs_key_hash(b"get user:1\r\n").unwrap() as u128;
        assert_eq!(pkt.get(kvs), Some(expected_kvs));
        // RSS from hardware must equal the reference computation.
        let mut soft = SoftNic::new();
        let want = soft.compute_by_name(names::RSS_HASH, &pkt.frame).unwrap() as u128;
        assert_eq!(pkt.get(rss), Some(want));
    }

    #[test]
    fn fig1_scenario_on_e1000e_mixes_hw_and_soft() {
        let (mut drv, reg) = driver_for(models::e1000e());
        drv.deliver(&kvs_frame("user:2")).unwrap();
        let pkt = drv.poll().unwrap();
        // The compiler chose the csum path; RSS and KVS are software
        // shims but the application still gets every value.
        for name in [names::RSS_HASH, names::VLAN_TCI, names::IP_CHECKSUM, names::KVS_KEY_HASH] {
            let id = reg.id(name).unwrap();
            assert!(pkt.get(id).is_some(), "{name} missing from RxPacket");
        }
    }

    #[test]
    fn hardware_and_software_values_agree_across_models() {
        // The portability claim: the same application observes identical
        // metadata values on every NIC model, regardless of which side
        // computed them.
        let frame = kvs_frame("same:key");
        let mut per_model: Vec<Vec<Option<u128>>> = Vec::new();
        for model in [models::e1000e(), models::ixgbe(), models::mlx5(), models::qdma_default()] {
            let (mut drv, _) = driver_for(model);
            drv.deliver(&frame).unwrap();
            let pkt = drv.poll().unwrap();
            per_model.push(pkt.meta.iter().map(|(_, v)| *v).collect());
        }
        for window in per_model.windows(2) {
            assert_eq!(window[0], window[1], "metadata diverged between models");
        }
    }

    #[test]
    fn poll_empty_returns_none() {
        let (mut drv, _) = driver_for(models::mlx5());
        assert!(drv.poll().is_none());
    }

    #[test]
    fn poll_batch_respects_available() {
        let (mut drv, _) = driver_for(models::mlx5());
        for i in 0..5 {
            drv.deliver(&kvs_frame(&format!("k{i}"))).unwrap();
        }
        assert_eq!(drv.poll_batch(3).len(), 3);
        assert_eq!(drv.poll_batch(10).len(), 2);
    }
}
