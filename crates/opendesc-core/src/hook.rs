//! The descriptor hook — §4's future-work item made concrete: "we want
//! to enable the use of the accessors in DPDK by enabling a hook on the
//! descriptor, much like XDP is doing for kernel drivers".
//!
//! A [`HookDriver`] runs a user callback on every `(frame, completion)`
//! pair *before* any generic metadata conversion, with the compiled
//! accessor set in hand. Packets the hook drops never pay for mbuf
//! construction — the early-drop economics that make XDP fast, at the
//! DPDK layer.

use crate::accessor::AccessorSet;
use crate::compiler::CompiledInterface;
use crate::datapath::RxPacket;
use opendesc_ir::SemanticRegistry;
use opendesc_nicsim::nic::{NicError, SimNic};
use opendesc_softnic::SoftNic;

/// Verdict returned by a descriptor hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookVerdict {
    /// Continue to full metadata assembly and application delivery.
    Pass,
    /// Drop before any further per-packet work.
    Drop,
}

/// Per-queue hook statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct HookStats {
    pub passed: u64,
    pub dropped: u64,
}

/// A driver with an XDP-style early hook on the raw descriptor.
pub struct HookDriver<F>
where
    F: FnMut(&[u8], &[u8], &AccessorSet, &SemanticRegistry) -> HookVerdict,
{
    pub nic: SimNic,
    pub iface: CompiledInterface,
    hook: F,
    soft: SoftNic,
    pub stats: HookStats,
}

impl<F> HookDriver<F>
where
    F: FnMut(&[u8], &[u8], &AccessorSet, &SemanticRegistry) -> HookVerdict,
{
    /// Attach, programming the compiled context.
    pub fn attach(mut nic: SimNic, iface: CompiledInterface, hook: F) -> Result<Self, NicError> {
        if let Some(ctx) = &iface.context {
            nic.configure(ctx.clone())?;
        }
        Ok(HookDriver {
            nic,
            iface,
            hook,
            soft: SoftNic::new(),
            stats: HookStats::default(),
        })
    }

    /// Wire side.
    pub fn deliver(&mut self, frame: &[u8]) -> Result<(), NicError> {
        self.nic.deliver(frame)
    }

    /// Poll until the hook passes a packet (or the queue drains).
    /// Dropped packets cost only the hook invocation — no metadata
    /// assembly, no shim computation.
    pub fn poll(&mut self) -> Option<RxPacket> {
        loop {
            let (frame, cmpt) = self.nic.receive()?;
            match (self.hook)(&frame, &cmpt, &self.iface.accessors, &self.iface.reg) {
                HookVerdict::Drop => {
                    self.stats.dropped += 1;
                    continue;
                }
                HookVerdict::Pass => {
                    self.stats.passed += 1;
                    let values = self.iface.accessors.read_packet(
                        &self.iface.reg,
                        &mut self.soft,
                        &frame,
                        &cmpt,
                    );
                    let meta = self
                        .iface
                        .accessors
                        .accessors
                        .iter()
                        .zip(values)
                        .map(|(a, v)| (a.semantic, v))
                        .collect();
                    return Some(RxPacket { frame, meta });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use crate::intent::Intent;
    use opendesc_ir::names;
    use opendesc_nicsim::{models, PktGen, Workload};

    fn compiled() -> (CompiledInterface, SemanticRegistry) {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("hook")
            .want(&mut reg, names::RSS_HASH)
            .want(&mut reg, names::PKT_LEN)
            .build();
        let c = Compiler::default()
            .compile_model(&models::mlx5(), &intent, &mut reg)
            .unwrap();
        (c, reg)
    }

    #[test]
    fn hook_filters_on_descriptor_metadata_only() {
        let (iface, reg) = compiled();
        let rss = reg.id(names::RSS_HASH).unwrap();
        let nic = SimNic::new(models::mlx5(), 512).unwrap();
        // Drop every packet whose NIC-computed RSS hash is even — read
        // straight from the completion, never touching frame bytes.
        let mut drv = HookDriver::attach(nic, iface, move |_frame, cmpt, acc, _reg| {
            let h = acc.for_semantic(rss).unwrap().read(cmpt);
            if h % 2 == 0 {
                HookVerdict::Drop
            } else {
                HookVerdict::Pass
            }
        })
        .unwrap();

        let mut gen = PktGen::new(Workload {
            flows: 64,
            ..Workload::default()
        });
        for _ in 0..200 {
            drv.deliver(&gen.next_frame()).unwrap();
        }
        let mut soft = SoftNic::new();
        while let Some(pkt) = drv.poll() {
            let h = soft.compute_by_name(names::RSS_HASH, &pkt.frame).unwrap();
            assert_eq!(h % 2, 1, "only odd-hash packets may pass");
        }
        assert_eq!(drv.stats.passed + drv.stats.dropped, 200);
        assert!(drv.stats.dropped > 40, "{:?}", drv.stats);
        assert!(drv.stats.passed > 40, "{:?}", drv.stats);
    }

    #[test]
    fn pass_all_hook_equals_plain_driver() {
        let (iface, _) = compiled();
        let nic = SimNic::new(models::mlx5(), 64).unwrap();
        let mut hook_drv =
            HookDriver::attach(nic, iface.clone(), |_, _, _, _| HookVerdict::Pass).unwrap();
        let nic2 = SimNic::new(models::mlx5(), 64).unwrap();
        let mut plain = crate::datapath::OpenDescDriver::attach(nic2, iface).unwrap();

        let mut g1 = PktGen::new(Workload::default());
        let mut g2 = PktGen::new(Workload::default());
        for _ in 0..20 {
            hook_drv.deliver(&g1.next_frame()).unwrap();
            plain.deliver(&g2.next_frame()).unwrap();
        }
        for _ in 0..20 {
            assert_eq!(hook_drv.poll().unwrap().meta, plain.poll().unwrap().meta);
        }
    }

    #[test]
    fn drop_all_hook_delivers_nothing() {
        let (iface, _) = compiled();
        let nic = SimNic::new(models::mlx5(), 64).unwrap();
        let mut drv = HookDriver::attach(nic, iface, |_, _, _, _| HookVerdict::Drop).unwrap();
        let mut gen = PktGen::new(Workload::default());
        for _ in 0..10 {
            drv.deliver(&gen.next_frame()).unwrap();
        }
        assert!(drv.poll().is_none());
        assert_eq!(drv.stats.dropped, 10);
    }
}
