//! The OpenDesc compiler: contract + intent → compiled interface.
//!
//! This is the pipeline of paper §4 end to end: parse and check the NIC's
//! P4 contract, extract the completion CFG, enumerate completion paths,
//! solve the selection objective (Eq. 1) against the application intent,
//! and synthesize the host stubs (runtime accessors, Rust/C source,
//! verified eBPF programs) plus the context assignment that programs the
//! NIC onto the chosen path.

use crate::accessor::AccessorSet;
use crate::codegen::{self, CodegenError};
use crate::intent::Intent;
use crate::plan::RxPlan;
use crate::select::{SelectError, Selection, Selector};
use opendesc_ebpf::insn::Insn;
use opendesc_ir::path::CompletionPath;
use opendesc_ir::semantics::SemanticRegistry;
use opendesc_ir::{enumerate_paths, extract, Assignment, Cfg, DEFAULT_MAX_PATHS};
use opendesc_nicsim::models::NicModel;
use opendesc_p4::typecheck::parse_and_check;
use std::fmt;

/// Compiler entry point; holds the selection parameters.
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    pub selector: Selector,
}

/// Compilation failure.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The contract failed to parse or type-check.
    Contract(String),
    /// CFG extraction failed.
    Extract(String),
    /// Path enumeration exceeded the cap.
    Paths(String),
    /// The selection objective had no feasible solution.
    Select(SelectError),
    /// The compiled plan could not be lowered to verifier-accepted
    /// bytecode (the plan cache refuses to serve unproven plans).
    Lowering(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Contract(m) => write!(f, "contract error: {m}"),
            CompileError::Extract(m) => write!(f, "extraction error: {m}"),
            CompileError::Paths(m) => write!(f, "path enumeration error: {m}"),
            CompileError::Select(e) => write!(f, "selection error: {e}"),
            CompileError::Lowering(m) => write!(f, "lowering error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<SelectError> for CompileError {
    fn from(e: SelectError) -> Self {
        CompileError::Select(e)
    }
}

/// The product of a compilation: everything a driver or application
/// needs to consume the NIC's metadata under the declared intent.
#[derive(Debug, Clone)]
pub struct CompiledInterface {
    pub nic_name: String,
    pub intent: Intent,
    /// Full ranking of candidate layouts (the E2 matrix row source).
    pub selection: Selection,
    /// The chosen completion layout.
    pub path: CompletionPath,
    /// Context assignment to program into the NIC; `None` when the
    /// winning path's guard is opaque (manual configuration required).
    pub context: Option<Assignment>,
    /// Synthesized accessors (hardware reads + software shims).
    pub accessors: AccessorSet,
    /// The accessors lowered to a per-packet execution plan: software
    /// shims pre-resolved to `ShimOp`s so the hot loop never dispatches
    /// on semantic names.
    pub plan: RxPlan,
    /// The semantic registry used (costs may have been re-priced by the
    /// intent's `@cost` annotations).
    pub reg: SemanticRegistry,
    /// Number of completion paths the NIC exposed.
    pub paths_considered: usize,
}

impl Compiler {
    /// Compile a contract given as P4 source against an intent. `reg`
    /// must be the registry the intent was built with.
    pub fn compile(
        &self,
        contract_src: &str,
        deparser: &str,
        nic_name: &str,
        intent: &Intent,
        reg: &mut SemanticRegistry,
    ) -> Result<CompiledInterface, CompileError> {
        let (checked, diags) = parse_and_check(contract_src);
        if diags.has_errors() {
            return Err(CompileError::Contract(
                diags
                    .iter()
                    .map(|d| d.message.clone())
                    .collect::<Vec<_>>()
                    .join("; "),
            ));
        }
        let cfg = extract(&checked, deparser, reg).map_err(|d| {
            CompileError::Extract(
                d.iter()
                    .map(|x| x.message.clone())
                    .collect::<Vec<_>>()
                    .join("; "),
            )
        })?;
        self.compile_cfg(&cfg, nic_name, intent, reg)
    }

    /// Compile an already-extracted CFG (used by scalability benches to
    /// separate frontend cost from selection cost).
    pub fn compile_cfg(
        &self,
        cfg: &Cfg,
        nic_name: &str,
        intent: &Intent,
        reg: &SemanticRegistry,
    ) -> Result<CompiledInterface, CompileError> {
        let paths = enumerate_paths(cfg, DEFAULT_MAX_PATHS)
            .map_err(|e| CompileError::Paths(e.to_string()))?;
        self.compile_paths(&paths, nic_name, intent, reg)
    }

    /// The selection + synthesis backend over enumerated paths.
    pub fn compile_paths(
        &self,
        paths: &[CompletionPath],
        nic_name: &str,
        intent: &Intent,
        reg: &SemanticRegistry,
    ) -> Result<CompiledInterface, CompileError> {
        let req = intent.req();
        let selection = self.selector.select(paths, &req, reg)?;
        let path = paths
            .iter()
            .find(|p| p.id == selection.best.path_id)
            .expect("selection returns a valid path id")
            .clone();
        let requested: Vec<_> = intent
            .fields
            .iter()
            .map(|f| (f.semantic, f.name.clone(), f.width_bits))
            .collect();
        let accessors = AccessorSet::synthesize(&path, &requested);
        let plan = RxPlan::compile(&accessors, reg);
        Ok(CompiledInterface {
            nic_name: nic_name.to_string(),
            intent: intent.clone(),
            context: selection.best.context.clone(),
            selection,
            path,
            accessors,
            plan,
            reg: reg.clone(),
            paths_considered: paths.len(),
        })
    }

    /// Compile a simulator NIC model.
    pub fn compile_model(
        &self,
        model: &NicModel,
        intent: &Intent,
        reg: &mut SemanticRegistry,
    ) -> Result<CompiledInterface, CompileError> {
        self.compile(&model.p4_source, &model.deparser, &model.name, intent, reg)
    }
}

impl CompiledInterface {
    /// Requested semantics that fall back to software, by name.
    pub fn missing_features(&self) -> Vec<&str> {
        self.selection
            .best
            .missing
            .iter()
            .map(|s| self.reg.name(*s))
            .collect()
    }

    /// Generated Rust source for the completion view.
    pub fn rust_source(&self) -> String {
        codegen::rust::generate(&self.nic_name, &self.accessors, &self.reg)
    }

    /// Generated C header.
    pub fn c_header(&self) -> String {
        codegen::c::generate(&self.nic_name, &self.accessors, &self.reg)
    }

    /// Generated driver manifest (TOML): context writes, accessor table,
    /// shim list — for drivers that consume configuration, not code.
    pub fn manifest(&self) -> String {
        codegen::manifest::generate(self)
    }

    /// Verified-by-construction eBPF accessor programs, one per hardware
    /// accessor.
    pub fn ebpf_programs(&self) -> Result<Vec<(String, Vec<Insn>)>, CodegenError> {
        codegen::ebpf::gen_all(&self.accessors)
    }

    /// Human-readable compilation report: the prototype compiler's
    /// output (selected layout, ranking, context programming, accessor
    /// table, missing-feature list).
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "OpenDesc compilation report\n===========================\nNIC:    {}\nIntent: {} ({} semantics)\n\n",
            self.nic_name,
            self.intent.name,
            self.intent.len()
        ));
        out.push_str(&format!(
            "Completion paths considered: {}\n",
            self.paths_considered
        ));
        for s in &self.selection.ranking {
            let marker = if s.path_id == self.selection.best.path_id {
                "→"
            } else {
                " "
            };
            out.push_str(&format!("  {marker} {}\n", s.describe(&self.reg)));
        }
        out.push('\n');
        match &self.context {
            Some(ctx) if !ctx.is_empty() => {
                out.push_str("Context programming (control channel):\n");
                for (f, v) in ctx {
                    out.push_str(&format!("  {} = {}\n", f.dotted(), v));
                }
            }
            Some(_) => out.push_str("Context programming: none required\n"),
            None => out.push_str("Context programming: MANUAL (opaque guard)\n"),
        }
        out.push_str(&format!(
            "\nSelected layout: path {} ({} bytes)\n",
            self.path.id,
            self.path.size_bytes()
        ));
        out.push_str("Accessors:\n");
        for a in &self.accessors.accessors {
            out.push_str(&format!("  {a}\n"));
        }
        let missing = self.missing_features();
        if missing.is_empty() {
            out.push_str("\nAll requested features provided by the NIC.\n");
        } else {
            out.push_str(&format!(
                "\nMissing features (SoftNIC fallback): {}\n",
                missing.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accessor::AccessorKind;
    use opendesc_ir::names;
    use opendesc_nicsim::models;

    fn fig1_intent(reg: &mut SemanticRegistry) -> Intent {
        Intent::from_p4(crate::intent::FIG1_INTENT_P4, reg).unwrap()
    }

    #[test]
    fn compile_e1000e_fig6_example() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("i")
            .want(&mut reg, names::RSS_HASH)
            .want(&mut reg, names::IP_CHECKSUM)
            .build();
        let compiled = Compiler::default()
            .compile_model(&models::e1000e(), &intent, &mut reg)
            .unwrap();
        assert_eq!(compiled.paths_considered, 2);
        assert_eq!(compiled.missing_features(), vec!["rss_hash"]);
        // use_rss must be programmed to 0 (the csum path).
        let ctx = compiled.context.as_ref().unwrap();
        let (f, v) = ctx.iter().next().unwrap();
        assert_eq!(f.dotted(), "ctx.use_rss");
        assert_eq!(*v, 0);
    }

    #[test]
    fn compile_fig1_intent_on_mlx5_uses_full_cqe() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = fig1_intent(&mut reg);
        let compiled = Compiler::default()
            .compile_model(&models::mlx5(), &intent, &mut reg)
            .unwrap();
        // The full CQE provides all four semantics, incl. the KVS hash.
        assert!(
            compiled.missing_features().is_empty(),
            "{}",
            compiled.report()
        );
        assert_eq!(compiled.path.size_bytes(), 64);
        assert_eq!(compiled.accessors.hardware().count(), 4);
    }

    #[test]
    fn compile_fig1_intent_on_e1000_legacy_falls_back() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = fig1_intent(&mut reg);
        let compiled = Compiler::default()
            .compile_model(&models::e1000_legacy(), &intent, &mut reg)
            .unwrap();
        let mut missing = compiled.missing_features();
        missing.sort();
        assert_eq!(missing, vec!["kvs_key_hash", "rss_hash"]);
        // csum and vlan come from hardware.
        assert_eq!(compiled.accessors.hardware().count(), 2);
        assert_eq!(compiled.accessors.software().count(), 2);
    }

    #[test]
    fn timestamp_on_fixed_nic_is_unsatisfiable() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("i")
            .want(&mut reg, names::TIMESTAMP)
            .build();
        let err = Compiler::default()
            .compile_model(&models::e1000e(), &intent, &mut reg)
            .unwrap_err();
        assert!(matches!(
            err,
            CompileError::Select(SelectError::Unsatisfiable { .. })
        ));
    }

    #[test]
    fn timestamp_on_mlx5_succeeds() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("i")
            .want(&mut reg, names::TIMESTAMP)
            .build();
        let compiled = Compiler::default()
            .compile_model(&models::mlx5(), &intent, &mut reg)
            .unwrap();
        assert!(compiled.missing_features().is_empty());
        assert_eq!(
            compiled.path.size_bytes(),
            64,
            "only the full CQE has timestamps"
        );
    }

    #[test]
    fn rss_only_on_mlx5_prefers_mini_cqe() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("i")
            .want(&mut reg, names::RSS_HASH)
            .want(&mut reg, names::PKT_LEN)
            .build();
        let compiled = Compiler::default()
            .compile_model(&models::mlx5(), &intent, &mut reg)
            .unwrap();
        assert_eq!(
            compiled.path.size_bytes(),
            8,
            "mini-CQE satisfies the intent at 1/8 the DMA footprint: {}",
            compiled.report()
        );
    }

    #[test]
    fn report_contains_key_sections() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = fig1_intent(&mut reg);
        let compiled = Compiler::default()
            .compile_model(&models::e1000e(), &intent, &mut reg)
            .unwrap();
        let r = compiled.report();
        assert!(r.contains("compilation report"), "{r}");
        assert!(r.contains("Context programming"), "{r}");
        assert!(r.contains("Missing features"), "{r}");
        assert!(r.contains("→"), "ranking marks the winner: {r}");
    }

    #[test]
    fn generated_artifacts_nonempty_and_verified() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = fig1_intent(&mut reg);
        let compiled = Compiler::default()
            .compile_model(&models::mlx5(), &intent, &mut reg)
            .unwrap();
        assert!(compiled.rust_source().contains("CmptView"));
        assert!(compiled.c_header().contains("static inline"));
        let progs = compiled.ebpf_programs().unwrap();
        assert_eq!(progs.len(), 4);
        for (name, p) in &progs {
            opendesc_ebpf::verifier::verify(p)
                .unwrap_or_else(|e| panic!("program {name} failed verification: {e}"));
        }
    }

    #[test]
    fn bad_contract_reports_error() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("i").want(&mut reg, names::RSS_HASH).build();
        let err = Compiler::default()
            .compile("header broken {", "C", "x", &intent, &mut reg)
            .unwrap_err();
        assert!(matches!(err, CompileError::Contract(_)));
    }

    #[test]
    fn missing_deparser_reports_error() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("i").want(&mut reg, names::RSS_HASH).build();
        let err = Compiler::default()
            .compile("header h_t { bit<8> x; }", "NoSuch", "x", &intent, &mut reg)
            .unwrap_err();
        assert!(matches!(err, CompileError::Extract(_)));
    }

    #[test]
    fn qdma_picks_tightest_installed_layout() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("i")
            .want(&mut reg, names::RSS_HASH)
            .want(&mut reg, names::PKT_LEN)
            .build();
        let compiled = Compiler::default()
            .compile_model(&models::qdma_default(), &intent, &mut reg)
            .unwrap();
        assert_eq!(compiled.path.size_bytes(), 8, "{}", compiled.report());
        assert!(compiled.missing_features().is_empty());
    }

    #[test]
    fn accessor_kinds_follow_selection() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = fig1_intent(&mut reg);
        let compiled = Compiler::default()
            .compile_model(&models::ixgbe(), &intent, &mut reg)
            .unwrap();
        // ixgbe provides rss, vlan, ip csum in hardware; kvs falls back.
        let kvs = reg.id(names::KVS_KEY_HASH).unwrap();
        assert_eq!(
            compiled.accessors.for_semantic(kvs).unwrap().kind,
            AccessorKind::Software
        );
        assert_eq!(compiled.accessors.hardware().count(), 3);
    }
}
