//! Self-healing RX: completion validation, queue health, and the stall
//! watchdog.
//!
//! The paper's premise is that hosts must not blindly trust a device's
//! metadata layout; this module extends that distrust from *layout* to
//! *behavior*. A [`ValidatorSpec`] is derived once per compiled artifact
//! from the same layout knowledge the accessors come from: the expected
//! completion length and cheap structural invariants on hardware fields
//! (a length field must equal the frame length, a checksum status must
//! be a status code, a DD bit must be set). At runtime the driver runs
//! three concentric rings of defense:
//!
//! 1. **ring admission** — every completion's sequence tag goes through
//!    a [`SeqTracker`], discarding duplicated and stale writebacks, and
//!    a length check rejects truncated records before any accessor can
//!    read past the end;
//! 2. **field validation** — per [`ValidationMode`], either the cheap
//!    structural checks (`Structural`, the default) or a full SoftNIC
//!    cross-check of every recomputable hardware field (`Full`);
//! 3. **degraded execution** — on any failure the packet is re-executed
//!    through the SoftNIC shims ([`RxPlan::execute_degraded`]), so the
//!    application still observes correct (or absent) values, never
//!    garbage.
//!
//! A [`HealthState`] machine aggregates the evidence per queue:
//! `Healthy` trusts the device and runs the cheap path; any fault drops
//! to `Degraded` (all-software execution); a clean streak promotes to
//! `Recovering` (hardware reads re-enabled but every field verified);
//! a verified-clean streak restores `Healthy`. Separately, a
//! [`Watchdog`] compares frames fed against completions polled and —
//! after a bounded-backoff run of empty polls with work outstanding —
//! requests a ring reset/re-arm, which un-wedges hung queues and
//! republishes lost doorbells.
//!
//! [`RxPlan::execute_degraded`]: crate::plan::RxPlan::execute_degraded

use crate::accessor::{AccessorKind, AccessorSet};
use opendesc_ir::bits::width_mask;
use opendesc_ir::{names, SemanticRegistry};
use opendesc_softnic::{csum_status, ptype, rx_status};

/// How deeply the driver checks hardware-provided completion fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationMode {
    /// Trust the device byte-for-byte (the pre-validator behavior).
    /// Sequence and length admission are skipped too.
    Off,
    /// Ring admission plus layout-derived structural checks on hardware
    /// fields — O(checked fields) comparisons, no recomputation.
    #[default]
    Structural,
    /// Ring admission plus a SoftNIC cross-check of every recomputable
    /// hardware field on every packet (compare-and-repair).
    Full,
}

/// One structural invariant on a hardware accessor's value, derivable
/// from the field's semantic alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldCheck {
    /// `pkt_len` must equal the delivered frame's length.
    PktLen,
    /// Checksum status must be a status code (GOOD or BAD).
    CsumStatus,
    /// Descriptor-done and end-of-packet bits must both be set.
    RxStatus,
    /// The packet-type bitmap must have the Ethernet bit set (every
    /// delivered frame was received on Ethernet).
    PacketType,
}

/// Layout-derived validation spec: computed once per compiled artifact
/// (inside [`CompiledRx`](crate::cache::CompiledRx)) and shared
/// read-only by every queue running that artifact.
#[derive(Debug, Clone, Default)]
pub struct ValidatorSpec {
    /// Completion length the layout promises; shorter records are
    /// truncated writebacks and must not reach the accessors (which
    /// would panic reading past the end).
    pub expected_len: usize,
    /// `(accessor index, slot width, check)` per checkable hardware
    /// accessor.
    pub checks: Vec<(usize, u16, FieldCheck)>,
}

impl ValidatorSpec {
    /// Derive the spec from a compiled accessor set.
    pub fn derive(set: &AccessorSet, reg: &SemanticRegistry) -> ValidatorSpec {
        let mut checks = Vec::new();
        for (i, a) in set.accessors.iter().enumerate() {
            if a.kind != AccessorKind::Hardware {
                continue;
            }
            let check = match reg.name(a.semantic) {
                names::PKT_LEN => Some(FieldCheck::PktLen),
                names::IP_CHECKSUM | names::L4_CHECKSUM => Some(FieldCheck::CsumStatus),
                names::RX_STATUS => Some(FieldCheck::RxStatus),
                names::PACKET_TYPE => Some(FieldCheck::PacketType),
                _ => None,
            };
            if let Some(c) = check {
                checks.push((i, a.width_bits, c));
            }
        }
        ValidatorSpec {
            expected_len: set.completion_bytes as usize,
            checks,
        }
    }

    /// Evaluate the structural checks against extracted values (`get`
    /// maps accessor index → value, however the caller stores them).
    /// Returns the first failing check, or `None` when all pass.
    ///
    /// An all-zero value always passes: completion slots default to zero
    /// when the device's offload engine produced nothing for them (a
    /// garbage frame that does not parse, a checksum status on a non-IP
    /// frame), so zero is an honest "field not produced" — only a
    /// *wrong nonzero* value is structurally impossible. A device lying
    /// with zeros is the `Full` cross-check's tier to catch.
    pub fn check_values(
        &self,
        frame_len: usize,
        get: impl Fn(usize) -> Option<u128>,
    ) -> Option<FieldCheck> {
        for &(i, width, c) in &self.checks {
            let Some(v) = get(i) else { continue };
            if v == 0 {
                continue;
            }
            let ok = match c {
                FieldCheck::PktLen => v == frame_len as u128 & width_mask(width),
                FieldCheck::CsumStatus => {
                    v == csum_status::GOOD as u128 || v == csum_status::BAD as u128
                }
                FieldCheck::RxStatus => {
                    let want = (rx_status::DD | rx_status::EOP) as u128 & width_mask(width);
                    v & want == want
                }
                FieldCheck::PacketType => v & ptype::ETH as u128 != 0,
            };
            if !ok {
                return Some(c);
            }
        }
        None
    }

    /// [`check_values`](ValidatorSpec::check_values), but evaluating
    /// *every* check instead of short-circuiting, and additionally
    /// returning a bitmask of the accessor slots whose value was nonzero
    /// and passed its check — fields the validator affirmatively proved
    /// structurally intact. On a structural failure, degraded re-serving
    /// can keep those proven columns instead of recomputing everything.
    /// Zero values are *not* marked proven: zero is merely "field not
    /// produced", which proves nothing about the rest of the record.
    pub fn check_values_all(
        &self,
        frame_len: usize,
        get: impl Fn(usize) -> Option<u128>,
    ) -> (Option<FieldCheck>, u128) {
        let mut failed = None;
        let mut proven: u128 = 0;
        for &(i, width, c) in &self.checks {
            let Some(v) = get(i) else { continue };
            if v == 0 {
                continue;
            }
            let ok = match c {
                FieldCheck::PktLen => v == frame_len as u128 & width_mask(width),
                FieldCheck::CsumStatus => {
                    v == csum_status::GOOD as u128 || v == csum_status::BAD as u128
                }
                FieldCheck::RxStatus => {
                    let want = (rx_status::DD | rx_status::EOP) as u128 & width_mask(width);
                    v & want == want
                }
                FieldCheck::PacketType => v & ptype::ETH as u128 != 0,
            };
            if ok {
                if i < 128 {
                    proven |= 1u128 << i;
                }
            } else if failed.is_none() {
                failed = Some(c);
            }
        }
        (failed, proven)
    }
}

/// Verdict of admitting one completion's sequence tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqVerdict {
    /// The expected next tag: a fresh completion.
    Fresh,
    /// The previous tag again: a duplicated writeback — discard.
    Duplicate,
    /// Any other tag: a stale-generation writeback — discard. The slot
    /// was still consumed, so expectation advances past it.
    Stale,
}

/// Ring-sequence admission: an honest device tags completions with
/// consecutive sequence numbers; replays and stale generations stick
/// out.
///
/// The tracker must stay in sync across *combinations* of faults, not
/// just single ones — a replay of a stale-generation tag must not
/// advance expectation twice (the tracker would run permanently ahead
/// and discard every later completion), so duplicates are recognized by
/// the last admitted tag, whatever it was. A tag a short distance
/// *ahead* means the host missed tags (e.g. validation enabled mid
/// stream); the tracker resyncs forward rather than flagging every
/// subsequent completion.
#[derive(Debug, Default)]
pub struct SeqTracker {
    expect: u64,
    /// Tag of the last admitted completion: the device's replays are
    /// back-to-back in ring order, so a repeat of exactly this tag is a
    /// duplicate regardless of how alien the tag itself was.
    last: Option<u64>,
}

impl SeqTracker {
    /// How far ahead a tag may jump and still be treated as the host
    /// falling behind (resync forward) rather than device garbage.
    const RESYNC_WINDOW: u64 = 1 << 16;

    /// Admit the next consumed completion's tag.
    pub fn admit(&mut self, seq: u64) -> SeqVerdict {
        if seq == self.expect {
            self.expect = self.expect.wrapping_add(1);
            self.last = Some(seq);
            SeqVerdict::Fresh
        } else if self.last == Some(seq) {
            // A re-DMA of the completion just admitted; expectation
            // already accounts for its slot.
            SeqVerdict::Duplicate
        } else {
            let ahead = seq.wrapping_sub(self.expect);
            if ahead < Self::RESYNC_WINDOW {
                // Plausibly the host missed tags; realign.
                self.expect = seq.wrapping_add(1);
            } else {
                // A stale (or otherwise alien) generation occupied the
                // slot that would have carried the expected tag; skip
                // past that one slot.
                self.expect = self.expect.wrapping_add(1);
            }
            self.last = Some(seq);
            SeqVerdict::Stale
        }
    }

    /// The next tag a fresh completion should carry.
    pub fn expected(&self) -> u64 {
        self.expect
    }
}

/// Counters of the host-side validation pipeline (one per queue).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationStats {
    /// Completions admitted and delivered.
    pub accepted: u64,
    /// Completions shorter than the layout, served degraded.
    pub truncated: u64,
    /// Replayed completions discarded by sequence.
    pub duplicates: u64,
    /// Stale-generation completions discarded by sequence.
    pub stale: u64,
    /// Structural check failures (packet re-served degraded).
    pub structural_failures: u64,
    /// Hardware fields repaired by the full cross-check.
    pub repaired_fields: u64,
    /// Packets executed through the all-software degraded path.
    pub degraded_packets: u64,
}

impl ValidationStats {
    /// Faults the validator observed (not counting repairs, which are a
    /// consequence).
    pub fn faults(&self) -> u64 {
        self.truncated + self.duplicates + self.stale + self.structural_failures
    }

    pub fn merge(&mut self, other: &ValidationStats) {
        self.accepted += other.accepted;
        self.truncated += other.truncated;
        self.duplicates += other.duplicates;
        self.stale += other.stale;
        self.structural_failures += other.structural_failures;
        self.repaired_fields += other.repaired_fields;
        self.degraded_packets += other.degraded_packets;
    }

    /// Register every counter under `scope` (e.g. `rx.q0.validation`) —
    /// the telemetry view over the same cells; registering several
    /// queues under one scope folds them like [`merge`].
    ///
    /// [`merge`]: ValidationStats::merge
    pub fn register_into(&self, reg: &mut opendesc_telemetry::MetricRegistry, scope: &str) {
        reg.counter(&format!("{scope}.accepted"), self.accepted);
        reg.counter(&format!("{scope}.truncated"), self.truncated);
        reg.counter(&format!("{scope}.duplicates"), self.duplicates);
        reg.counter(&format!("{scope}.stale"), self.stale);
        reg.counter(
            &format!("{scope}.structural_failures"),
            self.structural_failures,
        );
        reg.counter(&format!("{scope}.repaired_fields"), self.repaired_fields);
        reg.counter(&format!("{scope}.degraded_packets"), self.degraded_packets);
    }

    /// Counter deltas since `base` (per-round reporting over cumulative
    /// driver counters).
    pub fn since(&self, base: &ValidationStats) -> ValidationStats {
        ValidationStats {
            accepted: self.accepted - base.accepted,
            truncated: self.truncated - base.truncated,
            duplicates: self.duplicates - base.duplicates,
            stale: self.stale - base.stale,
            structural_failures: self.structural_failures - base.structural_failures,
            repaired_fields: self.repaired_fields - base.repaired_fields,
            degraded_packets: self.degraded_packets - base.degraded_packets,
        }
    }
}

/// Per-queue health. Ordering is by severity, so the sharded layer's
/// "worst across queues" is `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum QueueHealth {
    /// Device trusted; cheap validation only.
    #[default]
    Healthy,
    /// Rebuilding trust: hardware reads re-enabled but every
    /// recomputable field is verified against the SoftNIC.
    Recovering,
    /// Device distrusted; every packet executes through SoftNIC shims.
    Degraded,
}

/// Thresholds of the health state machine.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Clean packets in `Degraded` before attempting `Recovering`.
    pub degraded_clean: u32,
    /// Verified-clean packets in `Recovering` before `Healthy`.
    pub recovering_clean: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            degraded_clean: 32,
            recovering_clean: 32,
        }
    }
}

/// The per-queue health state machine:
///
/// ```text
///            any fault                 any fault
///   Healthy ──────────▶ Degraded ◀──────────── Recovering
///      ▲                   │                        │
///      │                   │ degraded_clean         │
///      │                   ▼                        │
///      └─── recovering_clean ◀── Recovering ◀───────┘
/// ```
///
/// "Fault" is anything the validator catches (discard, truncation,
/// structural failure, repaired field) or a watchdog-declared stall;
/// "clean" is a packet that passed every check its mode ran.
#[derive(Debug, Default)]
pub struct HealthState {
    health: QueueHealth,
    /// Consecutive clean packets in the current state.
    streak: u32,
    cfg: HealthConfig,
    /// State transitions taken (diagnostic).
    pub transitions: u64,
}

impl HealthState {
    pub fn with_config(cfg: HealthConfig) -> HealthState {
        HealthState {
            cfg,
            ..HealthState::default()
        }
    }

    pub fn health(&self) -> QueueHealth {
        self.health
    }

    /// Record a fault: trust is revoked until clean streaks rebuild it.
    pub fn on_fault(&mut self) {
        self.streak = 0;
        if self.health != QueueHealth::Degraded {
            self.health = QueueHealth::Degraded;
            self.transitions += 1;
        }
    }

    /// Record a packet that passed every check its mode ran.
    pub fn on_clean(&mut self) {
        self.streak = self.streak.saturating_add(1);
        match self.health {
            QueueHealth::Degraded if self.streak >= self.cfg.degraded_clean => {
                self.health = QueueHealth::Recovering;
                self.streak = 0;
                self.transitions += 1;
            }
            QueueHealth::Recovering if self.streak >= self.cfg.recovering_clean => {
                self.health = QueueHealth::Healthy;
                self.streak = 0;
                self.transitions += 1;
            }
            _ => {}
        }
    }
}

/// Watchdog thresholds.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Consecutive empty polls (with work outstanding) before the first
    /// reset.
    pub stall_polls: u32,
    /// Bounded backoff: the threshold doubles per consecutive reset, up
    /// to `stall_polls << max_backoff_shift`.
    pub max_backoff_shift: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_polls: 3,
            max_backoff_shift: 6,
        }
    }
}

/// Poll-progress heartbeat per queue: frames fed in vs. completions
/// observed out. A run of empty polls with work outstanding means the
/// queue stalled (hung writeback engine, lost doorbell); after a
/// bounded-backoff threshold the watchdog requests a ring reset/re-arm.
#[derive(Debug, Default)]
pub struct Watchdog {
    cfg: WatchdogConfigInner,
    /// Frames fed toward this queue.
    fed: u64,
    /// Completions observed (including ones later discarded — observing
    /// *anything* proves the queue is alive).
    polled: u64,
    /// Consecutive empty polls with work outstanding.
    idle: u32,
    /// Current backoff exponent (reset on progress).
    backoff_shift: u32,
    /// Resets requested so far.
    pub resets: u64,
}

/// Newtype so `Watchdog::default()` picks up `WatchdogConfig::default`.
#[derive(Debug, Default)]
struct WatchdogConfigInner(WatchdogConfig);

impl Watchdog {
    pub fn with_config(cfg: WatchdogConfig) -> Watchdog {
        Watchdog {
            cfg: WatchdogConfigInner(cfg),
            ..Watchdog::default()
        }
    }

    /// A frame was fed toward the queue.
    pub fn note_fed(&mut self, n: u64) {
        self.fed += n;
    }

    /// Completions were observed: the queue is alive and `n` fed frames
    /// are accounted for. Clamped at `fed`: every consumed completion
    /// maps to a fed frame (replays go through [`note_alive`]), so the
    /// only way past `fed` is re-counting work a reset already forgave —
    /// and letting that credit stand would mask the next hidden
    /// completion from [`observe_empty`].
    ///
    /// [`note_alive`]: Watchdog::note_alive
    /// [`observe_empty`]: Watchdog::observe_empty
    pub fn note_progress(&mut self, n: u64) {
        self.polled = (self.polled + n).min(self.fed);
        self.idle = 0;
        self.backoff_shift = 0;
    }

    /// Something was observed that proves the queue alive but consumed
    /// no fed frame (a replayed completion). Resets the stall counters
    /// without touching the outstanding-work ledger — a duplicate must
    /// not mask a genuinely hidden completion.
    pub fn note_alive(&mut self) {
        self.idle = 0;
        self.backoff_shift = 0;
    }

    /// An empty poll happened. Returns `true` when the caller should
    /// reset/re-arm the queue now.
    pub fn observe_empty(&mut self) -> bool {
        if self.fed <= self.polled {
            // Nothing outstanding: emptiness is the expected state.
            self.idle = 0;
            return false;
        }
        self.idle += 1;
        let shift = self.backoff_shift.min(self.cfg.0.max_backoff_shift);
        let threshold = self.cfg.0.stall_polls << shift;
        if self.idle < threshold {
            return false;
        }
        self.idle = 0;
        self.backoff_shift = (self.backoff_shift + 1).min(self.cfg.0.max_backoff_shift);
        self.resets += 1;
        // Whatever the reset cannot republish was genuinely lost on the
        // device (fault drops, hangs); stop counting it as outstanding
        // or every later empty poll would re-trip the watchdog.
        self.polled = self.fed;
        true
    }

    /// Frames fed but not yet observed (saturating: resets forgive).
    pub fn outstanding(&self) -> u64 {
        self.fed.saturating_sub(self.polled)
    }

    /// Write off everything outstanding, exactly as a tripped reset
    /// does, without waiting for the stall threshold. The relayout
    /// protocol's last resort: when a drain-and-flip exhausts its poll
    /// budget the remaining frames are genuinely lost on the device
    /// (hang-swallowed or stranded behind the generation tick), and
    /// counting them as outstanding forever would wedge the new
    /// generation's stall detector.
    pub fn forgive_outstanding(&mut self) {
        self.polled = self.fed;
        self.idle = 0;
        self.backoff_shift = 0;
    }

    /// Frames fed toward the queue so far.
    pub fn fed(&self) -> u64 {
        self.fed
    }

    /// Completions credited as progress so far.
    pub fn polled(&self) -> u64 {
        self.polled
    }

    /// Register the watchdog's ledger under `scope` (e.g.
    /// `rx.q0.watchdog`).
    pub fn register_into(&self, reg: &mut opendesc_telemetry::MetricRegistry, scope: &str) {
        reg.counter(&format!("{scope}.fed"), self.fed);
        reg.counter(&format!("{scope}.polled"), self.polled);
        reg.counter(&format!("{scope}.resets"), self.resets);
        reg.gauge(&format!("{scope}.outstanding"), self.outstanding() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use crate::intent::Intent;
    use opendesc_nicsim::models;

    #[test]
    fn seq_tracker_admits_fresh_flags_duplicate_and_stale() {
        let mut t = SeqTracker::default();
        assert_eq!(t.admit(0), SeqVerdict::Fresh);
        assert_eq!(t.admit(1), SeqVerdict::Fresh);
        assert_eq!(t.admit(1), SeqVerdict::Duplicate);
        assert_eq!(t.admit(2), SeqVerdict::Fresh);
        // A stale generation consumed the slot the tag-3 completion
        // would have used; after skipping it, the stream re-syncs.
        assert_eq!(t.admit(3u64.wrapping_sub(64)), SeqVerdict::Stale);
        assert_eq!(t.admit(4), SeqVerdict::Fresh);
    }

    #[test]
    fn seq_tracker_survives_replayed_stale_tags_without_desync() {
        // A duplicated *stale* writeback must not advance expectation
        // twice — that would leave the tracker permanently ahead,
        // discarding every honest completion that follows.
        let mut t = SeqTracker::default();
        assert_eq!(t.admit(0), SeqVerdict::Fresh);
        assert_eq!(t.admit(1), SeqVerdict::Fresh);
        let stale = 2u64.wrapping_sub(64);
        assert_eq!(t.admit(stale), SeqVerdict::Stale);
        assert_eq!(t.admit(stale), SeqVerdict::Duplicate, "replay of the stale");
        // The honest stream resumes with zero further loss.
        assert_eq!(t.admit(3), SeqVerdict::Fresh);
        assert_eq!(t.admit(4), SeqVerdict::Fresh);
    }

    #[test]
    fn seq_tracker_resyncs_when_the_host_fell_behind() {
        // Tags slightly ahead (host enabled validation mid-stream) must
        // realign instead of flagging every later completion stale.
        let mut t = SeqTracker::default();
        assert_eq!(t.admit(10), SeqVerdict::Stale);
        assert_eq!(t.admit(11), SeqVerdict::Fresh);
        assert_eq!(t.admit(12), SeqVerdict::Fresh);
    }

    #[test]
    fn health_machine_walks_degraded_recovering_healthy() {
        let mut h = HealthState::with_config(HealthConfig {
            degraded_clean: 2,
            recovering_clean: 3,
        });
        assert_eq!(h.health(), QueueHealth::Healthy);
        h.on_fault();
        assert_eq!(h.health(), QueueHealth::Degraded);
        h.on_clean();
        h.on_clean();
        assert_eq!(h.health(), QueueHealth::Recovering);
        // A fault during recovery revokes trust again.
        h.on_fault();
        assert_eq!(h.health(), QueueHealth::Degraded);
        for _ in 0..2 {
            h.on_clean();
        }
        for _ in 0..3 {
            h.on_clean();
        }
        assert_eq!(h.health(), QueueHealth::Healthy);
        assert_eq!(h.transitions, 5);
    }

    #[test]
    fn health_severity_orders_for_worst_of() {
        assert!(QueueHealth::Degraded > QueueHealth::Recovering);
        assert!(QueueHealth::Recovering > QueueHealth::Healthy);
    }

    #[test]
    fn watchdog_trips_after_threshold_and_backs_off() {
        let mut w = Watchdog::with_config(WatchdogConfig {
            stall_polls: 2,
            max_backoff_shift: 2,
        });
        // No work outstanding: empty polls never trip.
        for _ in 0..10 {
            assert!(!w.observe_empty());
        }
        w.note_fed(5);
        assert!(!w.observe_empty());
        assert!(w.observe_empty(), "second empty poll hits the threshold");
        assert_eq!(w.resets, 1);
        assert_eq!(w.outstanding(), 0, "reset forgives lost frames");
        // Next stall needs a doubled run of empty polls.
        w.note_fed(1);
        assert!(!w.observe_empty());
        assert!(!w.observe_empty());
        assert!(!w.observe_empty());
        assert!(w.observe_empty());
        assert_eq!(w.resets, 2);
        // Progress resets the backoff.
        w.note_fed(2);
        w.note_progress(2);
        w.note_fed(1);
        assert!(!w.observe_empty());
        assert!(w.observe_empty(), "threshold back at stall_polls");
    }

    #[test]
    fn validator_spec_derives_checks_from_the_layout() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("v")
            .want(&mut reg, names::PKT_LEN)
            .want(&mut reg, names::IP_CHECKSUM)
            .want(&mut reg, names::RSS_HASH)
            .build();
        // e1000e csum path provides pkt_len + ip_checksum in hardware.
        let iface = Compiler::default()
            .compile_model(&models::e1000e(), &intent, &mut reg)
            .unwrap();
        let spec = ValidatorSpec::derive(&iface.accessors, &iface.reg);
        assert_eq!(spec.expected_len, iface.accessors.completion_bytes as usize);
        let kinds: Vec<FieldCheck> = spec.checks.iter().map(|(_, _, c)| *c).collect();
        assert!(kinds.contains(&FieldCheck::PktLen));
        assert!(kinds.contains(&FieldCheck::CsumStatus));

        // A pkt_len that matches passes; one that lies fails.
        let len_idx = spec
            .checks
            .iter()
            .find(|(_, _, c)| *c == FieldCheck::PktLen)
            .unwrap()
            .0;
        let ok = spec.check_values(100, |i| (i == len_idx).then_some(100));
        assert_eq!(ok, None);
        let bad = spec.check_values(100, |i| (i == len_idx).then_some(99));
        assert_eq!(bad, Some(FieldCheck::PktLen));
        // A bad csum status code fails.
        let csum_idx = spec
            .checks
            .iter()
            .find(|(_, _, c)| *c == FieldCheck::CsumStatus)
            .unwrap()
            .0;
        let bad = spec.check_values(100, |i| (i == csum_idx).then_some(0x1234));
        assert_eq!(bad, Some(FieldCheck::CsumStatus));
    }

    #[test]
    fn check_values_all_reports_proven_fields_alongside_the_failure() {
        let mut reg = SemanticRegistry::with_builtins();
        let intent = Intent::builder("v")
            .want(&mut reg, names::PKT_LEN)
            .want(&mut reg, names::IP_CHECKSUM)
            .build();
        let iface = Compiler::default()
            .compile_model(&models::e1000e(), &intent, &mut reg)
            .unwrap();
        let spec = ValidatorSpec::derive(&iface.accessors, &iface.reg);
        let len_idx = spec
            .checks
            .iter()
            .find(|(_, _, c)| *c == FieldCheck::PktLen)
            .unwrap()
            .0;
        let csum_idx = spec
            .checks
            .iter()
            .find(|(_, _, c)| *c == FieldCheck::CsumStatus)
            .unwrap()
            .0;
        let good_csum = opendesc_softnic::csum_status::GOOD as u128;
        // Both pass → no failure, both slots proven.
        let (fail, proven) = spec.check_values_all(100, |i| {
            if i == len_idx {
                Some(100)
            } else if i == csum_idx {
                Some(good_csum)
            } else {
                None
            }
        });
        assert_eq!(fail, None);
        assert_ne!(proven & (1 << len_idx), 0);
        assert_ne!(proven & (1 << csum_idx), 0);
        // pkt_len lies, csum passes → failure reported, csum still
        // proven, the liar not.
        let (fail, proven) = spec.check_values_all(100, |i| {
            if i == len_idx {
                Some(99)
            } else if i == csum_idx {
                Some(good_csum)
            } else {
                None
            }
        });
        assert_eq!(fail, Some(FieldCheck::PktLen));
        assert_eq!(proven & (1 << len_idx), 0);
        assert_ne!(proven & (1 << csum_idx), 0);
        // Zero values prove nothing and fail nothing — agreeing with
        // check_values.
        let (fail, proven) = spec.check_values_all(100, |_| Some(0));
        assert_eq!((fail, proven), (None, 0));
    }
}
