//! Host stub synthesis, runtime form (paper §4, step 4).
//!
//! For the selected path `p*`, every provided semantic gets a
//! *constant-time accessor*: a precomputed `(offset, width, shift, mask)`
//! read against the completion byte stream. Byte-aligned fields use plain
//! big-endian loads; unaligned fields go through the bit-exact slow path.
//! Remaining semantics get SoftNIC shims that recompute the value from
//! the packet bytes at the cost Eq. 1 charged.

use opendesc_ir::bits::{read_bits, read_bytes_be};
use opendesc_ir::path::CompletionPath;
use opendesc_ir::semantics::SemanticRegistry;
use opendesc_ir::SemanticId;
use opendesc_softnic::wire::ParsedFrame;
use opendesc_softnic::{ShimMemo, ShimOp, SoftNic};
use std::fmt;

/// How a semantic is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessorKind {
    /// Read from the completion record at a fixed offset.
    Hardware,
    /// Recomputed by the SoftNIC shim from packet bytes.
    Software,
}

/// A constant-time field accessor.
#[derive(Debug, Clone, PartialEq)]
pub struct Accessor {
    pub semantic: SemanticId,
    /// Field name (from the layout slot or the intent).
    pub name: String,
    pub kind: AccessorKind,
    /// For hardware accessors: absolute bit offset in the completion.
    pub offset_bits: u32,
    pub width_bits: u16,
    /// Fast-path precomputation: byte-aligned fields of whole-byte width.
    aligned: bool,
}

impl Accessor {
    /// Build a hardware accessor from a layout slot.
    pub fn hardware(semantic: SemanticId, name: &str, offset_bits: u32, width_bits: u16) -> Self {
        Accessor {
            semantic,
            name: name.to_string(),
            kind: AccessorKind::Hardware,
            offset_bits,
            width_bits,
            aligned: offset_bits.is_multiple_of(8)
                && width_bits.is_multiple_of(8)
                && width_bits <= 128,
        }
    }

    /// Build a software-shim accessor.
    pub fn software(semantic: SemanticId, name: &str, width_bits: u16) -> Self {
        Accessor {
            semantic,
            name: name.to_string(),
            kind: AccessorKind::Software,
            offset_bits: 0,
            width_bits,
            aligned: false,
        }
    }

    /// Read from a completion record (hardware accessors only).
    ///
    /// # Panics
    /// Panics if the completion is shorter than the accessor's range —
    /// the compiler sizes rings from the selected path, so a short
    /// completion is a driver bug, not an input error.
    #[inline]
    pub fn read(&self, cmpt: &[u8]) -> u128 {
        debug_assert_eq!(self.kind, AccessorKind::Hardware);
        if self.aligned {
            read_bytes_be(
                cmpt,
                (self.offset_bits / 8) as usize,
                (self.width_bits / 8) as usize,
            )
        } else {
            read_bits(cmpt, self.offset_bits, self.width_bits)
        }
    }
}

impl fmt::Display for Accessor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            AccessorKind::Hardware => write!(
                f,
                "{}: hw [{}..{}) bits",
                self.name,
                self.offset_bits,
                self.offset_bits + self.width_bits as u32
            ),
            AccessorKind::Software => write!(f, "{}: softnic shim", self.name),
        }
    }
}

/// The full accessor set for one compiled interface.
#[derive(Debug, Clone)]
pub struct AccessorSet {
    pub accessors: Vec<Accessor>,
    /// Completion record size the hardware accessors assume.
    pub completion_bytes: u32,
}

impl AccessorSet {
    /// Synthesize from a selected path and the requested semantics.
    /// `requested` preserves the intent's field names; semantics the path
    /// provides become hardware accessors, the rest software shims.
    pub fn synthesize(
        path: &CompletionPath,
        requested: &[(SemanticId, String, u16)],
    ) -> AccessorSet {
        let mut accessors = Vec::new();
        for (sem, name, width) in requested {
            if let Some(slot) = path.slot_for(*sem) {
                accessors.push(Accessor::hardware(
                    *sem,
                    name,
                    slot.offset_bits,
                    slot.width_bits,
                ));
            } else {
                accessors.push(Accessor::software(*sem, name, *width));
            }
        }
        AccessorSet {
            accessors,
            completion_bytes: path.size_bytes(),
        }
    }

    /// The accessor for `sem`.
    pub fn for_semantic(&self, sem: SemanticId) -> Option<&Accessor> {
        self.accessors.iter().find(|a| a.semantic == sem)
    }

    /// Hardware accessors only.
    pub fn hardware(&self) -> impl Iterator<Item = &Accessor> {
        self.accessors
            .iter()
            .filter(|a| a.kind == AccessorKind::Hardware)
    }

    /// Software shims only.
    pub fn software(&self) -> impl Iterator<Item = &Accessor> {
        self.accessors
            .iter()
            .filter(|a| a.kind == AccessorKind::Software)
    }

    /// Read one packet's metadata: hardware fields from the completion,
    /// software fields recomputed from the frame. Returns values in
    /// accessor order (`None` when a software shim cannot compute, e.g.
    /// non-IP traffic).
    pub fn read_packet(
        &self,
        reg: &SemanticRegistry,
        soft: &mut SoftNic,
        frame: &[u8],
        cmpt: &[u8],
    ) -> Vec<Option<u128>> {
        // Parse once and share the view across every software shim; memo
        // intra-packet repeats (RSS for rss_hash + queue_hint). The op
        // lowering still happens per call here — compiled interfaces
        // avoid even that via `RxPlan`.
        let parsed = ParsedFrame::parse(frame);
        let mut memo = ShimMemo::default();
        self.accessors
            .iter()
            .map(|a| match a.kind {
                AccessorKind::Hardware => Some(a.read(cmpt)),
                AccessorKind::Software => parsed
                    .as_ref()
                    .and_then(|p| {
                        soft.exec_op(
                            ShimOp::from_name(reg.name(a.semantic)),
                            p,
                            frame.len(),
                            &mut memo,
                        )
                    })
                    .map(|v| v as u128),
            })
            .collect()
    }

    /// Columnar hardware read (the §5 SIMD-accessors direction): one
    /// accessor across a whole batch of completion records, in chunks of
    /// four with a scalar remainder. The benefit measured by E8/E12 comes
    /// from amortizing the per-field offset computation and keeping the
    /// loads of a chunk independent for the CPU's ILP.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `cmpts`.
    pub fn read_column<C: AsRef<[u8]>>(&self, acc_idx: usize, cmpts: &[C], out: &mut [u128]) {
        let a = &self.accessors[acc_idx];
        debug_assert_eq!(a.kind, AccessorKind::Hardware);
        let n = cmpts.len();
        let mut i = 0;
        while i + 4 <= n {
            let v0 = a.read(cmpts[i].as_ref());
            let v1 = a.read(cmpts[i + 1].as_ref());
            let v2 = a.read(cmpts[i + 2].as_ref());
            let v3 = a.read(cmpts[i + 3].as_ref());
            out[i] = v0;
            out[i + 1] = v1;
            out[i + 2] = v2;
            out[i + 3] = v3;
            i += 4;
        }
        while i < n {
            out[i] = a.read(cmpts[i].as_ref());
            i += 1;
        }
    }

    /// Fixed 4-descriptor batch read, kept for the E8 bench; a thin
    /// wrapper over [`read_column`].
    ///
    /// [`read_column`]: AccessorSet::read_column
    #[inline]
    pub fn read_batch4(&self, acc_idx: usize, cmpts: [&[u8]; 4]) -> [u128; 4] {
        let mut out = [0u128; 4];
        self.read_column(acc_idx, &cmpts, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opendesc_ir::{enumerate_paths, extract, names, SemanticRegistry, DEFAULT_MAX_PATHS};
    use opendesc_p4::typecheck::parse_and_check;
    use proptest::prelude::*;

    fn mlx5_mini_path() -> (CompletionPath, SemanticRegistry) {
        let src = r#"
            header mini_t {
                @semantic("rss_hash") bit<32> rss;
                @semantic("pkt_len") bit<16> byte_cnt;
                @semantic("rx_status") bit<8> op_own;
                bit<8> pad0;
            }
            struct ctx_t { bit<1> c; }
            struct m_t { mini_t mini; }
            control C(cmpt_out o, in ctx_t ctx, in m_t m) {
                apply { o.emit(m.mini); }
            }
        "#;
        let (checked, d) = parse_and_check(src);
        assert!(!d.has_errors());
        let mut reg = SemanticRegistry::with_builtins();
        let cfg = extract(&checked, "C", &mut reg).unwrap();
        let mut paths = enumerate_paths(&cfg, DEFAULT_MAX_PATHS).unwrap();
        (paths.remove(0), reg)
    }

    #[test]
    fn synthesize_splits_hw_and_soft() {
        let (path, reg) = mlx5_mini_path();
        let rss = reg.id(names::RSS_HASH).unwrap();
        let vlan = reg.id(names::VLAN_TCI).unwrap();
        let set =
            AccessorSet::synthesize(&path, &[(rss, "rss".into(), 32), (vlan, "vlan".into(), 16)]);
        assert_eq!(set.hardware().count(), 1);
        assert_eq!(set.software().count(), 1);
        assert_eq!(set.completion_bytes, 8);
        assert_eq!(set.for_semantic(rss).unwrap().kind, AccessorKind::Hardware);
    }

    #[test]
    fn hardware_read_matches_layout() {
        let (path, reg) = mlx5_mini_path();
        let rss = reg.id(names::RSS_HASH).unwrap();
        let len = reg.id(names::PKT_LEN).unwrap();
        let set =
            AccessorSet::synthesize(&path, &[(rss, "rss".into(), 32), (len, "len".into(), 16)]);
        let cmpt = [0xDE, 0xAD, 0xBE, 0xEF, 0x05, 0xDC, 0x03, 0x00];
        assert_eq!(set.for_semantic(rss).unwrap().read(&cmpt), 0xDEADBEEF);
        assert_eq!(set.for_semantic(len).unwrap().read(&cmpt), 0x05DC);
    }

    #[test]
    fn software_shim_recomputes_from_frame() {
        let (path, reg) = mlx5_mini_path();
        let vlan = reg.id(names::VLAN_TCI).unwrap();
        let set = AccessorSet::synthesize(&path, &[(vlan, "vlan".into(), 16)]);
        let mut soft = SoftNic::new();
        let frame =
            opendesc_softnic::testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"x", Some(0x0ABC));
        let vals = set.read_packet(&reg, &mut soft, &frame, &[0u8; 8]);
        assert_eq!(vals, vec![Some(0x0ABC)]);
    }

    #[test]
    fn software_shim_returns_none_when_incomputable() {
        let (path, reg) = mlx5_mini_path();
        let ts = reg.id(names::TIMESTAMP).unwrap();
        let set = AccessorSet::synthesize(&path, &[(ts, "ts".into(), 64)]);
        let mut soft = SoftNic::new();
        let frame = opendesc_softnic::testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"x", None);
        let vals = set.read_packet(&reg, &mut soft, &frame, &[0u8; 8]);
        assert_eq!(vals, vec![None]);
    }

    #[test]
    fn batch4_reads_match_scalar_reads() {
        let (path, reg) = mlx5_mini_path();
        let rss = reg.id(names::RSS_HASH).unwrap();
        let set = AccessorSet::synthesize(&path, &[(rss, "rss".into(), 32)]);
        let c: Vec<[u8; 8]> = (0u8..4).map(|i| [i, 1, 2, 3, 4, 5, 6, 7]).collect();
        let batch = set.read_batch4(0, [&c[0], &c[1], &c[2], &c[3]]);
        for i in 0..4 {
            assert_eq!(batch[i], set.accessors[0].read(&c[i]));
        }
    }

    #[test]
    fn read_column_matches_scalar_with_remainder() {
        let (path, reg) = mlx5_mini_path();
        let rss = reg.id(names::RSS_HASH).unwrap();
        let len = reg.id(names::PKT_LEN).unwrap();
        let set =
            AccessorSet::synthesize(&path, &[(rss, "rss".into(), 32), (len, "len".into(), 16)]);
        // 7 completions: one 4-chunk plus a 3-record scalar remainder.
        let cmpts: Vec<Vec<u8>> = (0u8..7)
            .map(|i| vec![i, i ^ 0xFF, 2 * i, 3, 4, 5, 6, 7])
            .collect();
        for acc_idx in 0..set.accessors.len() {
            let mut out = vec![0u128; cmpts.len()];
            set.read_column(acc_idx, &cmpts, &mut out);
            for (c, got) in cmpts.iter().zip(&out) {
                assert_eq!(*got, set.accessors[acc_idx].read(c));
            }
        }
    }

    proptest! {
        /// Aligned fast path equals the bit-exact slow path for every
        /// offset/width combination.
        #[test]
        fn fast_path_equals_slow_path(
            off_bytes in 0u32..8,
            width_bytes in 1u16..=8,
            data in proptest::collection::vec(any::<u8>(), 16),
        ) {
            let a = Accessor::hardware(SemanticId(0), "f", off_bytes * 8, width_bytes * 8);
            prop_assert!(a.aligned);
            let direct = read_bits(&data, off_bytes * 8, width_bytes * 8);
            prop_assert_eq!(a.read(&data), direct);
        }

        /// Unaligned accessors agree with read_bits.
        #[test]
        fn unaligned_reads_bit_exact(
            off in 0u32..40,
            width in 1u16..=32,
            data in proptest::collection::vec(any::<u8>(), 16),
        ) {
            let a = Accessor::hardware(SemanticId(0), "f", off, width);
            prop_assert_eq!(a.read(&data), read_bits(&data, off, width));
        }
    }
}
