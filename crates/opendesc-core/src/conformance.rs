//! Differential conformance fuzzing across the descriptor-layout space.
//!
//! The paper's claim is that the metadata interface is a *negotiated
//! artifact*: any valid `CmptDeparser`/`DescParser` description should
//! compile to an interface whose four executable forms — the SoftNIC
//! reference ([`AccessorSet::read_packet`]), the tree-interpreter
//! oracle ([`RxPlan`]), the bytecode VM, and the verifier-gated eBPF
//! lowering — agree bit-for-bit, and whose TX deparse bytecode writes
//! the same wire bytes as [`TxWriter`](crate::tx::TxWriter). Four
//! hand-built models cannot witness that claim over the layout space,
//! so this module mints NIC models *at random* (seed-deterministic,
//! via [`opendesc_nicsim::models::programmable`]) — randomized field
//! widths, offsets and ordering, interleaved pads and generation tags,
//! optional tails, if/else/switch/opaque guards, optional extended TX
//! descriptors — negotiates each one, round-trips its manifest, and
//! cross-checks every execution form on identical bytes.
//!
//! A divergence carries a minimized reproducer (seed + intent mask +
//! contract + manifest) so CI can upload it as an artifact and
//! `tests/corpus/` can pin it forever.

use crate::accessor::{Accessor, AccessorSet};
use crate::codegen::manifest::{generate, ManifestV1};
use crate::compiler::Compiler;
use crate::intent::Intent;
use crate::lower::{lower, LowerError};
use crate::plan::RxPlan;
use crate::select::Selector;
use crate::tx::{compile_tx, txreg, CompiledTxPlan};
use opendesc_ebpf::Vm;
use opendesc_ir::semantics::{names, SemanticId, SemanticRegistry};
use opendesc_nicsim::models::{
    programmable, NicModel, ProgField, ProgGuard, ProgLayout, ProgSpec, ProgTxSpec,
};
use opendesc_softnic::{testpkt, SoftNic};

/// The semantic pool intents draw from: every entry has a finite
/// software cost, so any intent over this pool compiles on any layout.
pub const INTENT_SEMS: [&str; 8] = [
    names::RSS_HASH,
    names::QUEUE_HINT,
    names::VLAN_TCI,
    names::PKT_LEN,
    names::PACKET_TYPE,
    names::PAYLOAD_OFFSET,
    names::KVS_KEY_HASH,
    names::IP_CHECKSUM,
];

/// Extra semantics that may appear in generated layouts but never in
/// intents (device-only or stateful — the fuzzer only reads them as
/// raw completion bits).
const LAYOUT_ONLY_SEMS: [&str; 4] = [
    names::TIMESTAMP,
    names::FLOW_TAG,
    names::IP_ID,
    names::RX_STATUS,
];

/// Seed-deterministic xorshift64 generator — the only entropy source,
/// so every run is replayable from its seed.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Deterministic pseudo-random completion bytes.
pub fn splat(mut seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed as u8
        })
        .collect()
}

/// Generate one random *valid* layout: shuffled semantic fields with
/// randomized widths, interleaved pad/generation-tag fields. `budget`
/// caps the field bits so layout + tail stay within the 64-byte slot.
fn gen_layout(rng: &mut Rng, fresh: &mut usize, budget: u32) -> ProgLayout {
    let mut pool: Vec<&str> = INTENT_SEMS
        .iter()
        .chain(LAYOUT_ONLY_SEMS.iter())
        .copied()
        .collect();
    rng.shuffle(&mut pool);
    let k = rng.below(7) as usize + 1;
    let mut fields = Vec::new();
    let mut bits = 0u32;
    for sem in pool.into_iter().take(k) {
        // Width: the semantic's natural width, a power-of-two, or fully
        // random (unaligned widths exercise the cross-byte shift paths).
        let w = match rng.below(4) {
            0 => natural_width(sem),
            1 => [8u16, 16, 32, 64][rng.below(4) as usize],
            _ => rng.below(64) as u16 + 1,
        };
        if bits + w as u32 > budget {
            break;
        }
        // Interleave a pad or generation tag before the field.
        if rng.chance(40) {
            let pw = rng.below(31) as u16 + 1;
            if bits + pw as u32 + w as u32 <= budget {
                let tag = if rng.chance(50) { "gen" } else { "pad" };
                fields.push(ProgField::pad(&format!("{tag}{fresh}"), pw));
                *fresh += 1;
                bits += pw as u32;
            }
        }
        fields.push(ProgField::sem(&format!("f{fresh}"), sem, w));
        *fresh += 1;
        bits += w as u32;
    }
    if fields.is_empty() {
        fields.push(ProgField::sem(&format!("f{fresh}"), names::PKT_LEN, 16));
        *fresh += 1;
    }
    ProgLayout { fields }
}

fn natural_width(sem: &str) -> u16 {
    match sem {
        names::TIMESTAMP => 64,
        names::RSS_HASH | names::KVS_KEY_HASH | names::FLOW_TAG => 32,
        names::RX_STATUS => 8,
        _ => 16,
    }
}

/// Generate one random valid NIC description. Every shape this emits
/// must pass [`programmable`]'s validation — a `None` there is a
/// generator bug, surfaced by the caller.
pub fn gen_spec(rng: &mut Rng, idx: u64) -> ProgSpec {
    let guard = match rng.below(100) {
        0..=44 => ProgGuard::Switch {
            selector_bits: rng.below(7) as u16 + 2,
        },
        45..=69 => ProgGuard::IfElse,
        70..=89 => ProgGuard::Unconditional,
        _ => ProgGuard::Opaque,
    };
    let n_layouts = match guard {
        ProgGuard::Unconditional => 1,
        ProgGuard::IfElse | ProgGuard::Opaque => 2,
        ProgGuard::Switch { .. } => rng.below(4) as usize + 1,
    };
    let mut fresh = 0usize;
    let tail = if rng.chance(30) {
        Some(ProgLayout {
            fields: vec![
                ProgField::sem("t_status", names::RX_STATUS, 8),
                ProgField::sem("t_len", names::PKT_LEN, 16),
            ],
        })
    } else {
        None
    };
    let tail_bytes = tail.as_ref().map_or(0, |t| t.bytes());
    // Field-bit budget per layout: headers are byte-padded, so leave a
    // byte of slack under the 64B ceiling.
    let budget = (64 - tail_bytes - 1) * 8;
    let layouts = (0..n_layouts)
        .map(|_| gen_layout(rng, &mut fresh, budget))
        .collect();
    let tx = if rng.chance(50) {
        let mut ext = Vec::new();
        for (name, sem) in [
            ("x_vlan", names::TX_VLAN_INSERT),
            ("x_l4", names::TX_L4_CSUM),
            ("x_ip", names::TX_IP_CSUM),
        ] {
            if rng.chance(50) {
                ext.push(ProgField::sem(name, sem, 16));
            }
        }
        Some(ProgTxSpec {
            base: vec![
                ProgField::sem("addr", names::BUF_ADDR, 64),
                ProgField::sem("blen", names::BUF_LEN, 16),
                ProgField::pad("bflags", 8),
            ],
            ext: (!ext.is_empty()).then_some(ext),
        })
    } else {
        None
    };
    ProgSpec {
        name: format!("fuzz{idx}"),
        layouts,
        guard,
        tail,
        tx,
    }
}

/// Intent over the [`INTENT_SEMS`] whose bit is set in `mask`
/// (1..256, so never empty).
pub fn intent_from_mask(mask: u32, reg: &mut SemanticRegistry) -> Intent {
    let mut b = Intent::builder("conformance");
    for (i, name) in INTENT_SEMS.iter().enumerate() {
        if mask & (1 << i) != 0 {
            b = b.want(reg, name);
        }
    }
    b.build()
}

/// One confirmed cross-path divergence, with everything needed to
/// replay it: the run seed, the NIC's generation index, the (minimized)
/// intent mask, and the negotiated artifacts.
#[derive(Debug, Clone)]
pub struct Divergence {
    pub seed: u64,
    pub nic_idx: u64,
    pub intent_mask: u32,
    pub detail: String,
    pub contract: String,
    pub manifest: String,
}

/// Aggregate result of one fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub seed: u64,
    pub nics: u64,
    /// Negotiated (NIC, intent, layout) triples that passed every
    /// cross-path check.
    pub layouts_negotiated: u64,
    /// Manifests that survived `generate → parse → render` byte-stable.
    pub manifests_roundtripped: u64,
    /// Adversarial out-of-bounds plans the eBPF verifier refused.
    pub ebpf_refused: u64,
    /// TX-capable triples whose deparse bytecode matched `TxWriter`.
    pub tx_checked: u64,
    pub divergences: Vec<Divergence>,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Cross-check one negotiated (model, intent) pair on deterministic
/// frames and completion bytes. Returns the per-pair counts or the
/// first divergence's description.
fn check_pair(model: &NicModel, mask: u32, seed: u64) -> Result<(bool, bool), String> {
    let mut reg = SemanticRegistry::with_builtins();
    let intent = intent_from_mask(mask, &mut reg);
    let compiled = Compiler::default()
        .compile_model(model, &intent, &mut reg)
        .map_err(|e| format!("generated model failed to compile: {e}"))?;
    let set = &compiled.accessors;
    let plan = &compiled.plan;

    // Manifest contract: generate → parse → render must be byte-stable.
    let manifest = generate(&compiled);
    let parsed =
        ManifestV1::parse(&manifest).map_err(|e| format!("manifest does not re-parse: {e}"))?;
    if parsed.render() != manifest {
        return Err("manifest round-trip is not byte-stable".into());
    }
    let roundtripped = true;

    // Every compiler-produced plan must lower, verifier-approved.
    let lowered = lower(set, plan).map_err(|e| format!("lowering rejected a valid plan: {e}"))?;
    let prog = &lowered.prog;
    let slots = plan.steps.len();
    let vm = Vm::default();

    for round in 0..3u64 {
        let case = seed ^ round.wrapping_mul(0x0102_0304_0506_0708);
        let frame = testpkt::seeded_frame(case);
        let cmpt = splat(case | 1, set.completion_bytes as usize);
        let hint = if case & 4 == 0 {
            Some((case >> 32) as u32)
        } else {
            None
        };

        // SoftNIC reference vs tree oracle (both accessor-ordered).
        let mut soft_r = SoftNic::new();
        let reference = set.read_packet(&reg, &mut soft_r, &frame, &cmpt);
        let mut tree = vec![None; slots];
        let mut soft_a = SoftNic::new();
        plan.execute_into_primed(set, &mut soft_a, &frame, &cmpt, None, &mut tree);
        if reference != tree {
            return Err(format!("round {round}: SoftNIC reference != tree oracle"));
        }

        // Tree oracle vs bytecode VM, with the RSS sideband primed the
        // way the datapath primes it.
        let mut tree_h = vec![None; slots];
        let mut soft_b = SoftNic::new();
        plan.execute_into_primed(set, &mut soft_b, &frame, &cmpt, hint, &mut tree_h);
        let mut byte = vec![None; slots];
        let mut soft_c = SoftNic::new();
        prog.run_trusted(&mut soft_c, &frame, &cmpt, hint, &mut byte);
        if tree_h != byte {
            return Err(format!(
                "round {round}: tree oracle != bytecode VM (trusted)"
            ));
        }
        if soft_b.shim_ops() != soft_c.shim_ops() {
            return Err(format!("round {round}: trusted shim-op counts diverged"));
        }

        // Every hardware field through the verifier-gated eBPF programs.
        for f in &lowered.ebpf {
            let got = f
                .run(&vm, &cmpt)
                .map_err(|e| format!("round {round}: verified eBPF program trapped: {e:?}"))?;
            let want = set.accessors[f.acc_idx].read(&cmpt);
            if got != want {
                return Err(format!(
                    "round {round}: eBPF field {} read {got:#x}, accessor read {want:#x}",
                    f.name
                ));
            }
        }

        // Verified disposition on a corrupted record: identical repairs.
        let mut bad = cmpt.clone();
        for (i, b) in bad.iter_mut().enumerate() {
            if i % 3 == 0 {
                *b ^= 0x5A;
            }
        }
        let mut tree_v = vec![None; slots];
        let mut soft_d = SoftNic::new();
        let rep_tree = plan.execute_verified(set, &mut soft_d, &frame, &bad, &mut tree_v);
        let mut byte_v = vec![None; slots];
        let mut soft_e = SoftNic::new();
        let rep_byte = prog.run_verified(&mut soft_e, &frame, &bad, &mut byte_v);
        if tree_v != byte_v || rep_tree != rep_byte {
            return Err(format!("round {round}: verified disposition diverged"));
        }

        // Degraded disposition with sentinel prefill.
        let mut tree_d = vec![Some(0xDEAD); slots];
        let mut soft_f = SoftNic::new();
        plan.execute_degraded(&mut soft_f, &frame, &mut tree_d);
        let mut byte_d = vec![Some(0xBEEF); slots];
        let mut soft_g = SoftNic::new();
        prog.run_degraded(&mut soft_g, &frame, &mut byte_d);
        if tree_d != byte_d {
            return Err(format!("round {round}: degraded disposition diverged"));
        }
    }

    // TX: deparse bytecode vs TxWriter wire bytes, when the generated
    // NIC has a descriptor parser.
    let mut tx_checked = false;
    if model.desc_parser.is_some() {
        let mut reg = SemanticRegistry::with_builtins();
        let mut b = Intent::builder("conformance-tx");
        for (i, name) in [names::TX_VLAN_INSERT, names::TX_L4_CSUM, names::TX_IP_CSUM]
            .iter()
            .enumerate()
        {
            if mask & (1 << i) != 0 {
                b = b.want(&mut reg, name);
            }
        }
        let tx_intent = b.build();
        let tx = compile_tx(
            &Selector::default(),
            &model.p4_source,
            model.desc_parser.as_deref().unwrap_or("DescParser"),
            &model.name,
            &tx_intent,
            &mut reg,
        )
        .map_err(|e| format!("TX layout failed to compile: {e}"))?;
        let txplan = CompiledTxPlan::new(tx, &reg);
        let id = |n: &str| reg.id(n).expect("builtin");
        for round in 0..3u64 {
            let r = seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let addr = r & 0xFFFF_FFFF_F000;
            let len = (r >> 17) % 1515;
            let tci = (r >> 31) as u16 & 0x0FFF;
            let mut hints: Vec<(SemanticId, u128)> = vec![
                (id(names::BUF_ADDR), addr as u128),
                (id(names::BUF_LEN), len as u128),
            ];
            let mut regs = [0u128; txreg::COUNT];
            regs[txreg::BUF_ADDR] = addr as u128;
            regs[txreg::BUF_LEN] = len as u128;
            if !txplan.sw_vlan {
                hints.push((id(names::TX_VLAN_INSERT), tci as u128));
                regs[txreg::VLAN] = tci as u128;
            }
            if r & 8 != 0 && !txplan.sw_ip_csum {
                hints.push((id(names::TX_IP_CSUM), 1));
                regs[txreg::IP_CSUM] = 1;
            }
            if r & 16 != 0 && !txplan.sw_l4_csum {
                hints.push((id(names::TX_L4_CSUM), 1));
                regs[txreg::L4_CSUM] = 1;
            }
            let golden = txplan.tx.writer.build(&hints);
            let mut desc = vec![0xFFu8; golden.len()];
            txplan.prog.run_deparse(&regs, &mut desc);
            if desc != golden {
                return Err(format!(
                    "TX round {round}: deparse bytecode != TxWriter wire bytes"
                ));
            }
        }
        tx_checked = true;
    }

    Ok((roundtripped, tx_checked))
}

/// Shrink a failing intent mask: greedily drop semantics while the
/// failure persists, so the repro carries the smallest intent.
fn minimize_mask(model: &NicModel, mask: u32, seed: u64) -> u32 {
    let mut best = mask;
    loop {
        let mut shrunk = false;
        for i in 0..INTENT_SEMS.len() as u32 {
            let cand = best & !(1 << i);
            if cand != best && cand != 0 && check_pair(model, cand, seed).is_err() {
                best = cand;
                shrunk = true;
            }
        }
        if !shrunk {
            return best;
        }
    }
}

/// Adversarial refusal check: hand-built plans that lie about their
/// completion size must be rejected by the eBPF verifier, never lowered.
/// Returns the refusal count and any plan that slipped through.
fn adversarial_refusals(rng: &mut Rng, rounds: u64) -> (u64, Option<String>) {
    let reg = SemanticRegistry::with_builtins();
    let mut refused = 0;
    for _ in 0..rounds {
        let bytes = rng.below(32) as u32 + 1;
        // Offset chosen past the record: offset_bits + width > bytes*8.
        let width = [8u16, 16, 32, 64][rng.below(4) as usize];
        let offset = (bytes * 8).saturating_sub(rng.below(width as u64 / 2 + 1) as u32)
            + rng.below(64) as u32;
        let set = AccessorSet {
            accessors: vec![Accessor::hardware(SemanticId(0), "liar", offset, width)],
            completion_bytes: bytes,
        };
        if (offset + width as u32).div_ceil(8) <= bytes {
            continue; // not actually out of bounds; skip
        }
        let plan = RxPlan::compile(&set, &reg);
        match lower(&set, &plan) {
            Err(LowerError::Verify { .. }) => refused += 1,
            Err(_) => refused += 1, // operand-range rejection is also a refusal
            Ok(_) => {
                return (
                    refused,
                    Some(format!(
                        "out-of-bounds plan lowered: offset {offset} width {width} in {bytes}B"
                    )),
                );
            }
        }
    }
    (refused, None)
}

/// Run the differential conformance fuzzer: `nics` generated NIC models
/// × `intents_per_nic` random intents each, plus an adversarial
/// refusal sweep. Deterministic in `seed`.
pub fn run(seed: u64, nics: u64, intents_per_nic: u64) -> Report {
    let mut rng = Rng::new(seed);
    let mut report = Report {
        seed,
        nics,
        ..Report::default()
    };
    for nic_idx in 0..nics {
        let spec = gen_spec(&mut rng, nic_idx);
        let Some(model) = programmable(&spec) else {
            report.divergences.push(Divergence {
                seed,
                nic_idx,
                intent_mask: 0,
                detail: "generator emitted a spec programmable() rejects".into(),
                contract: format!("{spec:?}"),
                manifest: String::new(),
            });
            continue;
        };
        for _ in 0..intents_per_nic {
            let mask = (rng.below(255) + 1) as u32;
            let case_seed = rng.next_u64();
            match check_pair(&model, mask, case_seed) {
                Ok((roundtripped, tx_checked)) => {
                    report.layouts_negotiated += 1;
                    if roundtripped {
                        report.manifests_roundtripped += 1;
                    }
                    if tx_checked {
                        report.tx_checked += 1;
                    }
                }
                Err(_) => {
                    let min_mask = minimize_mask(&model, mask, case_seed);
                    let detail = check_pair(&model, min_mask, case_seed)
                        .err()
                        .unwrap_or_else(|| "failure did not reproduce under minimization".into());
                    let manifest = {
                        let mut reg = SemanticRegistry::with_builtins();
                        let intent = intent_from_mask(min_mask, &mut reg);
                        Compiler::default()
                            .compile_model(&model, &intent, &mut reg)
                            .map(|c| generate(&c))
                            .unwrap_or_default()
                    };
                    report.divergences.push(Divergence {
                        seed: case_seed,
                        nic_idx,
                        intent_mask: min_mask,
                        detail,
                        contract: model.p4_source.clone(),
                        manifest,
                    });
                }
            }
        }
    }
    let (refused, slipped) = adversarial_refusals(&mut rng, 8);
    report.ebpf_refused = refused;
    if let Some(detail) = slipped {
        report.divergences.push(Divergence {
            seed,
            nic_idx: u64::MAX,
            intent_mask: 0,
            detail,
            contract: String::new(),
            manifest: String::new(),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_seed_deterministic() {
        let a: Vec<ProgSpec> = {
            let mut r = Rng::new(7);
            (0..8).map(|i| gen_spec(&mut r, i)).collect()
        };
        let b: Vec<ProgSpec> = {
            let mut r = Rng::new(7);
            (0..8).map(|i| gen_spec(&mut r, i)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<ProgSpec> = {
            let mut r = Rng::new(8);
            (0..8).map(|i| gen_spec(&mut r, i)).collect()
        };
        assert_ne!(a, c, "different seeds explore different specs");
    }

    #[test]
    fn every_generated_spec_is_programmable() {
        let mut rng = Rng::new(0xC0FFEE);
        for i in 0..64 {
            let spec = gen_spec(&mut rng, i);
            assert!(
                programmable(&spec).is_some(),
                "generator emitted invalid spec {i}: {spec:?}"
            );
        }
    }

    #[test]
    fn small_fuzz_run_is_clean() {
        let r = run(42, 8, 2);
        assert_eq!(r.layouts_negotiated, 16, "all pairs negotiate");
        assert_eq!(r.manifests_roundtripped, 16);
        assert!(r.ebpf_refused > 0, "adversarial sweep must refuse");
        if let Some(d) = r.divergences.first() {
            panic!("nic {} mask {:#b}: {}", d.nic_idx, d.intent_mask, d.detail);
        }
    }

    #[test]
    fn fuzz_run_is_deterministic() {
        let a = run(3, 4, 2);
        let b = run(3, 4, 2);
        assert_eq!(a.layouts_negotiated, b.layouts_negotiated);
        assert_eq!(a.ebpf_refused, b.ebpf_refused);
        assert_eq!(a.tx_checked, b.tx_checked);
    }
}
