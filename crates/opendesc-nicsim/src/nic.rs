//! The simulated NIC: executes a model's contract against live traffic.
//!
//! `SimNic` wires together the offload engine, the completion ring, the
//! DMA cost model, and — crucially — the *contract itself*: completion
//! records are serialized by either interpreting the `CmptDeparser` AST
//! (reference mode) or by a table-driven fast path derived from the
//! enumerated completion layout. A property test asserts the two agree,
//! which is exactly the host/NIC semantic-alignment property OpenDesc is
//! about.

use crate::dma::{DmaConfig, DmaMeter};
use crate::hostmem::HostMem;
use crate::models::NicModel;
use crate::offload::{MetaRecord, OffloadEngine, OffloadProgram};
use crate::ring::{DescRing, RingError};
use opendesc_ir::bits::write_bits;
use opendesc_ir::interp::run_deparser;
use opendesc_ir::value::Value;
use opendesc_ir::{
    enumerate_paths, extract, Assignment, Cfg, CompletionPath, SemanticId, SemanticRegistry,
    DEFAULT_MAX_PATHS,
};
use opendesc_p4::typecheck::{parse_and_check, CheckedProgram};
use opendesc_p4::types::Ty;
use opendesc_softnic::wire::ParsedFrame;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// How the simulated device serializes completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritebackMode {
    /// Interpret the deparser AST for every packet (reference semantics).
    Interpret,
    /// Table-driven writeback from the active enumerated layout; falls
    /// back to interpretation when the active path cannot be determined.
    #[default]
    Fast,
}

/// Fault injection knobs (in the smoltcp spirit: exercise the unhappy
/// paths deterministically). Every class defaults off; prefer
/// [`FaultConfig::builder`] so adding fault classes never changes the
/// behavior of existing configurations.
///
/// Probabilities outside \[0,1\] are rejected by
/// [`validate`](FaultConfig::validate) (and therefore by
/// [`SimNic::set_faults`] and the builder) — out-of-range values would
/// silently saturate in the rand comparison instead of failing loudly.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability \[0,1\] of dropping a frame before processing.
    pub drop_chance: f64,
    /// Probability \[0,1\] of flipping one bit of the completion record.
    pub corrupt_chance: f64,
    /// Probability \[0,1\] of a torn writeback: only a random prefix of
    /// the record lands, the tail reads as stale slot bytes (zeros), and
    /// the sideband DMA never completes.
    pub torn_chance: f64,
    /// Probability \[0,1\] of a truncated completion: the DMA write is
    /// cut short, so the host sees a record shorter than the layout.
    pub truncate_chance: f64,
    /// Probability \[0,1\] of duplicating a completion: the device
    /// re-DMAs the same record (same sequence tag) into the next slot.
    pub duplicate_chance: f64,
    /// Probability \[0,1\] of writing a stale generation tag — the DD
    /// word of a previous ring pass — so the entry looks like an old
    /// completion the host already consumed.
    pub stale_gen_chance: f64,
    /// Probability \[0,1\] of losing the doorbell update: the completion
    /// is written but not published until a later doorbell (or a host
    /// ring reset) makes it visible.
    pub doorbell_loss_chance: f64,
    /// Probability \[0,1\] per frame of the queue's writeback engine
    /// wedging: this frame and the next [`hang_cycles`] deliveries are
    /// swallowed without completions, emulating a transient queue hang.
    ///
    /// [`hang_cycles`]: FaultConfig::hang_cycles
    pub hang_chance: f64,
    /// How many subsequent deliveries a hang swallows.
    pub hang_cycles: u32,
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            torn_chance: 0.0,
            truncate_chance: 0.0,
            duplicate_chance: 0.0,
            stale_gen_chance: 0.0,
            doorbell_loss_chance: 0.0,
            hang_chance: 0.0,
            hang_cycles: 4,
            seed: 0x0DE5C,
        }
    }
}

impl FaultConfig {
    /// Builder with every fault class off.
    pub fn builder() -> FaultConfigBuilder {
        FaultConfigBuilder {
            cfg: FaultConfig::default(),
        }
    }

    /// Reject probabilities outside \[0,1\] (including NaN).
    pub fn validate(&self) -> Result<(), NicError> {
        let probs = [
            ("drop_chance", self.drop_chance),
            ("corrupt_chance", self.corrupt_chance),
            ("torn_chance", self.torn_chance),
            ("truncate_chance", self.truncate_chance),
            ("duplicate_chance", self.duplicate_chance),
            ("stale_gen_chance", self.stale_gen_chance),
            ("doorbell_loss_chance", self.doorbell_loss_chance),
            ("hang_chance", self.hang_chance),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(NicError::BadConfig(format!(
                    "{name} = {p} is not a probability in [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// Whether any fault class is enabled.
    pub fn any_enabled(&self) -> bool {
        [
            self.drop_chance,
            self.corrupt_chance,
            self.torn_chance,
            self.truncate_chance,
            self.duplicate_chance,
            self.stale_gen_chance,
            self.doorbell_loss_chance,
            self.hang_chance,
        ]
        .iter()
        .any(|p| *p > 0.0)
    }
}

/// Builder for [`FaultConfig`]: start from all-off, enable classes one
/// by one, and get range validation at `build` time.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfigBuilder {
    cfg: FaultConfig,
}

impl FaultConfigBuilder {
    pub fn drop_chance(mut self, p: f64) -> Self {
        self.cfg.drop_chance = p;
        self
    }

    pub fn corrupt_chance(mut self, p: f64) -> Self {
        self.cfg.corrupt_chance = p;
        self
    }

    pub fn torn_chance(mut self, p: f64) -> Self {
        self.cfg.torn_chance = p;
        self
    }

    pub fn truncate_chance(mut self, p: f64) -> Self {
        self.cfg.truncate_chance = p;
        self
    }

    pub fn duplicate_chance(mut self, p: f64) -> Self {
        self.cfg.duplicate_chance = p;
        self
    }

    pub fn stale_gen_chance(mut self, p: f64) -> Self {
        self.cfg.stale_gen_chance = p;
        self
    }

    pub fn doorbell_loss_chance(mut self, p: f64) -> Self {
        self.cfg.doorbell_loss_chance = p;
        self
    }

    /// Enable transient queue hangs: each triggers with probability `p`
    /// per frame and swallows `cycles` further deliveries.
    pub fn hang(mut self, p: f64, cycles: u32) -> Self {
        self.cfg.hang_chance = p;
        self.cfg.hang_cycles = cycles;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    pub fn build(self) -> Result<FaultConfig, NicError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Counters for one receive queue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NicStats {
    pub rx_frames: u64,
    pub rx_bytes: u64,
    pub completions: u64,
    pub dropped_faults: u64,
    pub dropped_ring_full: u64,
    pub corrupted: u64,
    /// Torn writebacks (prefix landed, tail stale).
    pub torn: u64,
    /// Truncated completions (record cut short).
    pub truncated: u64,
    /// Duplicated completions (record re-DMAed).
    pub duplicated: u64,
    /// Completions written with a stale generation tag.
    pub stale_gen: u64,
    /// Doorbell updates lost after producing a completion.
    pub doorbell_lost: u64,
    /// Frames swallowed by a wedged writeback engine.
    pub hang_dropped: u64,
    /// Host-initiated queue resets ([`SimNic::reset_queue`]).
    pub resets: u64,
    /// Live per-queue context reprograms ([`SimNic::reprogram_queue`]) —
    /// ring-generation bumps from host-requested relayouts.
    pub reprograms: u64,
}

impl NicStats {
    /// Fold another queue's counters into this one (the sharded layer's
    /// merged device-side view).
    pub fn merge(&mut self, other: &NicStats) {
        self.rx_frames += other.rx_frames;
        self.rx_bytes += other.rx_bytes;
        self.completions += other.completions;
        self.dropped_faults += other.dropped_faults;
        self.dropped_ring_full += other.dropped_ring_full;
        self.corrupted += other.corrupted;
        self.torn += other.torn;
        self.truncated += other.truncated;
        self.duplicated += other.duplicated;
        self.stale_gen += other.stale_gen;
        self.doorbell_lost += other.doorbell_lost;
        self.hang_dropped += other.hang_dropped;
        self.resets += other.resets;
        self.reprograms += other.reprograms;
    }

    /// Total injected faults across every class.
    pub fn injected_faults(&self) -> u64 {
        self.dropped_faults
            + self.corrupted
            + self.torn
            + self.truncated
            + self.duplicated
            + self.stale_gen
            + self.doorbell_lost
            + self.hang_dropped
    }

    /// Register every counter under `scope` (e.g. `rx.q0.nic`). This is
    /// the telemetry view over the same cells the struct API exposes;
    /// registering several queues under one scope folds them, exactly
    /// like [`merge`](NicStats::merge).
    pub fn register_into(&self, reg: &mut opendesc_telemetry::MetricRegistry, scope: &str) {
        reg.counter(&format!("{scope}.rx_frames"), self.rx_frames);
        reg.counter(&format!("{scope}.rx_bytes"), self.rx_bytes);
        reg.counter(&format!("{scope}.completions"), self.completions);
        reg.counter(&format!("{scope}.dropped_faults"), self.dropped_faults);
        reg.counter(
            &format!("{scope}.dropped_ring_full"),
            self.dropped_ring_full,
        );
        reg.counter(&format!("{scope}.corrupted"), self.corrupted);
        reg.counter(&format!("{scope}.torn"), self.torn);
        reg.counter(&format!("{scope}.truncated"), self.truncated);
        reg.counter(&format!("{scope}.duplicated"), self.duplicated);
        reg.counter(&format!("{scope}.stale_gen"), self.stale_gen);
        reg.counter(&format!("{scope}.doorbell_lost"), self.doorbell_lost);
        reg.counter(&format!("{scope}.hang_dropped"), self.hang_dropped);
        reg.counter(&format!("{scope}.resets"), self.resets);
        reg.counter(&format!("{scope}.reprograms"), self.reprograms);
    }
}

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum NicError {
    /// The model's contract failed to parse/check/extract.
    BadContract(String),
    /// The requested context assignment selects no completion path.
    NoPathForContext,
    /// A configuration value is out of range (e.g. a fault probability
    /// outside \[0,1\]).
    BadConfig(String),
    Ring(RingError),
}

impl fmt::Display for NicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NicError::BadContract(m) => write!(f, "bad contract: {m}"),
            NicError::NoPathForContext => write!(f, "context selects no completion path"),
            NicError::BadConfig(m) => write!(f, "bad config: {m}"),
            NicError::Ring(e) => write!(f, "ring: {e}"),
        }
    }
}

impl std::error::Error for NicError {}

/// Sideband metadata the device carries alongside a completion: state the
/// steering stage already computed that the host plan can trust instead
/// of recomputing (the descriptor-reported-hash idiom of real NICs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RxSideband {
    /// Toeplitz hash computed at steering time (RSS policy, IP frames).
    pub rss_hint: Option<u32>,
    /// The completion's writeback sequence tag, read from the ring slot.
    /// An honest device tags entries with consecutive values; stale or
    /// duplicated writebacks surface here for the host's validator.
    pub seq: u64,
}

/// A simulated NIC receive queue executing an OpenDesc contract.
pub struct SimNic {
    pub model: NicModel,
    pub checked: CheckedProgram,
    pub reg: SemanticRegistry,
    pub cfg: Cfg,
    pub paths: Vec<CompletionPath>,
    /// Semantics the device computes (everything the contract's meta
    /// struct mentions).
    pub supported: Vec<SemanticId>,
    engine: OffloadEngine,
    /// `supported` lowered to device ops, once at construction (kept in
    /// sync by [`SimNic::new`]; mutating `supported` afterwards requires
    /// recompiling via [`OffloadProgram::compile`]).
    offload_prog: OffloadProgram,
    /// Reusable per-frame offload record (deliver-path scratch).
    rec_scratch: MetaRecord,
    /// Reusable completion writeback buffer (deliver-path scratch).
    wb_scratch: Vec<u8>,
    /// Recycled frame storage: `receive_into` returns emptied buffers
    /// here, `deliver` reuses them instead of allocating.
    frame_pool: Vec<Vec<u8>>,
    context: Assignment,
    active_path: Option<usize>,
    mode: WritebackMode,
    pub cq: DescRing,
    pub dma_cfg: DmaConfig,
    pub dma: DmaMeter,
    pub stats: NicStats,
    faults: FaultConfig,
    fault_rng: SmallRng,
    /// Next writeback sequence tag (increments per fresh completion).
    wb_seq: u64,
    /// Ring/context generation: bumped by every
    /// [`reprogram_queue`](SimNic::reprogram_queue) — the device-side
    /// view of how many live relayouts this queue has been through.
    ring_generation: u32,
    /// Remaining deliveries a wedged writeback engine swallows.
    hang_remaining: u32,
    /// Received frames pending host pickup, parallel to completions.
    rx_frames: std::collections::VecDeque<Vec<u8>>,
    /// Steering sideband in lockstep with the completion ring: one entry
    /// per successfully produced completion, consumed by
    /// [`SimNic::receive_into_hinted`].
    rx_hints: std::collections::VecDeque<Option<u32>>,
    /// Transmit descriptor ring (host → device).
    pub tx_ring: DescRing,
    /// DMA-visible buffer pool TX descriptors point into.
    pub host_mem: HostMem,
    /// Per-queue H2C (TX) context programmed by the driver.
    pub(crate) h2c_context: Assignment,
    /// TX-side counters.
    pub tx_stats: crate::tx::TxStats,
    /// RX buffer-provisioning state (see [`crate::rxbuf`]).
    pub rx_pool: crate::rxbuf::RxBufferPool,
}

impl SimNic {
    /// Instantiate a NIC from a model, with a completion ring of
    /// `ring_entries` slots.
    pub fn new(model: NicModel, ring_entries: usize) -> Result<SimNic, NicError> {
        let (checked, diags) = parse_and_check(&model.p4_source);
        if diags.has_errors() {
            return Err(NicError::BadContract(
                diags
                    .iter()
                    .map(|d| d.message.clone())
                    .collect::<Vec<_>>()
                    .join("; "),
            ));
        }
        let mut reg = SemanticRegistry::with_builtins();
        let cfg = extract(&checked, &model.deparser, &mut reg).map_err(|d| {
            NicError::BadContract(
                d.iter()
                    .map(|x| x.message.clone())
                    .collect::<Vec<_>>()
                    .join("; "),
            )
        })?;
        let paths = enumerate_paths(&cfg, DEFAULT_MAX_PATHS)
            .map_err(|e| NicError::BadContract(e.to_string()))?;

        // Supported semantics: every @semantic in the meta struct.
        let mut supported = Vec::new();
        if let Some(Ty::Struct(sid)) = checked.types.lookup(&model.meta_type) {
            let sinfo = checked.types.struct_(sid).clone();
            for f in &sinfo.fields {
                if let Ty::Header(hid) = f.ty {
                    for hf in &checked.types.header(hid).fields {
                        if let Some(sem) = &hf.semantic {
                            let id = reg.intern(sem);
                            if !supported.contains(&id) {
                                supported.push(id);
                            }
                        }
                    }
                }
            }
        }

        let slot = model.completion_slot_bytes.max(1);
        let faults = FaultConfig::default();
        let offload_prog = OffloadProgram::compile(&reg, &supported);
        let mut nic = SimNic {
            checked,
            reg,
            cfg,
            paths,
            supported,
            engine: OffloadEngine::default(),
            offload_prog,
            rec_scratch: MetaRecord::default(),
            wb_scratch: Vec::new(),
            frame_pool: Vec::new(),
            context: Assignment::new(),
            active_path: None,
            mode: WritebackMode::default(),
            cq: DescRing::new(ring_entries, slot),
            dma_cfg: DmaConfig::default(),
            dma: DmaMeter::default(),
            stats: NicStats::default(),
            fault_rng: SmallRng::seed_from_u64(faults.seed),
            faults,
            wb_seq: 0,
            ring_generation: 0,
            hang_remaining: 0,
            rx_frames: std::collections::VecDeque::new(),
            rx_hints: std::collections::VecDeque::new(),
            tx_ring: DescRing::new(ring_entries, 64),
            host_mem: HostMem::new(),
            h2c_context: Assignment::new(),
            tx_stats: crate::tx::TxStats::default(),
            rx_pool: crate::rxbuf::RxBufferPool::default(),
            model,
        };
        nic.refresh_active_path();
        Ok(nic)
    }

    /// Set writeback mode.
    pub fn set_mode(&mut self, mode: WritebackMode) {
        self.mode = mode;
    }

    /// Configure fault injection. Rejects out-of-range probabilities;
    /// reseeds the fault RNG so runs are deterministic per config.
    pub fn set_faults(&mut self, faults: FaultConfig) -> Result<(), NicError> {
        faults.validate()?;
        self.fault_rng = SmallRng::seed_from_u64(faults.seed);
        self.faults = faults;
        self.hang_remaining = 0;
        Ok(())
    }

    /// Host-initiated queue recovery — the watchdog's re-arm. Publishes
    /// any produced-but-unannounced completions (lost doorbells) and
    /// un-wedges a hung writeback engine; an honest queue is unaffected.
    pub fn reset_queue(&mut self) {
        self.hang_remaining = 0;
        self.cq.ring_doorbell();
        self.stats.resets += 1;
    }

    /// Completions currently pending host pickup (ring occupancy).
    pub fn pending_completions(&self) -> usize {
        self.cq.len()
    }

    /// How many live relayouts this queue has been through.
    pub fn ring_generation(&self) -> u32 {
        self.ring_generation
    }

    /// Device-side live relayout: reprogram the per-queue context under
    /// traffic and tick the ring generation over — the `reset_queue`-
    /// style republish of an RXDID / descriptor-format change. `None`
    /// keeps the current context (a generation bump without a path
    /// change, e.g. when only software shims moved).
    ///
    /// Completions still unharvested at reprogram time were serialized
    /// under the *old* layout; the new-generation ring cannot describe
    /// them, so they are re-tagged with a previous-pass generation word
    /// (exactly the stale-generation fault class, here exercised
    /// intentionally) and republished — the host's sequence admission
    /// discards them instead of misparsing old-layout bytes with the
    /// new plan. A host that drains the queue to quiescence first
    /// strands nothing. Also un-wedges a hung writeback engine, like
    /// [`reset_queue`](SimNic::reset_queue). Returns the number of
    /// stranded (stale-tagged) completions.
    ///
    /// A context with no matching completion path is rejected and the
    /// old context stays programmed — a failed reprogram must not leave
    /// the queue on a layout neither generation can parse.
    pub fn reprogram_queue(&mut self, context: Option<Assignment>) -> Result<usize, NicError> {
        if let Some(ctx) = context {
            let old = std::mem::replace(&mut self.context, ctx);
            self.refresh_active_path();
            if self.active_path.is_none() {
                self.context = old;
                self.refresh_active_path();
                return Err(NicError::NoPathForContext);
            }
        }
        let stranded = self.cq.retag_pending_stale();
        self.hang_remaining = 0;
        self.cq.ring_doorbell();
        self.ring_generation += 1;
        self.stats.reprograms += 1;
        Ok(stranded)
    }

    /// Register this queue's device-side telemetry under `scope` (e.g.
    /// `rx.q0.nic`): every [`NicStats`] counter plus ring-occupancy
    /// gauges. The device is a first-class registry source — its
    /// injected-fault counters sit next to the host validator's
    /// caught-fault counters in the same snapshot.
    pub fn register_metrics(&self, reg: &mut opendesc_telemetry::MetricRegistry, scope: &str) {
        self.stats.register_into(reg, scope);
        reg.gauge(&format!("{scope}.ring_pending"), self.cq.len() as f64);
        reg.gauge(&format!("{scope}.ring_capacity"), self.cq.capacity() as f64);
    }

    /// One roll of the fault dice at probability `p`.
    #[inline]
    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.fault_rng.random::<f64>() < p
    }

    /// Override the DMA link model.
    pub fn set_dma_config(&mut self, cfg: DmaConfig) {
        self.dma_cfg = cfg;
    }

    /// Program the per-queue context (the "MMIO writes" of the implicit
    /// control channel). Typically the assignment comes straight from the
    /// compiler's selected path.
    pub fn configure(&mut self, context: Assignment) -> Result<(), NicError> {
        self.context = context;
        self.refresh_active_path();
        if self.active_path.is_none() {
            // Some layout must still serve (possibly via a default arm);
            // Interpret mode can always run, so this is only an error if
            // *no* path guard evaluates true.
            return Err(NicError::NoPathForContext);
        }
        Ok(())
    }

    /// The completion path the current context selects.
    pub fn active_path(&self) -> Option<&CompletionPath> {
        self.active_path.map(|i| &self.paths[i])
    }

    fn refresh_active_path(&mut self) {
        self.active_path = self
            .paths
            .iter()
            .position(|p| p.guard.iter().all(|c| c.eval(&self.context) == Some(true)));
    }

    /// Deliver one frame from the wire. Computes offloads, serializes the
    /// completion per the contract, and posts packet + completion.
    pub fn deliver(&mut self, frame: &[u8]) -> Result<(), NicError> {
        self.deliver_steered(frame, None, None)
    }

    /// [`deliver`](SimNic::deliver) with steering-stage state handed down:
    /// `parsed` is the steering-time frame parse (reused by the offload
    /// engine instead of re-parsing) and `rss_hint` the steering-time
    /// Toeplitz hash (primed into the shim memo, and carried to the host
    /// as completion sideband). Passing `None` for both is exactly
    /// `deliver` — the single-queue path pays the parse itself.
    pub fn deliver_steered(
        &mut self,
        frame: &[u8],
        parsed: Option<&ParsedFrame<'_>>,
        rss_hint: Option<u32>,
    ) -> Result<(), NicError> {
        // Transient queue hang: a wedged writeback engine swallows this
        // and the next `hang_cycles` deliveries without completions.
        if self.hang_remaining > 0 {
            self.hang_remaining -= 1;
            self.stats.hang_dropped += 1;
            return Ok(());
        }
        if self.roll(self.faults.hang_chance) {
            self.hang_remaining = self.faults.hang_cycles;
            self.stats.hang_dropped += 1;
            return Ok(());
        }
        if self.roll(self.faults.drop_chance) {
            self.stats.dropped_faults += 1;
            return Ok(());
        }
        // Buffer mode: the frame needs a posted receive buffer; the DMA
        // write happens here, ahead of the completion.
        if self.rx_pool.enabled && !self.rx_buffer_write(frame) {
            return Ok(());
        }
        // Offloads into the reusable record: pre-lowered ops, one parse
        // (zero when the steering stage already did it).
        self.engine.process_program_with(
            &self.offload_prog,
            frame,
            parsed,
            rss_hint,
            &mut self.rec_scratch,
        );
        // Serialize the completion into the reusable writeback buffer.
        match (self.mode, self.active_path) {
            (WritebackMode::Fast, Some(i)) => {
                Self::write_fast(&self.paths[i], &self.rec_scratch, &mut self.wb_scratch);
            }
            _ => {
                let out = self.interpret_writeback(&self.rec_scratch)?;
                self.wb_scratch.clear();
                self.wb_scratch.extend_from_slice(&out);
            }
        }
        // Corruption faults hit the record *and* the sideband in
        // lockstep: a fault that mangles the completion DMA has no
        // reason to spare the hint word, and a pristine hint would let
        // hint-primed plans silently repair the damage.
        let mut hint = rss_hint;
        if !self.wb_scratch.is_empty() && self.roll(self.faults.torn_chance) {
            // Torn writeback: only a prefix lands; the tail keeps the
            // slot's stale bytes (zeros here) and the sideband is lost.
            let cut = self.fault_rng.random_range(0..self.wb_scratch.len());
            for b in &mut self.wb_scratch[cut..] {
                *b = 0;
            }
            hint = None;
            self.stats.torn += 1;
        }
        if !self.wb_scratch.is_empty() && self.roll(self.faults.corrupt_chance) {
            let idx = self.fault_rng.random_range(0..self.wb_scratch.len());
            self.wb_scratch[idx] ^= 1 << self.fault_rng.random_range(0..8);
            if let Some(h) = hint.as_mut() {
                *h ^= 1 << self.fault_rng.random_range(0..32);
            }
            self.stats.corrupted += 1;
        }
        if !self.wb_scratch.is_empty() && self.roll(self.faults.truncate_chance) {
            let keep = self.fault_rng.random_range(0..self.wb_scratch.len());
            self.wb_scratch.truncate(keep);
            hint = None;
            self.stats.truncated += 1;
        }
        // Generation tag: fresh by default; a stale-gen fault re-writes
        // a tag from the previous ring pass, so the entry looks like a
        // completion the host already consumed.
        let mut tag = self.wb_seq;
        if self.roll(self.faults.stale_gen_chance) {
            tag = tag.wrapping_sub(self.cq.capacity() as u64);
            self.stats.stale_gen += 1;
        }
        match self.cq.produce_tagged(&self.wb_scratch, tag) {
            Ok(()) => self.wb_seq += 1,
            Err(RingError::Full) => {
                self.stats.dropped_ring_full += 1;
                return Ok(());
            }
            Err(e) => return Err(NicError::Ring(e)),
        }
        if self.roll(self.faults.doorbell_loss_chance) {
            self.stats.doorbell_lost += 1;
        } else {
            self.cq.ring_doorbell();
        }
        // Sideband rides in lockstep with the completion just produced.
        self.rx_hints.push_back(hint);
        self.dma.record(&self.dma_cfg, self.wb_scratch.len() as u32);
        if !self.rx_pool.enabled {
            // Copy into a recycled buffer instead of allocating per frame.
            let mut buf = self.frame_pool.pop().unwrap_or_default();
            buf.clear();
            buf.extend_from_slice(frame);
            self.rx_frames.push_back(buf);
        }
        self.stats.rx_frames += 1;
        self.stats.rx_bytes += frame.len() as u64;
        self.stats.completions += 1;
        // Duplicated completion: the device re-DMAs the same record with
        // the same tag into the next slot; the host sees the packet
        // twice and must discard the replay by its sequence tag. (Buffer
        // mode has no second posted buffer to read, so skip there.)
        if !self.rx_pool.enabled
            && self.roll(self.faults.duplicate_chance)
            && self.cq.produce_tagged(&self.wb_scratch, tag).is_ok()
        {
            self.cq.ring_doorbell();
            self.rx_hints.push_back(hint);
            let mut buf = self.frame_pool.pop().unwrap_or_default();
            buf.clear();
            buf.extend_from_slice(frame);
            self.rx_frames.push_back(buf);
            self.stats.duplicated += 1;
        }
        Ok(())
    }

    /// Host side: pop the next (frame, completion) pair. In buffer mode
    /// the frame is read back from the posted host-memory buffer (and the
    /// buffer recycled); otherwise from the internal copy queue.
    pub fn receive(&mut self) -> Option<(Vec<u8>, Vec<u8>)> {
        let mut frame = Vec::new();
        let mut cmpt = Vec::new();
        self.receive_into(&mut frame, &mut cmpt)
            .then_some((frame, cmpt))
    }

    /// Zero-allocation [`receive`]: fills caller-owned buffers instead of
    /// returning fresh `Vec`s, so a poll loop recycles its storage across
    /// packets. The frame buffer's old storage is recycled into the
    /// NIC-internal frame pool; both buffers are cleared before filling.
    /// Returns `false` (buffers cleared, contents unspecified) when no
    /// packet is pending.
    ///
    /// [`receive`]: SimNic::receive
    pub fn receive_into(&mut self, frame: &mut Vec<u8>, cmpt: &mut Vec<u8>) -> bool {
        self.receive_into_hinted(frame, cmpt).is_some()
    }

    /// [`receive_into`](SimNic::receive_into) that also surfaces the
    /// steering sideband for the popped completion, so the host plan can
    /// prime its shim memo with the device-computed hash instead of
    /// rerunning Toeplitz. Returns `None` when no packet is pending.
    pub fn receive_into_hinted(
        &mut self,
        frame: &mut Vec<u8>,
        cmpt: &mut Vec<u8>,
    ) -> Option<RxSideband> {
        let (c, seq) = self.cq.consume_with_seq()?;
        cmpt.clear();
        cmpt.extend_from_slice(c);
        // The sideband queue is produced in lockstep with `cq`; the
        // sequence tag comes from the ring slot itself.
        let sideband = RxSideband {
            rss_hint: self.rx_hints.pop_front().unwrap_or_default(),
            seq,
        };
        let ok = if self.rx_pool.enabled {
            self.rx_buffer_read_into(frame)
        } else {
            match self.rx_frames.pop_front() {
                Some(mut buf) => {
                    // Hand the queued buffer to the caller and recycle the
                    // caller's previous storage for a future `deliver`.
                    std::mem::swap(frame, &mut buf);
                    buf.clear();
                    if self.frame_pool.len() < self.cq.capacity() {
                        self.frame_pool.push(buf);
                    }
                    true
                }
                None => false,
            }
        };
        ok.then_some(sideband)
    }

    /// Table-driven completion writeback from enumerated layout `i`.
    fn fast_writeback(&self, i: usize, record: &MetaRecord) -> Vec<u8> {
        let mut buf = Vec::new();
        Self::write_fast(&self.paths[i], record, &mut buf);
        buf
    }

    /// Table-driven writeback into a reusable buffer (associated fn so
    /// the deliver path can borrow `paths`/`rec_scratch`/`wb_scratch`
    /// disjointly).
    fn write_fast(path: &CompletionPath, record: &MetaRecord, buf: &mut Vec<u8>) {
        buf.clear();
        buf.resize(path.size_bytes() as usize, 0);
        for slot in &path.slots {
            if let Some(sem) = slot.semantic {
                if let Some(v) = record.get(sem) {
                    write_bits(buf, slot.offset_bits, slot.width_bits, v);
                }
            }
        }
    }

    /// Reference writeback: interpret the deparser AST.
    fn interpret_writeback(&self, record: &MetaRecord) -> Result<Vec<u8>, NicError> {
        let ctx = self.build_ctx_value();
        let meta = self.build_meta_value(record);
        let mut args = HashMap::new();
        args.insert(self.model.ctx_param.clone(), ctx);
        args.insert(self.model.meta_param.clone(), meta);
        let run = run_deparser(&self.checked, &self.model.deparser, &args)
            .map_err(|e| NicError::BadContract(e.to_string()))?;
        Ok(run.output)
    }

    /// Build the context struct value from the programmed assignment.
    fn build_ctx_value(&self) -> Value {
        let Some(Ty::Struct(sid)) = self.checked.types.lookup(&self.model.ctx_type) else {
            return Value::bits(0, 0);
        };
        let mut v = Value::struct_of(sid, &self.checked.types);
        for (fref, val) in &self.context {
            if fref.path.first().map(String::as_str) != Some(self.model.ctx_param.as_str()) {
                continue;
            }
            let segs: Vec<&str> = fref.path[1..].iter().map(String::as_str).collect();
            if let Some(slot) = v.get_path_mut(&segs) {
                *slot = Value::bits(fref.width, *val);
            }
        }
        v
    }

    /// Build the pipe_meta struct value from an offload record.
    fn build_meta_value(&self, record: &MetaRecord) -> Value {
        let Some(Ty::Struct(sid)) = self.checked.types.lookup(&self.model.meta_type) else {
            return Value::bits(0, 0);
        };
        let mut v = Value::struct_of(sid, &self.checked.types);
        let sinfo = self.checked.types.struct_(sid).clone();
        for f in &sinfo.fields {
            if let Ty::Header(hid) = f.ty {
                let hinfo = self.checked.types.header(hid).clone();
                if let Some(Value::Header { valid, fields, .. }) =
                    v.get_path_mut(&[f.name.as_str()])
                {
                    *valid = true;
                    for hf in &hinfo.fields {
                        if let Some(sem_name) = &hf.semantic {
                            if let Some(id) = self.reg.id(sem_name) {
                                if let Some(val) = record.get(id) {
                                    let masked = if hf.width_bits >= 128 {
                                        val
                                    } else {
                                        val & ((1u128 << hf.width_bits) - 1)
                                    };
                                    fields.insert(hf.name.clone(), masked);
                                }
                            }
                        }
                    }
                }
            }
        }
        v
    }

    /// Run a frame through the offload engine only (no rings): useful for
    /// tests comparing writeback modes.
    pub fn offload_record(&mut self, frame: &[u8]) -> MetaRecord {
        let mut rec = MetaRecord::default();
        self.engine
            .process_program_into(&self.offload_prog, frame, &mut rec);
        rec
    }

    /// Serialize a record under both modes (test/diagnostic helper).
    pub fn writeback_both(&self, record: &MetaRecord) -> Result<(Vec<u8>, Vec<u8>), NicError> {
        let interp = self.interpret_writeback(record)?;
        let fast = match self.active_path {
            Some(i) => self.fast_writeback(i, record),
            None => interp.clone(),
        };
        Ok((interp, fast))
    }
}

// Send audit for the sharded RX engine: a worker thread takes exclusive
// ownership of one queue, so the whole device state must cross threads.
// Everything inside is plain owned data (no `Rc`, no interior
// mutability); this breaks the build if a future field changes that.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SimNic>();
    assert_send::<RxSideband>();
    assert_send::<NicStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use opendesc_ir::names;
    use opendesc_ir::pred::{CmpOp, Cond, FieldRef};
    use opendesc_softnic::testpkt;

    fn asn(pairs: &[(&str, u16, u128)]) -> Assignment {
        pairs
            .iter()
            .map(|(name, w, v)| (FieldRef::new(&["ctx", name], *w), *v))
            .collect()
    }

    fn frame() -> Vec<u8> {
        testpkt::udp4(
            [10, 0, 0, 1],
            [10, 0, 0, 9],
            7777,
            11211,
            b"get k1\r\n",
            Some(0x0064),
        )
    }

    #[test]
    fn e1000e_end_to_end_rss_path() {
        let mut nic = SimNic::new(models::e1000e(), 64).unwrap();
        nic.configure(asn(&[("use_rss", 1, 1)])).unwrap();
        nic.deliver(&frame()).unwrap();
        let (f, cmpt) = nic.receive().unwrap();
        assert_eq!(f, frame());
        assert_eq!(cmpt.len(), 12);
        // First 4 bytes are the RSS hash the softnic reference computes.
        let mut soft = opendesc_softnic::SoftNic::new();
        let want = soft.compute_by_name(names::RSS_HASH, &f).unwrap() as u32;
        assert_eq!(u32::from_be_bytes(cmpt[..4].try_into().unwrap()), want);
        // Base record: pkt_len at bytes 4..6.
        assert_eq!(
            u16::from_be_bytes(cmpt[4..6].try_into().unwrap()) as usize,
            f.len()
        );
    }

    #[test]
    fn e1000e_csum_path_selected_by_context() {
        let mut nic = SimNic::new(models::e1000e(), 64).unwrap();
        nic.configure(asn(&[("use_rss", 1, 0)])).unwrap();
        let p = nic.active_path().unwrap();
        let csum = nic.reg.id(names::IP_CHECKSUM).unwrap();
        assert!(p.prov.contains(&csum));
        nic.deliver(&frame()).unwrap();
        let (_, cmpt) = nic.receive().unwrap();
        // ip_id at 0..2 (testpkt uses 0x1234), csum status 0xFFFF at 2..4.
        assert_eq!(&cmpt[..2], &0x1234u16.to_be_bytes());
        assert_eq!(&cmpt[2..4], &[0xFF, 0xFF]);
    }

    #[test]
    fn fast_and_interpret_writeback_agree() {
        for model in models::catalog() {
            let mut nic = SimNic::new(model.clone(), 16).unwrap();
            // Exercise every solvable path of the model.
            for i in 0..nic.paths.len() {
                let Some(ctx) = nic.paths[i].solve_context() else {
                    continue;
                };
                nic.configure(ctx).unwrap();
                let rec = nic.offload_record(&frame());
                let (interp, fast) = nic.writeback_both(&rec).unwrap();
                assert_eq!(
                    interp, fast,
                    "model {} path {i}: interpreter and fast writeback disagree",
                    model.name
                );
            }
        }
    }

    #[test]
    fn mlx5_mini_cqe_is_8_bytes_full_is_64() {
        let mut nic = SimNic::new(models::mlx5(), 16).unwrap();
        nic.configure(asn(&[("cqe_format", 2, 1)])).unwrap();
        nic.deliver(&frame()).unwrap();
        let (_, mini) = nic.receive().unwrap();
        assert_eq!(mini.len(), 8);
        nic.configure(asn(&[("cqe_format", 2, 0)])).unwrap();
        nic.deliver(&frame()).unwrap();
        let (_, full) = nic.receive().unwrap();
        assert_eq!(full.len(), 64);
    }

    #[test]
    fn mlx5_full_cqe_carries_kvs_hash() {
        let mut nic = SimNic::new(models::mlx5(), 16).unwrap();
        nic.configure(asn(&[("cqe_format", 2, 0)])).unwrap();
        let f = frame();
        nic.deliver(&f).unwrap();
        let (_, cqe) = nic.receive().unwrap();
        let kvs = nic.reg.id(names::KVS_KEY_HASH).unwrap();
        let slot = nic.active_path().unwrap().slot_for(kvs).unwrap().clone();
        let got = opendesc_ir::bits::read_bits(&cqe, slot.offset_bits, slot.width_bits);
        let want = opendesc_softnic::kvs_key_hash(b"get k1\r\n").unwrap() as u128;
        assert_eq!(got, want);
    }

    #[test]
    fn unsolved_context_reports_error() {
        let mut nic = SimNic::new(models::e1000e(), 16).unwrap();
        // A contradictory context: use_rss must be 0 or 1; force a guard
        // mismatch by programming a field no guard matches is impossible
        // here (guards are exhaustive), so instead check a guard-violating
        // assignment still selects some path.
        assert!(nic.configure(asn(&[("use_rss", 1, 1)])).is_ok());
        // Artificial: clear paths to simulate an unsatisfiable context.
        nic.paths.iter_mut().for_each(|p| {
            p.guard = vec![Cond::Cmp {
                field: FieldRef::new(&["ctx", "use_rss"], 1),
                op: CmpOp::Eq,
                value: 7, // impossible for bit<1>
            }];
        });
        assert_eq!(
            nic.configure(asn(&[("use_rss", 1, 1)])),
            Err(NicError::NoPathForContext)
        );
    }

    #[test]
    fn ring_full_counts_drops() {
        let mut nic = SimNic::new(models::e1000_legacy(), 2).unwrap();
        nic.configure(Assignment::new()).unwrap();
        for _ in 0..5 {
            nic.deliver(&frame()).unwrap();
        }
        assert_eq!(nic.stats.completions, 2);
        assert_eq!(nic.stats.dropped_ring_full, 3);
    }

    #[test]
    fn fault_injection_drops_and_corrupts() {
        let mut nic = SimNic::new(models::e1000_legacy(), 1024).unwrap();
        nic.configure(Assignment::new()).unwrap();
        nic.set_faults(
            FaultConfig::builder()
                .drop_chance(0.3)
                .corrupt_chance(0.3)
                .seed(42)
                .build()
                .unwrap(),
        )
        .unwrap();
        for _ in 0..500 {
            nic.deliver(&frame()).unwrap();
        }
        assert!(nic.stats.dropped_faults > 50, "{:?}", nic.stats);
        assert!(nic.stats.corrupted > 50, "{:?}", nic.stats);
        assert_eq!(
            nic.stats.rx_frames + nic.stats.dropped_faults + nic.stats.dropped_ring_full,
            500
        );
    }

    #[test]
    fn fault_config_rejects_out_of_range_probabilities() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let err = FaultConfig::builder().torn_chance(bad).build();
            assert!(
                matches!(err, Err(NicError::BadConfig(_))),
                "torn_chance = {bad} must be rejected"
            );
        }
        let mut nic = SimNic::new(models::e1000_legacy(), 16).unwrap();
        let cfg = FaultConfig {
            drop_chance: 2.0,
            ..FaultConfig::default()
        };
        assert!(matches!(nic.set_faults(cfg), Err(NicError::BadConfig(_))));
        // Builder defaults leave every class off.
        let off = FaultConfig::builder().build().unwrap();
        assert!(!off.any_enabled());
    }

    #[test]
    fn corruption_hits_completion_and_hint_in_lockstep() {
        // Regression for the hint-path hole: a corrupt fault must mangle
        // the sideband hint too, or hint-primed plans silently repair
        // the corrupted completion and the fault is invisible.
        let mut nic = SimNic::new(models::e1000e(), 64).unwrap();
        nic.configure(asn(&[("use_rss", 1, 1)])).unwrap();
        nic.set_faults(
            FaultConfig::builder()
                .corrupt_chance(1.0)
                .seed(7)
                .build()
                .unwrap(),
        )
        .unwrap();
        let f = frame();
        let true_hint = 0xABCD_1234u32;
        nic.deliver_steered(&f, None, Some(true_hint)).unwrap();
        let (mut fr, mut c) = (Vec::new(), Vec::new());
        let side = nic.receive_into_hinted(&mut fr, &mut c).unwrap();
        assert_eq!(nic.stats.corrupted, 1);
        let got = side.rss_hint.expect("hint still delivered, but faulted");
        assert_ne!(got, true_hint, "hint must not survive corruption intact");
        assert_eq!((got ^ true_hint).count_ones(), 1, "single bit flip");
    }

    #[test]
    fn torn_and_truncated_writebacks_lose_the_hint() {
        for (cfg, check_len) in [
            (FaultConfig::builder().torn_chance(1.0), false),
            (FaultConfig::builder().truncate_chance(1.0), true),
        ] {
            let mut nic = SimNic::new(models::e1000e(), 64).unwrap();
            nic.configure(asn(&[("use_rss", 1, 1)])).unwrap();
            let full_len = {
                nic.deliver(&frame()).unwrap();
                let (_, c) = nic.receive().unwrap();
                c.len()
            };
            nic.set_faults(cfg.seed(9).build().unwrap()).unwrap();
            nic.deliver_steered(&frame(), None, Some(0x1111)).unwrap();
            let (mut fr, mut c) = (Vec::new(), Vec::new());
            let side = nic.receive_into_hinted(&mut fr, &mut c).unwrap();
            assert_eq!(side.rss_hint, None, "sideband DMA must be lost");
            if check_len {
                assert!(c.len() < full_len, "truncation must shorten the record");
            } else {
                assert_eq!(c.len(), full_len, "torn writeback keeps the length");
            }
        }
    }

    #[test]
    fn duplicated_completions_reuse_the_sequence_tag() {
        let mut nic = SimNic::new(models::e1000e(), 64).unwrap();
        nic.configure(asn(&[("use_rss", 1, 1)])).unwrap();
        nic.set_faults(
            FaultConfig::builder()
                .duplicate_chance(1.0)
                .seed(11)
                .build()
                .unwrap(),
        )
        .unwrap();
        nic.deliver(&frame()).unwrap();
        assert_eq!(nic.stats.duplicated, 1);
        let (mut fr, mut c) = (Vec::new(), Vec::new());
        let first = nic.receive_into_hinted(&mut fr, &mut c).unwrap();
        let orig = c.clone();
        let second = nic.receive_into_hinted(&mut fr, &mut c).unwrap();
        assert_eq!(first.seq, second.seq, "replay carries the same tag");
        assert_eq!(c, orig, "replay carries the same record");
        assert!(nic.receive_into_hinted(&mut fr, &mut c).is_none());
    }

    #[test]
    fn stale_generation_tags_look_like_a_previous_ring_pass() {
        let mut nic = SimNic::new(models::e1000e(), 16).unwrap();
        nic.configure(asn(&[("use_rss", 1, 1)])).unwrap();
        nic.set_faults(
            FaultConfig::builder()
                .stale_gen_chance(1.0)
                .seed(13)
                .build()
                .unwrap(),
        )
        .unwrap();
        nic.deliver(&frame()).unwrap();
        let (mut fr, mut c) = (Vec::new(), Vec::new());
        let side = nic.receive_into_hinted(&mut fr, &mut c).unwrap();
        assert_eq!(
            side.seq,
            0u64.wrapping_sub(nic.cq.capacity() as u64),
            "tag is one full ring behind"
        );
        assert_eq!(nic.stats.stale_gen, 1);
    }

    #[test]
    fn lost_doorbell_hides_completions_until_queue_reset() {
        let mut nic = SimNic::new(models::e1000e(), 16).unwrap();
        nic.configure(asn(&[("use_rss", 1, 1)])).unwrap();
        nic.set_faults(
            FaultConfig::builder()
                .doorbell_loss_chance(1.0)
                .seed(17)
                .build()
                .unwrap(),
        )
        .unwrap();
        nic.deliver(&frame()).unwrap();
        nic.deliver(&frame()).unwrap();
        assert_eq!(nic.stats.doorbell_lost, 2);
        let (mut fr, mut c) = (Vec::new(), Vec::new());
        assert!(
            nic.receive_into_hinted(&mut fr, &mut c).is_none(),
            "unpublished completions are invisible"
        );
        nic.reset_queue();
        assert_eq!(nic.stats.resets, 1);
        assert!(nic.receive_into_hinted(&mut fr, &mut c).is_some());
        assert!(nic.receive_into_hinted(&mut fr, &mut c).is_some());
    }

    #[test]
    fn queue_hang_swallows_k_deliveries_then_recovers() {
        let mut nic = SimNic::new(models::e1000e(), 64).unwrap();
        nic.configure(asn(&[("use_rss", 1, 1)])).unwrap();
        nic.set_faults(
            FaultConfig::builder()
                .hang(1.0, 3)
                .seed(19)
                .build()
                .unwrap(),
        )
        .unwrap();
        // First delivery trips the hang, the next 3 are swallowed too.
        for _ in 0..4 {
            nic.deliver(&frame()).unwrap();
        }
        assert_eq!(nic.stats.hang_dropped, 4);
        assert_eq!(nic.stats.completions, 0);
        // Reset un-wedges the engine; with hang_chance still 1.0 the
        // next delivery would re-trip, so disable faults first.
        nic.reset_queue();
        nic.set_faults(FaultConfig::default()).unwrap();
        nic.deliver(&frame()).unwrap();
        assert_eq!(nic.stats.completions, 1);
    }

    #[test]
    fn dma_meter_tracks_completion_bytes() {
        let mut nic = SimNic::new(models::mlx5(), 256).unwrap();
        nic.configure(asn(&[("cqe_format", 2, 1)])).unwrap();
        for _ in 0..10 {
            nic.deliver(&frame()).unwrap();
        }
        assert_eq!(nic.dma.bytes, 80, "10 mini-CQEs of 8 bytes");
        assert!(nic.dma.busy_ns > 0.0);
    }

    #[test]
    fn supported_semantics_derived_from_contract() {
        let nic = SimNic::new(models::e1000_legacy(), 16).unwrap();
        let names_: Vec<&str> = nic.supported.iter().map(|s| nic.reg.name(*s)).collect();
        assert!(names_.contains(&"pkt_len"));
        assert!(names_.contains(&"ip_checksum"));
        assert!(names_.contains(&"vlan_tci"));
        assert!(!names_.contains(&"rss_hash"), "legacy e1000 has no RSS");
    }

    #[test]
    fn steered_delivery_matches_plain_and_surfaces_hint() {
        // Same frame through `deliver` and through `deliver_steered` with
        // the steering parse + hash: bit-identical completions, and the
        // hinted receive surfaces the hash only for the steered one.
        let f = frame();
        let parsed = ParsedFrame::parse(&f).unwrap();
        let ip = parsed.ipv4.unwrap();
        let (sp, dp) = parsed.ports().unwrap();
        let h = opendesc_softnic::rss_ipv4_l4(
            &opendesc_softnic::MSFT_RSS_KEY,
            ip.src(),
            ip.dst(),
            sp,
            dp,
        );

        let mut plain = SimNic::new(models::e1000e(), 16).unwrap();
        plain.configure(asn(&[("use_rss", 1, 1)])).unwrap();
        plain.deliver(&f).unwrap();

        let mut steered = SimNic::new(models::e1000e(), 16).unwrap();
        steered.configure(asn(&[("use_rss", 1, 1)])).unwrap();
        steered.deliver_steered(&f, Some(&parsed), Some(h)).unwrap();

        let (mut pf, mut pc) = (Vec::new(), Vec::new());
        let side_plain = plain.receive_into_hinted(&mut pf, &mut pc).unwrap();
        let (mut sf, mut sc) = (Vec::new(), Vec::new());
        let side_steered = steered.receive_into_hinted(&mut sf, &mut sc).unwrap();
        assert_eq!(pc, sc, "completion bytes must not depend on hint path");
        assert_eq!(pf, sf);
        assert_eq!(side_plain.rss_hint, None);
        assert_eq!(side_steered.rss_hint, Some(h));
    }

    #[test]
    fn hint_queue_stays_in_lockstep_across_ring_full_drops() {
        // Ring of 2: third delivery drops at `produce` and must push no
        // sideband, or later hints would pair with the wrong completion.
        let mut nic = SimNic::new(models::e1000e(), 2).unwrap();
        nic.configure(asn(&[("use_rss", 1, 1)])).unwrap();
        let f = frame();
        nic.deliver_steered(&f, None, Some(1)).unwrap();
        nic.deliver_steered(&f, None, Some(2)).unwrap();
        nic.deliver_steered(&f, None, Some(3)).unwrap(); // dropped: full
        assert_eq!(nic.stats.dropped_ring_full, 1);
        let (mut fr, mut c) = (Vec::new(), Vec::new());
        assert_eq!(
            nic.receive_into_hinted(&mut fr, &mut c).unwrap().rss_hint,
            Some(1)
        );
        // Ring freed one slot; deliver another with a fresh hint.
        nic.deliver_steered(&f, None, Some(4)).unwrap();
        assert_eq!(
            nic.receive_into_hinted(&mut fr, &mut c).unwrap().rss_hint,
            Some(2)
        );
        assert_eq!(
            nic.receive_into_hinted(&mut fr, &mut c).unwrap().rss_hint,
            Some(4),
            "dropped frame's hint must not appear"
        );
    }

    #[test]
    fn timestamps_flow_through_mlx5_full_cqe() {
        let mut nic = SimNic::new(models::mlx5(), 16).unwrap();
        nic.configure(asn(&[("cqe_format", 2, 0)])).unwrap();
        nic.deliver(&frame()).unwrap();
        nic.deliver(&frame()).unwrap();
        let ts_sem = nic.reg.id(names::TIMESTAMP).unwrap();
        let slot = nic.active_path().unwrap().slot_for(ts_sem).unwrap().clone();
        let (_, c1) = nic.receive().unwrap();
        let (_, c2) = nic.receive().unwrap();
        let t1 = opendesc_ir::bits::read_bits(&c1, slot.offset_bits, slot.width_bits);
        let t2 = opendesc_ir::bits::read_bits(&c2, slot.offset_bits, slot.width_bits);
        assert!(t2 > t1, "device timestamps must advance: {t1} vs {t2}");
    }
}
