//! RX buffer provisioning: the host posts receive buffers ahead of
//! traffic (the TX-direction twin of the RX descriptor ring in Fig. 2's
//! channel model), and the device consumes one per arriving frame.
//!
//! In buffer mode the simulated DMA is real: the frame bytes are written
//! into the posted host-memory buffer and the host reads them back from
//! there, so over/undersized buffers and exhaustion behave like the real
//! thing (frames are dropped with `rx_no_buffer` when the driver falls
//! behind, truncated never — oversize frames drop too).

use crate::nic::SimNic;
use std::collections::VecDeque;

/// Buffer-mode state attached to a [`SimNic`].
#[derive(Debug, Clone, Default)]
pub struct RxBufferPool {
    /// Posted (addr, capacity) pairs, consumed FIFO.
    free: VecDeque<(u64, usize)>,
    /// Filled (addr, len) pairs awaiting host pickup.
    filled: VecDeque<(u64, usize)>,
    pub enabled: bool,
    /// Frames dropped because no buffer was posted.
    pub no_buffer_drops: u64,
    /// Frames dropped because the next buffer was too small.
    pub oversize_drops: u64,
}

impl SimNic {
    /// Enable buffer mode: from now on, every arriving frame needs a
    /// posted buffer, and received frames are read back from host memory.
    pub fn enable_rx_buffers(&mut self) {
        self.rx_pool.enabled = true;
    }

    /// Post `n` receive buffers of `size` bytes each; returns their
    /// addresses (the driver would recycle these).
    pub fn post_rx_buffers(&mut self, n: usize, size: usize) -> Vec<u64> {
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let addr = self.host_mem.alloc(&vec![0u8; size]);
            self.rx_pool.free.push_back((addr, size));
            addrs.push(addr);
        }
        addrs
    }

    /// Device side: claim a buffer for an arriving frame and DMA the
    /// bytes into it. Returns `false` (drop) when no suitable buffer is
    /// posted. Internal to `deliver`.
    pub(crate) fn rx_buffer_write(&mut self, frame: &[u8]) -> bool {
        if !self.rx_pool.enabled {
            return true;
        }
        let Some(&(addr, cap)) = self.rx_pool.free.front() else {
            self.rx_pool.no_buffer_drops += 1;
            return false;
        };
        if frame.len() > cap {
            // Real NICs either truncate+flag or drop; we drop and count.
            self.rx_pool.oversize_drops += 1;
            return false;
        }
        self.rx_pool.free.pop_front();
        self.host_mem.write(addr, frame);
        self.rx_pool.filled.push_back((addr, frame.len()));
        true
    }

    /// Host side: read the next filled buffer back into `out` (cleared
    /// first) and recycle the posted buffer. Used by `receive_into()` in
    /// buffer mode; allocation-free once `out` has capacity.
    pub(crate) fn rx_buffer_read_into(&mut self, out: &mut Vec<u8>) -> bool {
        let Some((addr, len)) = self.rx_pool.filled.pop_front() else {
            return false;
        };
        let Some(bytes) = self.host_mem.read(addr, len) else {
            return false;
        };
        out.clear();
        out.extend_from_slice(bytes);
        // Recycle the buffer at its original capacity.
        let cap = self.host_mem.buf_capacity(addr).unwrap_or(len);
        self.rx_pool.free.push_back((addr, cap));
        true
    }

    /// Buffers currently posted and free.
    pub fn rx_buffers_free(&self) -> usize {
        self.rx_pool.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use opendesc_ir::Assignment;
    use opendesc_softnic::testpkt;

    fn frame(n: usize) -> Vec<u8> {
        testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 1, 2, &vec![0x42; n], None)
    }

    fn nic() -> SimNic {
        let mut nic = SimNic::new(models::e1000_legacy(), 64).unwrap();
        nic.configure(Assignment::new()).unwrap();
        nic.enable_rx_buffers();
        nic
    }

    #[test]
    fn frames_roundtrip_through_posted_buffers() {
        let mut nic = nic();
        nic.post_rx_buffers(4, 2048);
        assert_eq!(nic.rx_buffers_free(), 4);
        let f = frame(100);
        nic.deliver(&f).unwrap();
        assert_eq!(nic.rx_buffers_free(), 3);
        let (got, _cmpt) = nic.receive().unwrap();
        assert_eq!(got, f, "frame read back from host memory");
        assert_eq!(nic.rx_buffers_free(), 4, "buffer recycled after pickup");
    }

    #[test]
    fn no_posted_buffers_drops_with_stat() {
        let mut nic = nic();
        nic.deliver(&frame(64)).unwrap();
        assert!(nic.receive().is_none());
        assert_eq!(nic.rx_pool.no_buffer_drops, 1);
        assert_eq!(nic.stats.rx_frames, 0);
    }

    #[test]
    fn driver_falling_behind_drops_excess() {
        let mut nic = nic();
        nic.post_rx_buffers(2, 2048);
        for _ in 0..5 {
            nic.deliver(&frame(64)).unwrap();
        }
        assert_eq!(nic.stats.rx_frames, 2);
        assert_eq!(nic.rx_pool.no_buffer_drops, 3);
        // Draining recycles buffers; traffic flows again.
        while nic.receive().is_some() {}
        nic.deliver(&frame(64)).unwrap();
        assert_eq!(nic.stats.rx_frames, 3);
    }

    #[test]
    fn oversize_frames_dropped_not_truncated() {
        let mut nic = nic();
        nic.post_rx_buffers(2, 128);
        nic.deliver(&frame(200)).unwrap(); // 242-byte frame > 128 cap
        assert_eq!(nic.rx_pool.oversize_drops, 1);
        assert_eq!(nic.rx_buffers_free(), 2, "buffer not consumed by a drop");
        nic.deliver(&frame(32)).unwrap();
        let (got, _) = nic.receive().unwrap();
        assert_eq!(got.len(), frame(32).len());
    }

    #[test]
    fn non_buffer_mode_unchanged() {
        let mut nic = SimNic::new(models::e1000_legacy(), 16).unwrap();
        nic.configure(Assignment::new()).unwrap();
        nic.deliver(&frame(64)).unwrap();
        assert!(nic.receive().is_some(), "legacy copy mode still works");
    }
}
