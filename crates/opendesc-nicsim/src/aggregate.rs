//! ASNI-style completion aggregation (paper §5, "an application could
//! use batched descriptors, as ASNI proposes").
//!
//! Instead of one DMA write per completion, the device packs many
//! `(completion, frame)` pairs into a single jumbo buffer and writes it
//! once, amortizing the per-transaction PCIe overhead. The entry format
//! is self-describing so the host can iterate without knowing the
//! contract:
//!
//! ```text
//! jumbo := entry*          entry := u16 cmpt_len | u16 frame_len | cmpt | frame
//! ```
//!
//! The metadata inside each entry is still the contract's completion
//! record, so the same generated accessors apply at a stride.

use crate::dma::{DmaConfig, DmaMeter};

/// Builds jumbo aggregation frames.
#[derive(Debug, Clone)]
pub struct AsniAggregator {
    capacity_bytes: usize,
    buf: Vec<u8>,
    entries: usize,
}

/// A flushed jumbo frame.
#[derive(Debug, Clone, PartialEq)]
pub struct AsniFrame {
    pub bytes: Vec<u8>,
    pub entries: usize,
}

impl AsniAggregator {
    /// An aggregator flushing at `capacity_bytes` (e.g. a 9 KiB jumbo).
    pub fn new(capacity_bytes: usize) -> Self {
        AsniAggregator {
            capacity_bytes,
            buf: Vec::with_capacity(capacity_bytes),
            entries: 0,
        }
    }

    fn entry_size(cmpt: &[u8], frame: &[u8]) -> usize {
        4 + cmpt.len() + frame.len()
    }

    /// Append one pair; returns a flushed jumbo when the buffer would
    /// overflow (the new pair starts the next jumbo).
    pub fn push(&mut self, cmpt: &[u8], frame: &[u8]) -> Option<AsniFrame> {
        debug_assert!(cmpt.len() <= u16::MAX as usize && frame.len() <= u16::MAX as usize);
        let need = Self::entry_size(cmpt, frame);
        let flushed = if !self.buf.is_empty() && self.buf.len() + need > self.capacity_bytes {
            self.flush()
        } else {
            None
        };
        self.buf
            .extend_from_slice(&(cmpt.len() as u16).to_be_bytes());
        self.buf
            .extend_from_slice(&(frame.len() as u16).to_be_bytes());
        self.buf.extend_from_slice(cmpt);
        self.buf.extend_from_slice(frame);
        self.entries += 1;
        flushed
    }

    /// Emit whatever is pending.
    pub fn flush(&mut self) -> Option<AsniFrame> {
        if self.buf.is_empty() {
            return None;
        }
        let bytes = std::mem::take(&mut self.buf);
        let entries = std::mem::take(&mut self.entries);
        Some(AsniFrame { bytes, entries })
    }

    /// Pending entry count.
    pub fn pending(&self) -> usize {
        self.entries
    }
}

/// Iterate `(completion, frame)` pairs out of a jumbo buffer.
pub struct AsniIter<'a> {
    bytes: &'a [u8],
}

impl<'a> AsniIter<'a> {
    pub fn new(jumbo: &'a [u8]) -> Self {
        AsniIter { bytes: jumbo }
    }
}

impl<'a> Iterator for AsniIter<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.bytes.len() < 4 {
            return None;
        }
        let cl = u16::from_be_bytes([self.bytes[0], self.bytes[1]]) as usize;
        let fl = u16::from_be_bytes([self.bytes[2], self.bytes[3]]) as usize;
        let total = 4 + cl + fl;
        if self.bytes.len() < total {
            return None; // truncated jumbo: stop rather than panic
        }
        let cmpt = &self.bytes[4..4 + cl];
        let frame = &self.bytes[4 + cl..total];
        self.bytes = &self.bytes[total..];
        Some((cmpt, frame))
    }
}

/// Model comparison: DMA cost of delivering `n` completions of
/// `cmpt_bytes` + frames of `frame_bytes`, individually vs aggregated
/// into jumbos of `jumbo_bytes`. Returns `(individual_ns, aggregated_ns)`.
pub fn dma_cost_comparison(
    cfg: &DmaConfig,
    n: u32,
    cmpt_bytes: u32,
    frame_bytes: u32,
    jumbo_bytes: u32,
) -> (f64, f64) {
    let mut individual = DmaMeter::default();
    for _ in 0..n {
        individual.record(cfg, cmpt_bytes);
        individual.record(cfg, frame_bytes);
    }
    let mut aggregated = DmaMeter::default();
    let entry = 4 + cmpt_bytes + frame_bytes;
    let per_jumbo = (jumbo_bytes / entry).max(1);
    let mut left = n;
    while left > 0 {
        let batch = left.min(per_jumbo);
        aggregated.record(cfg, batch * entry);
        left -= batch;
    }
    (individual.busy_ns, aggregated.busy_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_single_entry() {
        let mut agg = AsniAggregator::new(256);
        assert!(agg.push(&[1, 2, 3], b"frame").is_none());
        let jumbo = agg.flush().unwrap();
        assert_eq!(jumbo.entries, 1);
        let pairs: Vec<_> = AsniIter::new(&jumbo.bytes).collect();
        assert_eq!(pairs, vec![(&[1u8, 2, 3][..], &b"frame"[..])]);
    }

    #[test]
    fn flush_on_capacity() {
        let mut agg = AsniAggregator::new(32);
        // Each entry: 4 + 4 + 8 = 16 bytes → two fit, third flushes.
        assert!(agg.push(&[0; 4], &[1; 8]).is_none());
        assert!(agg.push(&[0; 4], &[2; 8]).is_none());
        let flushed = agg.push(&[0; 4], &[3; 8]).expect("third push flushes");
        assert_eq!(flushed.entries, 2);
        assert_eq!(agg.pending(), 1);
        let rest = agg.flush().unwrap();
        assert_eq!(rest.entries, 1);
        assert!(agg.flush().is_none());
    }

    #[test]
    fn truncated_jumbo_stops_cleanly() {
        let mut agg = AsniAggregator::new(256);
        agg.push(&[9; 8], &[7; 32]);
        let jumbo = agg.flush().unwrap();
        let cut = &jumbo.bytes[..jumbo.bytes.len() - 5];
        assert_eq!(AsniIter::new(cut).count(), 0);
    }

    #[test]
    fn aggregation_saves_dma_time() {
        let cfg = DmaConfig::default();
        let (ind, agg) = dma_cost_comparison(&cfg, 1000, 8, 60, 9000);
        assert!(
            agg < ind / 3.0,
            "aggregation must amortize per-txn overhead: {agg} vs {ind}"
        );
    }

    #[test]
    fn empty_entries_roundtrip() {
        let mut agg = AsniAggregator::new(64);
        agg.push(&[], &[]);
        let j = agg.flush().unwrap();
        let pairs: Vec<_> = AsniIter::new(&j.bytes).collect();
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].0.is_empty() && pairs[0].1.is_empty());
    }

    proptest! {
        #[test]
        fn roundtrip_random_batches(
            pairs in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..32),
                 proptest::collection::vec(any::<u8>(), 0..128)),
                1..40
            ),
            cap in 64usize..2048,
        ) {
            let mut agg = AsniAggregator::new(cap);
            let mut jumbos = Vec::new();
            for (c, f) in &pairs {
                if let Some(j) = agg.push(c, f) {
                    jumbos.push(j);
                }
            }
            if let Some(j) = agg.flush() {
                jumbos.push(j);
            }
            let mut seen = Vec::new();
            for j in &jumbos {
                for (c, f) in AsniIter::new(&j.bytes) {
                    seen.push((c.to_vec(), f.to_vec()));
                }
            }
            prop_assert_eq!(seen, pairs, "order-preserving lossless roundtrip");
        }
    }
}
