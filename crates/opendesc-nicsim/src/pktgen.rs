//! Workload generator: deterministic synthetic traffic for the
//! experiments (stand-in for the testbed traffic of the paper's setting).

use opendesc_softnic::testpkt;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Transport mix of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transport {
    Udp,
    Tcp,
    /// UDP carrying memcached-style `get <key>` requests (the Fig. 1
    /// KVS scenario).
    KvsGet,
}

/// Fraction of total traffic each injected elephant flow carries. Two
/// elephants under the default config thus pin ~16% of all frames onto
/// (at most) two RSS buckets — the realistic heavy-hitter case RETA
/// rebalancing has to survive.
pub const ELEPHANT_SHARE: f64 = 0.08;

/// Workload description.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Number of distinct flows (5-tuples).
    pub flows: u32,
    /// Payload size range in bytes (inclusive).
    pub payload: (usize, usize),
    pub transport: Transport,
    /// Fraction \[0,1\] of frames carrying an 802.1Q tag.
    pub vlan_fraction: f64,
    pub seed: u64,
    /// Zipf skew exponent for flow popularity. `None` keeps the
    /// historical uniform flow choice; `Some(α)` makes flow `k` (0-based
    /// rank) carry probability ∝ 1/(k+1)^α — real traffic is α ≈ 0.9–1.3.
    pub zipf_alpha: Option<f64>,
    /// Injected elephant flows on top of the base distribution. Each
    /// elephant is an *extra* flow (id ≥ `flows`) carrying a fixed
    /// [`ELEPHANT_SHARE`] of total traffic.
    pub elephants: u32,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            flows: 64,
            payload: (18, 1024),
            transport: Transport::Udp,
            vlan_fraction: 0.5,
            seed: 7,
            zipf_alpha: None,
            elephants: 0,
        }
    }
}

impl Workload {
    /// 64-byte-frame stress workload (min-size packets, the classic
    /// pps-bound case).
    pub fn min_size(flows: u32) -> Self {
        Workload {
            flows,
            payload: (18, 18), // 18B payload → 64B frame with UDP
            transport: Transport::Udp,
            vlan_fraction: 0.0,
            seed: 7,
            ..Workload::default()
        }
    }

    /// KVS request workload.
    pub fn kvs(flows: u32) -> Self {
        Workload {
            flows,
            payload: (0, 0), // ignored; keys drive size
            transport: Transport::KvsGet,
            vlan_fraction: 0.0,
            seed: 7,
            ..Workload::default()
        }
    }

    /// Skewed min-size workload: Zipf flow popularity plus injected
    /// elephants — the E18 adaptive-steering traffic.
    pub fn zipf(flows: u32, alpha: f64, elephants: u32) -> Self {
        Workload {
            zipf_alpha: Some(alpha),
            elephants,
            ..Workload::min_size(flows)
        }
    }

    /// Total probability mass the injected elephants take.
    fn elephant_mass(&self) -> f64 {
        (self.elephants as f64 * ELEPHANT_SHARE).min(0.5)
    }
}

/// Streaming frame generator.
pub struct PktGen {
    wl: Workload,
    rng: SmallRng,
    emitted: u64,
    /// Cumulative Zipf distribution over the base flows (empty when the
    /// workload is uniform): `zipf_cdf[k]` = P(flow rank ≤ k).
    zipf_cdf: Vec<f64>,
}

impl PktGen {
    pub fn new(wl: Workload) -> Self {
        let rng = SmallRng::seed_from_u64(wl.seed);
        let zipf_cdf = match wl.zipf_alpha {
            Some(alpha) => {
                let mut acc = 0.0f64;
                let mut cdf: Vec<f64> = (0..wl.flows)
                    .map(|k| {
                        acc += 1.0 / ((k + 1) as f64).powf(alpha);
                        acc
                    })
                    .collect();
                for c in &mut cdf {
                    *c /= acc;
                }
                if let Some(last) = cdf.last_mut() {
                    *last = 1.0; // seal float drift; sampling never overruns
                }
                cdf
            }
            None => Vec::new(),
        };
        PktGen {
            wl,
            rng,
            emitted: 0,
            zipf_cdf,
        }
    }

    /// Number of frames generated so far.
    pub fn count(&self) -> u64 {
        self.emitted
    }

    /// Pick the next frame's flow id: elephants first (fixed share of
    /// the unit interval each), then the base distribution — Zipf by
    /// rank when `zipf_alpha` is set, uniform otherwise. One RNG draw
    /// either way, so skewed streams stay seed-deterministic and
    /// regenerable per worker.
    fn next_flow(&mut self) -> u32 {
        if self.wl.zipf_alpha.is_none() && self.wl.elephants == 0 {
            return self.rng.random_range(0..self.wl.flows);
        }
        let r = self.rng.random::<f64>();
        let emass = self.wl.elephant_mass();
        if r < emass {
            // Elephant ids live above the base flow range.
            let share = emass / self.wl.elephants as f64;
            return self.wl.flows + ((r / share) as u32).min(self.wl.elephants - 1);
        }
        let u = (r - emass) / (1.0 - emass);
        if self.zipf_cdf.is_empty() {
            ((u * self.wl.flows as f64) as u32).min(self.wl.flows - 1)
        } else {
            self.zipf_cdf
                .partition_point(|&c| c < u)
                .min(self.wl.flows as usize - 1) as u32
        }
    }

    /// Generate the next frame.
    pub fn next_frame(&mut self) -> Vec<u8> {
        self.emitted += 1;
        let flow = self.next_flow();
        // Derive a stable 5-tuple from the flow id.
        let src_ip = [10, 0, (flow >> 8) as u8, flow as u8];
        let dst_ip = [10, 1, 0, 1];
        let src_port = 10_000 + (flow % 50_000) as u16;
        let vlan = if self.rng.random::<f64>() < self.wl.vlan_fraction {
            Some(0x2000 | (flow as u16 & 0x0FFF))
        } else {
            None
        };
        match self.wl.transport {
            Transport::Udp => {
                let len = self.rng.random_range(self.wl.payload.0..=self.wl.payload.1);
                let payload = self.payload_bytes(len);
                testpkt::udp4(src_ip, dst_ip, src_port, 9000, &payload, vlan)
            }
            Transport::Tcp => {
                let len = self.rng.random_range(self.wl.payload.0..=self.wl.payload.1);
                let payload = self.payload_bytes(len);
                testpkt::tcp4(src_ip, dst_ip, src_port, 443, &payload, vlan)
            }
            Transport::KvsGet => {
                let key_id = self.rng.random_range(0..10_000u32);
                let payload = testpkt::kvs_get_payload(&format!("key:{key_id}"));
                testpkt::udp4(src_ip, dst_ip, src_port, 11211, &payload, vlan)
            }
        }
    }

    /// Generate a batch of frames.
    pub fn batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.next_frame()).collect()
    }

    fn payload_bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.rng.random()).collect()
    }
}

/// One frame as it arrives at a queue: the bytes plus what the steering
/// stage learned on the way (the Toeplitz hash, when RSS steered it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFrame {
    pub bytes: Vec<u8>,
    pub rss: Option<u32>,
}

/// Per-queue frame pools for the sharded RX engine, with no global lock:
/// generation is deterministic per seed and steering is a pure function
/// of (stream position, bytes), so each worker can regenerate the full
/// stream independently and keep only its own queue's frames
/// ([`ShardedPktGen::shard_for`]). The embarrassingly-parallel split is
/// bit-identical to the sequential one ([`ShardedPktGen::generate`]) —
/// a property test pins this.
pub struct ShardedPktGen {
    shards: Vec<Vec<ShardFrame>>,
}

impl ShardedPktGen {
    /// Sequentially generate `total` frames and split them across queues
    /// exactly as the device's steering stage would.
    pub fn generate(wl: Workload, steerer: &crate::multiqueue::Steerer, total: usize) -> Self {
        let mut shards: Vec<Vec<ShardFrame>> = (0..steerer.queues()).map(|_| Vec::new()).collect();
        let mut gen = PktGen::new(wl);
        for i in 0..total {
            let bytes = gen.next_frame();
            // The verdict's parse borrows the frame; keep only the copy-
            // able parts before moving the bytes into the shard.
            let (queue, rss) = {
                let v = steerer.steer(i as u64, &bytes);
                (v.queue, v.rss)
            };
            shards[queue].push(ShardFrame { bytes, rss });
        }
        ShardedPktGen { shards }
    }

    /// Worker-local variant: regenerate the stream and keep only queue
    /// `q`'s frames. Every worker calls this with its own queue index —
    /// no shared generator, no lock, same frames as [`generate`].
    ///
    /// [`generate`]: ShardedPktGen::generate
    pub fn shard_for(
        wl: &Workload,
        steerer: &crate::multiqueue::Steerer,
        total: usize,
        q: usize,
    ) -> Vec<ShardFrame> {
        let mut out = Vec::new();
        let mut gen = PktGen::new(wl.clone());
        for i in 0..total {
            let bytes = gen.next_frame();
            let (queue, rss) = {
                let v = steerer.steer(i as u64, &bytes);
                (v.queue, v.rss)
            };
            if queue == q {
                out.push(ShardFrame { bytes, rss });
            }
        }
        out
    }

    /// Pool for queue `q`.
    pub fn pool(&self, q: usize) -> &[ShardFrame] {
        &self.shards[q]
    }

    /// Tear into per-queue pools (one handed to each worker).
    pub fn into_pools(self) -> Vec<Vec<ShardFrame>> {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opendesc_softnic::wire::ParsedFrame;
    use std::collections::HashSet;

    #[test]
    fn deterministic_per_seed() {
        let mut a = PktGen::new(Workload::default());
        let mut b = PktGen::new(Workload::default());
        for _ in 0..50 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
        let mut c = PktGen::new(Workload {
            seed: 99,
            ..Workload::default()
        });
        assert_ne!(a.next_frame(), c.next_frame());
    }

    #[test]
    fn frames_parse_and_respect_flow_count() {
        let mut g = PktGen::new(Workload {
            flows: 8,
            ..Workload::default()
        });
        let mut tuples = HashSet::new();
        for _ in 0..400 {
            let f = g.next_frame();
            let p = ParsedFrame::parse(&f).expect("generated frames parse");
            let ip = p.ipv4.expect("ipv4 present");
            tuples.insert((ip.src(), p.ports().unwrap().0));
        }
        assert_eq!(tuples.len(), 8, "exactly `flows` distinct 5-tuples");
    }

    #[test]
    fn min_size_workload_yields_64b_frames() {
        let mut g = PktGen::new(Workload::min_size(4));
        for _ in 0..20 {
            assert_eq!(
                g.next_frame().len(),
                60,
                "14 eth + 20 ip + 8 udp + 18 payload"
            );
        }
    }

    #[test]
    fn kvs_workload_carries_get_requests() {
        let mut g = PktGen::new(Workload::kvs(4));
        for _ in 0..20 {
            let f = g.next_frame();
            let p = ParsedFrame::parse(&f).unwrap();
            let pl = p.l4_payload().unwrap();
            assert!(
                pl.starts_with(b"get key:"),
                "{:?}",
                String::from_utf8_lossy(pl)
            );
            assert_eq!(p.ports().unwrap().1, 11211);
        }
    }

    #[test]
    fn sharded_generation_matches_worker_local_regeneration() {
        use crate::multiqueue::{SteerPolicy, Steerer};
        for policy in [
            SteerPolicy::Rss,
            SteerPolicy::RoundRobin,
            SteerPolicy::DstPort {
                table: vec![(9000, 2)],
                default: 1,
            },
        ] {
            let st = Steerer::new(policy, 4);
            let wl = Workload {
                flows: 16,
                ..Workload::default()
            };
            let seq = ShardedPktGen::generate(wl.clone(), &st, 200).into_pools();
            assert_eq!(seq.iter().map(Vec::len).sum::<usize>(), 200);
            for (q, pool) in seq.iter().enumerate() {
                let local = ShardedPktGen::shard_for(&wl, &st, 200, q);
                assert_eq!(pool, &local, "queue {q}: lock-free split must match");
            }
        }
    }

    #[test]
    fn rss_shards_carry_the_steering_hash() {
        use crate::multiqueue::{SteerPolicy, Steerer};
        let st = Steerer::new(SteerPolicy::Rss, 2);
        let pools = ShardedPktGen::generate(Workload::default(), &st, 50).into_pools();
        for pool in &pools {
            for sf in pool {
                assert!(sf.rss.is_some(), "IPv4 traffic under RSS carries a hash");
            }
        }
    }

    #[test]
    fn zipf_skew_orders_flows_by_rank_and_stays_deterministic() {
        let wl = Workload::zipf(32, 1.1, 0);
        let mut counts = vec![0u64; 32];
        let mut g = PktGen::new(wl.clone());
        for _ in 0..4000 {
            let f = g.next_frame();
            let p = ParsedFrame::parse(&f).unwrap();
            // Flow id round-trips through the src port derivation.
            let flow = (p.ports().unwrap().0 - 10_000) as usize;
            counts[flow] += 1;
        }
        assert!(
            counts[0] > 3 * counts[8] && counts[0] > 6 * counts[31],
            "rank-0 flow dominates the tail: {counts:?}"
        );
        assert!(counts.iter().all(|&c| c > 0), "tail flows still appear");
        let mut a = PktGen::new(wl.clone());
        let mut b = PktGen::new(wl);
        for _ in 0..100 {
            assert_eq!(
                a.next_frame(),
                b.next_frame(),
                "skewed streams replay per seed"
            );
        }
    }

    #[test]
    fn elephants_carry_their_share() {
        let wl = Workload {
            elephants: 2,
            ..Workload::min_size(16)
        };
        let mut g = PktGen::new(wl);
        let (mut eleph, total) = (0u64, 5000u64);
        for _ in 0..total {
            let f = g.next_frame();
            let p = ParsedFrame::parse(&f).unwrap();
            let flow = (p.ports().unwrap().0 - 10_000) as u32;
            if flow >= 16 {
                assert!(flow < 18, "elephant ids sit just above the base range");
                eleph += 1;
            }
        }
        let share = eleph as f64 / total as f64;
        let want = 2.0 * ELEPHANT_SHARE;
        assert!(
            (share - want).abs() < 0.03,
            "elephant share {share} ≉ {want}"
        );
    }

    #[test]
    fn zipf_sharded_generation_matches_worker_local_regeneration() {
        use crate::multiqueue::{SteerPolicy, Steerer};
        let st = Steerer::new(SteerPolicy::Rss, 8);
        let wl = Workload::zipf(64, 1.3, 2);
        let seq = ShardedPktGen::generate(wl.clone(), &st, 300).into_pools();
        assert_eq!(seq.iter().map(Vec::len).sum::<usize>(), 300);
        for (q, pool) in seq.iter().enumerate() {
            let local = ShardedPktGen::shard_for(&wl, &st, 300, q);
            assert_eq!(pool, &local, "queue {q}: skewed lock-free split must match");
        }
    }

    #[test]
    fn vlan_fraction_respected() {
        let mut g = PktGen::new(Workload {
            vlan_fraction: 1.0,
            ..Workload::default()
        });
        for _ in 0..20 {
            let f = g.next_frame();
            assert!(ParsedFrame::parse(&f).unwrap().vlan_tci.is_some());
        }
        let mut g = PktGen::new(Workload {
            vlan_fraction: 0.0,
            ..Workload::default()
        });
        for _ in 0..20 {
            let f = g.next_frame();
            assert!(ParsedFrame::parse(&f).unwrap().vlan_tci.is_none());
        }
    }
}
