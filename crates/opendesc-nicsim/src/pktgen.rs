//! Workload generator: deterministic synthetic traffic for the
//! experiments (stand-in for the testbed traffic of the paper's setting).

use opendesc_softnic::testpkt;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Transport mix of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transport {
    Udp,
    Tcp,
    /// UDP carrying memcached-style `get <key>` requests (the Fig. 1
    /// KVS scenario).
    KvsGet,
}

/// Workload description.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Number of distinct flows (5-tuples).
    pub flows: u32,
    /// Payload size range in bytes (inclusive).
    pub payload: (usize, usize),
    pub transport: Transport,
    /// Fraction \[0,1\] of frames carrying an 802.1Q tag.
    pub vlan_fraction: f64,
    pub seed: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            flows: 64,
            payload: (18, 1024),
            transport: Transport::Udp,
            vlan_fraction: 0.5,
            seed: 7,
        }
    }
}

impl Workload {
    /// 64-byte-frame stress workload (min-size packets, the classic
    /// pps-bound case).
    pub fn min_size(flows: u32) -> Self {
        Workload {
            flows,
            payload: (18, 18), // 18B payload → 64B frame with UDP
            transport: Transport::Udp,
            vlan_fraction: 0.0,
            seed: 7,
        }
    }

    /// KVS request workload.
    pub fn kvs(flows: u32) -> Self {
        Workload {
            flows,
            payload: (0, 0), // ignored; keys drive size
            transport: Transport::KvsGet,
            vlan_fraction: 0.0,
            seed: 7,
        }
    }
}

/// Streaming frame generator.
pub struct PktGen {
    wl: Workload,
    rng: SmallRng,
    emitted: u64,
}

impl PktGen {
    pub fn new(wl: Workload) -> Self {
        let rng = SmallRng::seed_from_u64(wl.seed);
        PktGen {
            wl,
            rng,
            emitted: 0,
        }
    }

    /// Number of frames generated so far.
    pub fn count(&self) -> u64 {
        self.emitted
    }

    /// Generate the next frame.
    pub fn next_frame(&mut self) -> Vec<u8> {
        self.emitted += 1;
        let flow = self.rng.random_range(0..self.wl.flows);
        // Derive a stable 5-tuple from the flow id.
        let src_ip = [10, 0, (flow >> 8) as u8, flow as u8];
        let dst_ip = [10, 1, 0, 1];
        let src_port = 10_000 + (flow % 50_000) as u16;
        let vlan = if self.rng.random::<f64>() < self.wl.vlan_fraction {
            Some(0x2000 | (flow as u16 & 0x0FFF))
        } else {
            None
        };
        match self.wl.transport {
            Transport::Udp => {
                let len = self.rng.random_range(self.wl.payload.0..=self.wl.payload.1);
                let payload = self.payload_bytes(len);
                testpkt::udp4(src_ip, dst_ip, src_port, 9000, &payload, vlan)
            }
            Transport::Tcp => {
                let len = self.rng.random_range(self.wl.payload.0..=self.wl.payload.1);
                let payload = self.payload_bytes(len);
                testpkt::tcp4(src_ip, dst_ip, src_port, 443, &payload, vlan)
            }
            Transport::KvsGet => {
                let key_id = self.rng.random_range(0..10_000u32);
                let payload = testpkt::kvs_get_payload(&format!("key:{key_id}"));
                testpkt::udp4(src_ip, dst_ip, src_port, 11211, &payload, vlan)
            }
        }
    }

    /// Generate a batch of frames.
    pub fn batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.next_frame()).collect()
    }

    fn payload_bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.rng.random()).collect()
    }
}

/// One frame as it arrives at a queue: the bytes plus what the steering
/// stage learned on the way (the Toeplitz hash, when RSS steered it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFrame {
    pub bytes: Vec<u8>,
    pub rss: Option<u32>,
}

/// Per-queue frame pools for the sharded RX engine, with no global lock:
/// generation is deterministic per seed and steering is a pure function
/// of (stream position, bytes), so each worker can regenerate the full
/// stream independently and keep only its own queue's frames
/// ([`ShardedPktGen::shard_for`]). The embarrassingly-parallel split is
/// bit-identical to the sequential one ([`ShardedPktGen::generate`]) —
/// a property test pins this.
pub struct ShardedPktGen {
    shards: Vec<Vec<ShardFrame>>,
}

impl ShardedPktGen {
    /// Sequentially generate `total` frames and split them across queues
    /// exactly as the device's steering stage would.
    pub fn generate(wl: Workload, steerer: &crate::multiqueue::Steerer, total: usize) -> Self {
        let mut shards: Vec<Vec<ShardFrame>> = (0..steerer.queues()).map(|_| Vec::new()).collect();
        let mut gen = PktGen::new(wl);
        for i in 0..total {
            let bytes = gen.next_frame();
            // The verdict's parse borrows the frame; keep only the copy-
            // able parts before moving the bytes into the shard.
            let (queue, rss) = {
                let v = steerer.steer(i as u64, &bytes);
                (v.queue, v.rss)
            };
            shards[queue].push(ShardFrame { bytes, rss });
        }
        ShardedPktGen { shards }
    }

    /// Worker-local variant: regenerate the stream and keep only queue
    /// `q`'s frames. Every worker calls this with its own queue index —
    /// no shared generator, no lock, same frames as [`generate`].
    ///
    /// [`generate`]: ShardedPktGen::generate
    pub fn shard_for(
        wl: &Workload,
        steerer: &crate::multiqueue::Steerer,
        total: usize,
        q: usize,
    ) -> Vec<ShardFrame> {
        let mut out = Vec::new();
        let mut gen = PktGen::new(wl.clone());
        for i in 0..total {
            let bytes = gen.next_frame();
            let (queue, rss) = {
                let v = steerer.steer(i as u64, &bytes);
                (v.queue, v.rss)
            };
            if queue == q {
                out.push(ShardFrame { bytes, rss });
            }
        }
        out
    }

    /// Pool for queue `q`.
    pub fn pool(&self, q: usize) -> &[ShardFrame] {
        &self.shards[q]
    }

    /// Tear into per-queue pools (one handed to each worker).
    pub fn into_pools(self) -> Vec<Vec<ShardFrame>> {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opendesc_softnic::wire::ParsedFrame;
    use std::collections::HashSet;

    #[test]
    fn deterministic_per_seed() {
        let mut a = PktGen::new(Workload::default());
        let mut b = PktGen::new(Workload::default());
        for _ in 0..50 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
        let mut c = PktGen::new(Workload {
            seed: 99,
            ..Workload::default()
        });
        assert_ne!(a.next_frame(), c.next_frame());
    }

    #[test]
    fn frames_parse_and_respect_flow_count() {
        let mut g = PktGen::new(Workload {
            flows: 8,
            ..Workload::default()
        });
        let mut tuples = HashSet::new();
        for _ in 0..400 {
            let f = g.next_frame();
            let p = ParsedFrame::parse(&f).expect("generated frames parse");
            let ip = p.ipv4.expect("ipv4 present");
            tuples.insert((ip.src(), p.ports().unwrap().0));
        }
        assert_eq!(tuples.len(), 8, "exactly `flows` distinct 5-tuples");
    }

    #[test]
    fn min_size_workload_yields_64b_frames() {
        let mut g = PktGen::new(Workload::min_size(4));
        for _ in 0..20 {
            assert_eq!(
                g.next_frame().len(),
                60,
                "14 eth + 20 ip + 8 udp + 18 payload"
            );
        }
    }

    #[test]
    fn kvs_workload_carries_get_requests() {
        let mut g = PktGen::new(Workload::kvs(4));
        for _ in 0..20 {
            let f = g.next_frame();
            let p = ParsedFrame::parse(&f).unwrap();
            let pl = p.l4_payload().unwrap();
            assert!(
                pl.starts_with(b"get key:"),
                "{:?}",
                String::from_utf8_lossy(pl)
            );
            assert_eq!(p.ports().unwrap().1, 11211);
        }
    }

    #[test]
    fn sharded_generation_matches_worker_local_regeneration() {
        use crate::multiqueue::{SteerPolicy, Steerer};
        for policy in [
            SteerPolicy::Rss,
            SteerPolicy::RoundRobin,
            SteerPolicy::DstPort {
                table: vec![(9000, 2)],
                default: 1,
            },
        ] {
            let st = Steerer::new(policy, 4);
            let wl = Workload {
                flows: 16,
                ..Workload::default()
            };
            let seq = ShardedPktGen::generate(wl.clone(), &st, 200).into_pools();
            assert_eq!(seq.iter().map(Vec::len).sum::<usize>(), 200);
            for (q, pool) in seq.iter().enumerate() {
                let local = ShardedPktGen::shard_for(&wl, &st, 200, q);
                assert_eq!(pool, &local, "queue {q}: lock-free split must match");
            }
        }
    }

    #[test]
    fn rss_shards_carry_the_steering_hash() {
        use crate::multiqueue::{SteerPolicy, Steerer};
        let st = Steerer::new(SteerPolicy::Rss, 2);
        let pools = ShardedPktGen::generate(Workload::default(), &st, 50).into_pools();
        for pool in &pools {
            for sf in pool {
                assert!(sf.rss.is_some(), "IPv4 traffic under RSS carries a hash");
            }
        }
    }

    #[test]
    fn vlan_fraction_respected() {
        let mut g = PktGen::new(Workload {
            vlan_fraction: 1.0,
            ..Workload::default()
        });
        for _ in 0..20 {
            let f = g.next_frame();
            assert!(ParsedFrame::parse(&f).unwrap().vlan_tci.is_some());
        }
        let mut g = PktGen::new(Workload {
            vlan_fraction: 0.0,
            ..Workload::default()
        });
        for _ in 0..20 {
            let f = g.next_frame();
            assert!(ParsedFrame::parse(&f).unwrap().vlan_tci.is_none());
        }
    }
}
