//! NIC models: the device contracts the simulator ships with.
//!
//! Each model is a P4 OpenDesc contract plus the naming glue the simulator
//! needs (which control is the completion deparser, which parameter is
//! the context, ...). The families mirror the paper's Fig. 1
//! spectrum:
//!
//! * `e1000-legacy` — one fixed completion layout (length, checksum,
//!   status, VLAN), the "single descriptor" class;
//! * `e1000e` — the Fig. 6 running example: a context bit selects RSS
//!   *or* ip_id+checksum, never both;
//! * `ixgbe` — 16 B advanced writeback: RSS or flow-director tag in
//!   dword 0, plus packet type, lengths, VLAN and IP checksum status;
//! * `mlx5` — 64 B full CQE (timestamp, RSS, flow tag, checksums, a
//!   programmable metadata slot) or 8 B compressed mini-CQEs carrying
//!   either RSS or checksum;
//! * `qdma` — fully programmable: completion layouts are generated from
//!   the application's own field list (see [`qdma_contract`]).

/// A NIC model: contract text plus simulator glue.
#[derive(Debug, Clone)]
pub struct NicModel {
    pub name: String,
    pub description: String,
    pub p4_source: String,
    /// Name of the completion-deparser control.
    pub deparser: String,
    /// Name of the TX descriptor parser, if the model defines one.
    pub desc_parser: Option<String>,
    /// Deparser parameter names.
    pub ctx_param: String,
    pub meta_param: String,
    /// Context/meta struct type names.
    pub ctx_type: String,
    pub meta_type: String,
    /// Completion-ring slot size (the largest layout, bytes).
    pub completion_slot_bytes: usize,
}

/// The e1000-legacy contract: a single unconditional 8-byte writeback.
pub fn e1000_legacy() -> NicModel {
    let p4 = r#"
// Intel e1000 legacy receive descriptor writeback (8 bytes).
header e1000_wb_t {
    @semantic("pkt_len")     bit<16> length;
    @semantic("ip_checksum") bit<16> csum;
    @semantic("rx_status")   bit<8>  status;
    bit<8>  errors;
    @semantic("vlan_tci")    bit<16> special;
}
struct e1000_ctx_t { bit<1> reserved; }
struct e1000_meta_t { e1000_wb_t wb; }

control CmptDeparser(cmpt_out cmpt, in e1000_ctx_t ctx, in e1000_meta_t pipe_meta) {
    apply {
        cmpt.emit(pipe_meta.wb);
    }
}

// Legacy transmit descriptor (16 bytes).
header e1000_tx_t {
    @semantic("buf_addr") bit<64> buffer_addr;
    @semantic("buf_len")  bit<16> length;
    bit<8>  cso;
    @semantic("tx_ip_csum_offload") bit<8> cmd;
    bit<8>  status;
    bit<8>  css;
    @semantic("tx_vlan_insert") bit<16> special;
}
struct e1000_desc_t { e1000_tx_t base; }
struct e1000_h2c_ctx_t { bit<1> reserved; }

parser DescParser(desc_in d, in e1000_h2c_ctx_t h2c_ctx, out e1000_desc_t desc_hdr) {
    state start {
        d.extract(desc_hdr.base);
        transition accept;
    }
}
"#;
    NicModel {
        name: "e1000-legacy".into(),
        description: "fixed-function, one 8B writeback layout".into(),
        p4_source: p4.into(),
        deparser: "CmptDeparser".into(),
        desc_parser: Some("DescParser".into()),
        ctx_param: "ctx".into(),
        meta_param: "pipe_meta".into(),
        ctx_type: "e1000_ctx_t".into(),
        meta_type: "e1000_meta_t".into(),
        completion_slot_bytes: 8,
    }
}

/// The paper's Fig. 6 model: newer e1000 with an RSS/checksum mux.
pub fn e1000e() -> NicModel {
    let p4 = r#"
// Fig. 6: the context bit use_rss selects between a 32-bit RSS hash and
// the ip_id + checksum pair; a base record always follows.
header rss_cmpt_t { @semantic("rss_hash") bit<32> rss; }
header ip_cmpt_t {
    @semantic("ip_id")       bit<16> ip_id;
    @semantic("ip_checksum") bit<16> csum;
}
header base_cmpt_t {
    @semantic("pkt_len")   bit<16> length;
    @semantic("rx_status") bit<8>  status;
    bit<8> errors;
    @semantic("vlan_tci")  bit<16> vlan;
    bit<16> reserved;
}
struct e1000e_ctx_t { bit<1> use_rss; }
struct e1000e_meta_t {
    rss_cmpt_t  rss;
    ip_cmpt_t   ip_fields;
    base_cmpt_t base;
}

control CmptDeparser(cmpt_out cmpt, in e1000e_ctx_t ctx, in e1000e_meta_t pipe_meta) {
    apply {
        if (ctx.use_rss == 1) {
            cmpt.emit(pipe_meta.rss);
        } else {
            cmpt.emit(pipe_meta.ip_fields);
        }
        cmpt.emit(pipe_meta.base);
    }
}

header e1000e_tx_t {
    @semantic("buf_addr") bit<64> buffer_addr;
    @semantic("buf_len")  bit<16> length;
    @semantic("tx_ip_csum_offload") bit<8> flags;
    bit<8>  qid;
}
struct e1000e_desc_t { e1000e_tx_t base; }
struct e1000e_h2c_ctx_t { bit<1> reserved; }

parser DescParser(desc_in d, in e1000e_h2c_ctx_t h2c_ctx, out e1000e_desc_t desc_hdr) {
    state start {
        d.extract(desc_hdr.base);
        transition accept;
    }
}
"#;
    NicModel {
        name: "e1000e".into(),
        description: "Fig. 6 running example: RSS xor ip_id+csum, + base".into(),
        p4_source: p4.into(),
        deparser: "CmptDeparser".into(),
        desc_parser: Some("DescParser".into()),
        ctx_param: "ctx".into(),
        meta_param: "pipe_meta".into(),
        ctx_type: "e1000e_ctx_t".into(),
        meta_type: "e1000e_meta_t".into(),
        completion_slot_bytes: 12,
    }
}

/// Intel ixgbe-style 16-byte advanced receive writeback.
pub fn ixgbe() -> NicModel {
    let p4 = r#"
// Dword 0 carries the RSS hash or (with flow director enabled) the
// matched filter id; the rest of the 16B writeback is fixed.
header ixgbe_rss_t  { @semantic("rss_hash") bit<32> rss; }
header ixgbe_fdir_t { @semantic("flow_tag") bit<32> fdir_id; }
header ixgbe_rest_t {
    @semantic("packet_type")    bit<16> ptype;
    @semantic("payload_offset") bit<16> hdr_len;
    @semantic("rx_status")      bit<16> status;
    @semantic("ip_checksum")    bit<16> ip_csum_status;
    @semantic("pkt_len")        bit<16> length;
    @semantic("vlan_tci")       bit<16> vlan;
}
struct ixgbe_ctx_t { bit<1> use_fdir; }
struct ixgbe_meta_t {
    ixgbe_rss_t  rss;
    ixgbe_fdir_t fdir;
    ixgbe_rest_t rest;
}

control CmptDeparser(cmpt_out cmpt, in ixgbe_ctx_t ctx, in ixgbe_meta_t pipe_meta) {
    apply {
        if (ctx.use_fdir == 1) {
            cmpt.emit(pipe_meta.fdir);
        } else {
            cmpt.emit(pipe_meta.rss);
        }
        cmpt.emit(pipe_meta.rest);
    }
}
"#;
    NicModel {
        name: "ixgbe".into(),
        description: "16B advanced writeback: rss|fdir + fixed tail".into(),
        p4_source: p4.into(),
        deparser: "CmptDeparser".into(),
        desc_parser: None,
        ctx_param: "ctx".into(),
        meta_param: "pipe_meta".into(),
        ctx_type: "ixgbe_ctx_t".into(),
        meta_type: "ixgbe_meta_t".into(),
        completion_slot_bytes: 16,
    }
}

/// NVIDIA mlx5-style CQE: full 64 B or 8 B compressed mini-CQEs.
pub fn mlx5() -> NicModel {
    let p4 = r#"
enum bit<2> cqe_fmt_t { FULL, MINI_RSS, MINI_CSUM }

// Full 64B CQE. app_meta is the programmable match-action result slot
// (BlueField-style), which OpenDesc maps to custom semantics such as the
// KVS key hash of the paper's Fig. 1 scenario.
header mlx5_full_cqe_t {
    @semantic("timestamp")      bit<64> ts;
    @semantic("rss_hash")       bit<32> rss;
    @semantic("flow_tag")       bit<32> flow_tag;
    @semantic("packet_type")    bit<16> ptype;
    @semantic("vlan_tci")       bit<16> vlan;
    @semantic("pkt_len")        bit<32> byte_cnt;
    @semantic("ip_checksum")    bit<16> ip_csum;
    @semantic("l4_checksum")    bit<16> l4_csum;
    @semantic("payload_offset") bit<16> hdr_offset;
    @semantic("kvs_key_hash")   bit<32> app_meta;
    @semantic("rx_status")      bit<8>  op_own;
    bit<116> reserved0;
    bit<116> reserved1;
}
header mlx5_mini_rss_t {
    @semantic("rss_hash")  bit<32> rss;
    @semantic("pkt_len")   bit<16> byte_cnt;
    @semantic("rx_status") bit<8>  op_own;
    bit<8> reserved;
}
header mlx5_mini_csum_t {
    @semantic("ip_checksum") bit<16> ip_csum;
    @semantic("l4_checksum") bit<16> l4_csum;
    @semantic("pkt_len")     bit<16> byte_cnt;
    @semantic("rx_status")   bit<8>  op_own;
    bit<8> reserved;
}
struct mlx5_ctx_t { cqe_fmt_t cqe_format; }
struct mlx5_meta_t {
    mlx5_full_cqe_t  full;
    mlx5_mini_rss_t  mini_rss;
    mlx5_mini_csum_t mini_csum;
}

control CmptDeparser(cmpt_out cmpt, in mlx5_ctx_t ctx, in mlx5_meta_t pipe_meta) {
    apply {
        switch (ctx.cqe_format) {
            0: { cmpt.emit(pipe_meta.full); }
            1: { cmpt.emit(pipe_meta.mini_rss); }
            2: { cmpt.emit(pipe_meta.mini_csum); }
            default: { cmpt.emit(pipe_meta.full); }
        }
    }
}
"#;
    NicModel {
        name: "mlx5".into(),
        description: "64B full CQE or 8B compressed mini-CQE (rss|csum)".into(),
        p4_source: p4.into(),
        deparser: "CmptDeparser".into(),
        desc_parser: None,
        ctx_param: "ctx".into(),
        meta_param: "pipe_meta".into(),
        ctx_type: "mlx5_ctx_t".into(),
        meta_type: "mlx5_meta_t".into(),
        completion_slot_bytes: 64,
    }
}

/// Intel ice/E810-style flexible receive descriptor: the RXDID register
/// selects one of several 32-byte writeback *profiles*, each packing a
/// different metadata mix — the closest shipping hardware to OpenDesc's
/// "NIC with selectable completion layouts" model.
pub fn ice() -> NicModel {
    let p4 = r#"
// Profile 0 (legacy-ish): rss + lengths + checksums.
header ice_legacy_prof_t {
    @semantic("rss_hash")     bit<32> rss;
    @semantic("pkt_len")      bit<16> length;
    @semantic("ip_checksum")  bit<16> ip_csum;
    @semantic("l4_checksum")  bit<16> l4_csum;
    @semantic("vlan_tci")     bit<16> vlan;
    @semantic("rx_status")    bit<16> status;
    bit<16>  rsvd0;
    bit<128> rsvd1;
}
// Profile 1 (nic-timestamping): timestamp-heavy telemetry mix.
header ice_ts_prof_t {
    @semantic("timestamp")    bit<64> ts;
    @semantic("rss_hash")     bit<32> rss;
    @semantic("pkt_len")      bit<16> length;
    @semantic("packet_type")  bit<16> ptype;
    @semantic("rx_status")    bit<16> status;
    bit<112> rsvd0;
}
// Profile 2 (flow-director / COMMS): flow tag + payload offsets.
header ice_comms_prof_t {
    @semantic("flow_tag")       bit<32> fdid;
    @semantic("rss_hash")       bit<32> rss;
    @semantic("payload_offset") bit<16> hdr_len;
    @semantic("packet_type")    bit<16> ptype;
    @semantic("pkt_len")        bit<16> length;
    @semantic("vlan_tci")       bit<16> vlan;
    @semantic("rx_status")      bit<16> status;
    bit<112> rsvd0;
}
struct ice_ctx_t { bit<3> rxdid; }
struct ice_meta_t {
    ice_legacy_prof_t legacy;
    ice_ts_prof_t     ts;
    ice_comms_prof_t  comms;
}

control CmptDeparser(cmpt_out cmpt, in ice_ctx_t ctx, in ice_meta_t pipe_meta) {
    apply {
        switch (ctx.rxdid) {
            0: { cmpt.emit(pipe_meta.legacy); }
            1: { cmpt.emit(pipe_meta.ts); }
            2: { cmpt.emit(pipe_meta.comms); }
            default: { cmpt.emit(pipe_meta.legacy); }
        }
    }
}

header ice_tx_t {
    @semantic("buf_addr") bit<64> addr;
    @semantic("buf_len")  bit<16> len;
    @semantic("tx_l4_csum_offload") bit<8> cmd_l4;
    @semantic("tx_ip_csum_offload") bit<8> cmd_ip;
    @semantic("tx_vlan_insert") bit<16> l2tag1;
    bit<16> rsvd;
}
struct ice_desc_t { ice_tx_t base; }
struct ice_h2c_ctx_t { bit<1> reserved; }

parser DescParser(desc_in d, in ice_h2c_ctx_t h2c_ctx, out ice_desc_t desc_hdr) {
    state start {
        d.extract(desc_hdr.base);
        transition accept;
    }
}
"#;
    NicModel {
        name: "ice".into(),
        description: "32B flexible writeback, RXDID-selected profiles".into(),
        p4_source: p4.into(),
        deparser: "CmptDeparser".into(),
        desc_parser: Some("DescParser".into()),
        ctx_param: "ctx".into(),
        meta_param: "pipe_meta".into(),
        ctx_type: "ice_ctx_t".into(),
        meta_type: "ice_meta_t".into(),
        completion_slot_bytes: 32,
    }
}

/// One user-defined QDMA completion layout.
#[derive(Debug, Clone, PartialEq)]
pub struct QdmaLayout {
    /// `(semantic_name, width_bits)` in emission order.
    pub fields: Vec<(String, u16)>,
}

impl QdmaLayout {
    pub fn new(fields: &[(&str, u16)]) -> Self {
        QdmaLayout {
            fields: fields.iter().map(|(n, w)| (n.to_string(), *w)).collect(),
        }
    }

    /// Total field bits.
    pub fn bits(&self) -> u32 {
        self.fields.iter().map(|(_, w)| *w as u32).sum()
    }

    /// QDMA completion size class: 8, 16, 32 or 64 bytes; `None` if the
    /// fields exceed 64 bytes.
    pub fn size_class(&self) -> Option<u32> {
        let bytes = self.bits().div_ceil(8);
        [8u32, 16, 32, 64].into_iter().find(|c| bytes <= *c)
    }
}

/// Generate a QDMA contract exposing `layouts` as selectable per-queue
/// completion formats (paper: "fully programmable descriptors of 8, 16,
/// 32 or 64 bytes"). Returns `None` if any layout exceeds 64 bytes.
pub fn qdma_contract(layouts: &[QdmaLayout]) -> Option<String> {
    let mut src = String::from("// AMD/Xilinx QDMA-style fully programmable completion formats.\n");
    for (i, l) in layouts.iter().enumerate() {
        let class = l.size_class()?;
        src.push_str(&format!("header qdma_cmpt{i}_t {{\n"));
        for (j, (sem, w)) in l.fields.iter().enumerate() {
            src.push_str(&format!("    @semantic(\"{sem}\") bit<{w}> f{j};\n"));
        }
        // Pad to the size class in ≤128-bit chunks (field values are
        // modeled as u128).
        let mut pad = class * 8 - l.bits();
        let mut k = 0;
        while pad > 0 {
            let chunk = pad.min(128);
            src.push_str(&format!("    bit<{chunk}> pad{k};\n"));
            pad -= chunk;
            k += 1;
        }
        src.push_str("}\n");
    }
    src.push_str("struct qdma_ctx_t { bit<16> layout_id; }\n");
    src.push_str("struct qdma_meta_t {\n");
    for i in 0..layouts.len() {
        src.push_str(&format!("    qdma_cmpt{i}_t l{i};\n"));
    }
    src.push_str("}\n");
    src.push_str(
        "control CmptDeparser(cmpt_out cmpt, in qdma_ctx_t ctx, in qdma_meta_t pipe_meta) {\n    apply {\n        switch (ctx.layout_id) {\n",
    );
    for i in 0..layouts.len() {
        src.push_str(&format!(
            "            {i}: {{ cmpt.emit(pipe_meta.l{i}); }}\n"
        ));
    }
    src.push_str("            default: { }\n        }\n    }\n}\n");
    src.push_str(
        r#"
header qdma_h2c_base_t {
    @semantic("buf_addr") bit<64> addr;
    @semantic("buf_len")  bit<16> len;
    bit<8>  flags;
    bit<8>  qid;
}
header qdma_h2c_ext_t {
    @semantic("tx_l4_csum_offload") bit<16> l4_csum;
    @semantic("tx_vlan_insert")     bit<16> vlan;
}
struct qdma_desc_t { qdma_h2c_base_t base; qdma_h2c_ext_t ext; }
struct qdma_h2c_ctx_t { bit<8> desc_size; }

parser DescParser(desc_in d, in qdma_h2c_ctx_t h2c_ctx, out qdma_desc_t desc_hdr) {
    state start {
        d.extract(desc_hdr.base);
        transition select(h2c_ctx.desc_size) {
            12: accept;
            16: parse_ext;
            default: reject;
        }
    }
    state parse_ext {
        d.extract(desc_hdr.ext);
        transition accept;
    }
}
"#,
    );
    Some(src)
}

/// A QDMA model wrapping generated layouts.
pub fn qdma(layouts: &[QdmaLayout]) -> Option<NicModel> {
    let p4_source = qdma_contract(layouts)?;
    let slot = layouts
        .iter()
        .map(|l| l.size_class().unwrap_or(64) as usize)
        .max()
        .unwrap_or(8);
    Some(NicModel {
        name: "qdma".into(),
        description: format!("fully programmable, {} installed layouts", layouts.len()),
        p4_source,
        deparser: "CmptDeparser".into(),
        desc_parser: Some("DescParser".into()),
        ctx_param: "ctx".into(),
        meta_param: "pipe_meta".into(),
        ctx_type: "qdma_ctx_t".into(),
        meta_type: "qdma_meta_t".into(),
        completion_slot_bytes: slot,
    })
}

/// A sensible default QDMA provisioning used by examples and benches:
/// four layouts covering common intent mixes at 8/16/32 bytes.
pub fn qdma_default() -> NicModel {
    qdma(&[
        QdmaLayout::new(&[("rss_hash", 32), ("pkt_len", 16), ("rx_status", 16)]),
        QdmaLayout::new(&[
            ("rss_hash", 32),
            ("ip_checksum", 16),
            ("l4_checksum", 16),
            ("vlan_tci", 16),
            ("pkt_len", 16),
            ("rx_status", 16),
        ]),
        QdmaLayout::new(&[
            ("rss_hash", 32),
            ("ip_checksum", 16),
            ("vlan_tci", 16),
            ("kvs_key_hash", 32),
            ("pkt_len", 16),
            ("rx_status", 16),
        ]),
        QdmaLayout::new(&[
            ("timestamp", 64),
            ("rss_hash", 32),
            ("flow_tag", 32),
            ("ip_checksum", 16),
            ("l4_checksum", 16),
            ("vlan_tci", 16),
            ("packet_type", 16),
            ("payload_offset", 16),
            ("kvs_key_hash", 32),
            ("pkt_len", 16),
            ("rx_status", 16),
        ]),
    ])
    .expect("default layouts fit 64B")
}

// ---------------------------------------------------------------------
// Programmable layout ingestion: a NIC model as pure data.
// ---------------------------------------------------------------------

/// One field of a programmable layout description.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgField {
    /// P4 field name; must be a valid identifier, unique per header.
    pub name: String,
    /// Semantic annotation; `None` renders a bare (pad/tag) field.
    pub semantic: Option<String>,
    pub width_bits: u16,
}

impl ProgField {
    /// A semantic-carrying field.
    pub fn sem(name: &str, semantic: &str, width_bits: u16) -> Self {
        ProgField {
            name: name.into(),
            semantic: Some(semantic.into()),
            width_bits,
        }
    }

    /// A bare field: padding, reserved bits, or a generation tag.
    pub fn pad(name: &str, width_bits: u16) -> Self {
        ProgField {
            name: name.into(),
            semantic: None,
            width_bits,
        }
    }
}

/// One completion-header layout: fields in emission order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgLayout {
    pub fields: Vec<ProgField>,
}

impl ProgLayout {
    pub fn bits(&self) -> u32 {
        self.fields.iter().map(|f| f.width_bits as u32).sum()
    }

    pub fn bytes(&self) -> u32 {
        self.bits().div_ceil(8)
    }
}

/// How the deparser chooses among the alternative layouts.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgGuard {
    /// Exactly one layout, always emitted.
    Unconditional,
    /// Exactly two layouts behind a 1-bit context selector.
    IfElse,
    /// Up to `2^selector_bits` layouts behind a switch on a context
    /// selector field.
    Switch { selector_bits: u16 },
    /// Exactly two layouts behind a guard the path solver cannot
    /// analyze (two context fields compared to each other) — the
    /// negotiated manifest must say `mode = "manual"`.
    Opaque,
}

/// A TX descriptor description: a base header (which must carry
/// `buf_addr` and `buf_len`) and an optional extended header gated on
/// the host-to-card context's `desc_size`, QDMA-style.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgTxSpec {
    pub base: Vec<ProgField>,
    pub ext: Option<Vec<ProgField>>,
}

/// A full programmable NIC description: everything [`programmable`]
/// needs to mint a [`NicModel`]. A fifth real NIC is one of these — a
/// data change, not code.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgSpec {
    pub name: String,
    pub layouts: Vec<ProgLayout>,
    pub guard: ProgGuard,
    /// Optional fixed tail emitted after the selected alternative
    /// (e1000e-style base record).
    pub tail: Option<ProgLayout>,
    pub tx: Option<ProgTxSpec>,
}

/// Render header fields, auto-padding the header to a whole number of
/// bytes (the typechecker rejects ragged headers) in ≤128-bit chunks.
fn render_fields(src: &mut String, fields: &[ProgField]) {
    for f in fields {
        match &f.semantic {
            Some(s) => src.push_str(&format!(
                "    @semantic(\"{s}\") bit<{}> {};\n",
                f.width_bits, f.name
            )),
            None => src.push_str(&format!("    bit<{}> {};\n", f.width_bits, f.name)),
        }
    }
    let bits: u32 = fields.iter().map(|f| f.width_bits as u32).sum();
    let pad = bits.div_ceil(8) * 8 - bits;
    if pad > 0 {
        src.push_str(&format!("    bit<{pad}> alignpad;\n"));
    }
}

fn fields_ok(fields: &[ProgField]) -> bool {
    !fields.is_empty()
        && fields.iter().all(|f| {
            f.width_bits >= 1
                && f.width_bits <= 128
                && !f.name.is_empty()
                && f.name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !f.name.starts_with(|c: char| c.is_ascii_digit())
                && f.name != "alignpad"
        })
        && fields
            .iter()
            .enumerate()
            .all(|(i, f)| fields[..i].iter().all(|g| g.name != f.name))
}

/// Build a [`NicModel`] from a programmable description. Returns `None`
/// on an invalid shape: guard arity mismatch, a path exceeding 64
/// bytes, malformed fields, or a TX spec without byte-aligned headers
/// carrying `buf_addr`/`buf_len` in the base.
pub fn programmable(spec: &ProgSpec) -> Option<NicModel> {
    // Shape checks.
    match spec.guard {
        ProgGuard::Unconditional => {
            if spec.layouts.len() != 1 {
                return None;
            }
        }
        ProgGuard::IfElse | ProgGuard::Opaque => {
            if spec.layouts.len() != 2 {
                return None;
            }
        }
        ProgGuard::Switch { selector_bits } => {
            if !(1..=16).contains(&selector_bits)
                || spec.layouts.is_empty()
                || (selector_bits < 16 && spec.layouts.len() > 1usize << selector_bits)
            {
                return None;
            }
        }
    }
    let tail_bytes = spec.tail.as_ref().map_or(0, |t| t.bytes());
    let mut slot_bytes = 0u32;
    for l in &spec.layouts {
        if !fields_ok(&l.fields) {
            return None;
        }
        // Headers are auto-padded to whole bytes individually.
        let path_bytes = l.bytes() + tail_bytes;
        if path_bytes > 64 {
            return None;
        }
        slot_bytes = slot_bytes.max(path_bytes);
    }
    if let Some(t) = &spec.tail {
        if !fields_ok(&t.fields) {
            return None;
        }
    }
    if let Some(tx) = &spec.tx {
        let has =
            |fs: &[ProgField], sem: &str| fs.iter().any(|f| f.semantic.as_deref() == Some(sem));
        let byte_aligned =
            |fs: &[ProgField]| fs.iter().map(|f| f.width_bits as u32).sum::<u32>() % 8 == 0;
        if !fields_ok(&tx.base)
            || !has(&tx.base, "buf_addr")
            || !has(&tx.base, "buf_len")
            || !byte_aligned(&tx.base)
        {
            return None;
        }
        if let Some(ext) = &tx.ext {
            if !fields_ok(ext) || !byte_aligned(ext) {
                return None;
            }
        }
    }

    // Completion headers.
    let mut src = format!("// programmable model \"{}\" (generated).\n", spec.name);
    for (i, l) in spec.layouts.iter().enumerate() {
        src.push_str(&format!("header pd_cmpt{i}_t {{\n"));
        render_fields(&mut src, &l.fields);
        src.push_str("}\n");
    }
    if let Some(t) = &spec.tail {
        src.push_str("header pd_tail_t {\n");
        render_fields(&mut src, &t.fields);
        src.push_str("}\n");
    }

    // Context struct.
    src.push_str("struct pd_ctx_t { ");
    match spec.guard {
        ProgGuard::Unconditional => src.push_str("bit<1> reserved; "),
        ProgGuard::IfElse => src.push_str("bit<1> sel; "),
        ProgGuard::Switch { selector_bits } => src.push_str(&format!("bit<{selector_bits}> sel; ")),
        ProgGuard::Opaque => src.push_str("bit<4> a; bit<4> b; "),
    }
    src.push_str("}\n");

    // Metadata struct.
    src.push_str("struct pd_meta_t {\n");
    for i in 0..spec.layouts.len() {
        src.push_str(&format!("    pd_cmpt{i}_t l{i};\n"));
    }
    if spec.tail.is_some() {
        src.push_str("    pd_tail_t tail;\n");
    }
    src.push_str("}\n");

    // Deparser.
    src.push_str("control CmptDeparser(cmpt_out cmpt, in pd_ctx_t ctx, in pd_meta_t pipe_meta) {\n    apply {\n");
    match spec.guard {
        ProgGuard::Unconditional => {
            src.push_str("        cmpt.emit(pipe_meta.l0);\n");
        }
        ProgGuard::IfElse => {
            src.push_str("        if (ctx.sel == 1) {\n            cmpt.emit(pipe_meta.l1);\n        } else {\n            cmpt.emit(pipe_meta.l0);\n        }\n");
        }
        ProgGuard::Switch { .. } => {
            src.push_str("        switch (ctx.sel) {\n");
            for i in 0..spec.layouts.len() {
                src.push_str(&format!(
                    "            {i}: {{ cmpt.emit(pipe_meta.l{i}); }}\n"
                ));
            }
            src.push_str("            default: { }\n        }\n");
        }
        ProgGuard::Opaque => {
            src.push_str("        if (ctx.a == ctx.b) {\n            cmpt.emit(pipe_meta.l0);\n        } else {\n            cmpt.emit(pipe_meta.l1);\n        }\n");
        }
    }
    if spec.tail.is_some() {
        src.push_str("        cmpt.emit(pipe_meta.tail);\n");
    }
    src.push_str("    }\n}\n");

    // TX descriptor parser.
    if let Some(tx) = &spec.tx {
        src.push_str("header pd_tx_base_t {\n");
        render_fields(&mut src, &tx.base);
        src.push_str("}\n");
        let base_bytes: u32 = tx.base.iter().map(|f| f.width_bits as u32).sum::<u32>() / 8;
        match &tx.ext {
            Some(ext) => {
                src.push_str("header pd_tx_ext_t {\n");
                render_fields(&mut src, ext);
                src.push_str("}\n");
                let ext_bytes: u32 = ext.iter().map(|f| f.width_bits as u32).sum::<u32>() / 8;
                src.push_str("struct pd_desc_t { pd_tx_base_t base; pd_tx_ext_t ext; }\n");
                src.push_str("struct pd_h2c_ctx_t { bit<8> desc_size; }\n");
                src.push_str(&format!(
                    "parser DescParser(desc_in d, in pd_h2c_ctx_t h2c_ctx, out pd_desc_t desc_hdr) {{\n    state start {{\n        d.extract(desc_hdr.base);\n        transition select(h2c_ctx.desc_size) {{\n            {base_bytes}: accept;\n            {}: parse_ext;\n            default: reject;\n        }}\n    }}\n    state parse_ext {{\n        d.extract(desc_hdr.ext);\n        transition accept;\n    }}\n}}\n",
                    base_bytes + ext_bytes
                ));
            }
            None => {
                src.push_str("struct pd_desc_t { pd_tx_base_t base; }\n");
                src.push_str("struct pd_h2c_ctx_t { bit<1> reserved; }\n");
                src.push_str("parser DescParser(desc_in d, in pd_h2c_ctx_t h2c_ctx, out pd_desc_t desc_hdr) {\n    state start {\n        d.extract(desc_hdr.base);\n        transition accept;\n    }\n}\n");
            }
        }
    }

    Some(NicModel {
        name: spec.name.clone(),
        description: format!(
            "programmable: {} layouts, {:?} guard",
            spec.layouts.len(),
            spec.guard
        ),
        p4_source: src,
        deparser: "CmptDeparser".into(),
        desc_parser: spec.tx.as_ref().map(|_| "DescParser".into()),
        ctx_param: "ctx".into(),
        meta_param: "pipe_meta".into(),
        ctx_type: "pd_ctx_t".into(),
        meta_type: "pd_meta_t".into(),
        completion_slot_bytes: slot_bytes as usize,
    })
}

/// All fixed catalog models (including the default QDMA provisioning).
pub fn catalog() -> Vec<NicModel> {
    vec![
        e1000_legacy(),
        e1000e(),
        ixgbe(),
        ice(),
        mlx5(),
        qdma_default(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use opendesc_ir::{enumerate_paths, extract, SemanticRegistry, DEFAULT_MAX_PATHS};
    use opendesc_p4::typecheck::parse_and_check;

    fn check_model(m: &NicModel) -> usize {
        let (checked, diags) = parse_and_check(&m.p4_source);
        assert!(
            !diags.has_errors(),
            "model {} contract errors:\n{}",
            m.name,
            diags
                .iter()
                .map(|d| d.message.clone())
                .collect::<Vec<_>>()
                .join("\n")
        );
        let mut reg = SemanticRegistry::with_builtins();
        let cfg = extract(&checked, &m.deparser, &mut reg).expect("cfg extracts");
        let paths = enumerate_paths(&cfg, DEFAULT_MAX_PATHS).expect("paths enumerate");
        for p in &paths {
            assert!(
                p.size_bytes() as usize <= m.completion_slot_bytes,
                "model {}: path {} ({}B) exceeds slot {}",
                m.name,
                p.id,
                p.size_bytes(),
                m.completion_slot_bytes
            );
            assert!(
                p.solve_context().is_some(),
                "model {}: unsolvable guard",
                m.name
            );
        }
        paths.len()
    }

    #[test]
    fn e1000_legacy_single_layout() {
        assert_eq!(check_model(&e1000_legacy()), 1);
    }

    #[test]
    fn e1000e_two_layouts() {
        assert_eq!(check_model(&e1000e()), 2);
    }

    #[test]
    fn ixgbe_two_layouts() {
        assert_eq!(check_model(&ixgbe()), 2);
    }

    #[test]
    fn mlx5_four_switch_arms() {
        // FULL, MINI_RSS, MINI_CSUM + default(FULL again).
        assert_eq!(check_model(&mlx5()), 4);
    }

    #[test]
    fn mlx5_full_cqe_is_64_bytes() {
        let m = mlx5();
        let (checked, d) = parse_and_check(&m.p4_source);
        assert!(!d.has_errors());
        let id = checked.types.header_id("mlx5_full_cqe_t").unwrap();
        assert_eq!(checked.types.header(id).width_bytes(), 64);
        let mini = checked.types.header_id("mlx5_mini_rss_t").unwrap();
        assert_eq!(checked.types.header(mini).width_bytes(), 8);
    }

    #[test]
    fn qdma_layout_size_classes() {
        let l = QdmaLayout::new(&[("rss_hash", 32), ("pkt_len", 16)]);
        assert_eq!(l.size_class(), Some(8));
        let l9 = QdmaLayout::new(&[("rss_hash", 32), ("pkt_len", 16), ("flow_tag", 32)]);
        assert_eq!(l9.size_class(), Some(16), "10 bytes fits the 16B class");
        let max = QdmaLayout::new(&[("timestamp", 64); 8]);
        assert_eq!(max.size_class(), Some(64));
        let too_big = QdmaLayout::new(&[("timestamp", 64); 9]);
        assert_eq!(too_big.size_class(), None);
        assert!(qdma(&[too_big]).is_none());
    }

    #[test]
    fn qdma_default_checks_and_enumerates() {
        // 4 installed layouts + default(empty) arm.
        assert_eq!(check_model(&qdma_default()), 5);
    }

    #[test]
    fn qdma_scales_to_many_layouts() {
        let layouts: Vec<QdmaLayout> = std::iter::repeat_with(|| {
            QdmaLayout::new(&[("rss_hash", 32), ("pkt_len", 16), ("flow_tag", 32)])
        })
        .take(64)
        .collect();
        let m = qdma(&layouts).unwrap();
        assert_eq!(check_model(&m), 65);
    }

    #[test]
    fn catalog_all_models_valid() {
        for m in catalog() {
            check_model(&m);
        }
    }

    fn sample_spec(guard: ProgGuard, n: usize) -> ProgSpec {
        let layout = |tag: usize| ProgLayout {
            fields: vec![
                ProgField::sem(&format!("hash{tag}"), "rss_hash", 32),
                ProgField::pad(&format!("gen{tag}"), 4),
                ProgField::sem(&format!("len{tag}"), "pkt_len", 16),
            ],
        };
        ProgSpec {
            name: "prog-test".into(),
            layouts: (0..n).map(layout).collect(),
            guard,
            tail: Some(ProgLayout {
                fields: vec![ProgField::sem("status", "rx_status", 8)],
            }),
            tx: Some(ProgTxSpec {
                base: vec![
                    ProgField::sem("addr", "buf_addr", 64),
                    ProgField::sem("len", "buf_len", 16),
                    ProgField::pad("flags", 8),
                ],
                ext: Some(vec![ProgField::sem("vlan", "tx_vlan_insert", 16)]),
            }),
        }
    }

    #[test]
    fn programmable_switch_model_checks() {
        let m = programmable(&sample_spec(ProgGuard::Switch { selector_bits: 4 }, 3)).unwrap();
        // 3 arms + empty default arm.
        assert_eq!(check_model(&m), 4);
        assert!(m.desc_parser.is_some());
    }

    #[test]
    fn programmable_unconditional_and_ifelse() {
        let m = programmable(&sample_spec(ProgGuard::Unconditional, 1)).unwrap();
        assert_eq!(check_model(&m), 1);
        let m = programmable(&sample_spec(ProgGuard::IfElse, 2)).unwrap();
        assert_eq!(check_model(&m), 2);
    }

    #[test]
    fn programmable_opaque_guard_is_unsolvable() {
        let m = programmable(&sample_spec(ProgGuard::Opaque, 2)).unwrap();
        let (checked, diags) = parse_and_check(&m.p4_source);
        assert!(!diags.has_errors());
        let mut reg = SemanticRegistry::with_builtins();
        let cfg = extract(&checked, &m.deparser, &mut reg).unwrap();
        let paths = enumerate_paths(&cfg, DEFAULT_MAX_PATHS).unwrap();
        assert_eq!(paths.len(), 2);
        assert!(
            paths.iter().all(|p| p.solve_context().is_none()),
            "opaque guards must defeat the context solver"
        );
    }

    #[test]
    fn programmable_rejects_bad_shapes() {
        // Guard arity.
        assert!(programmable(&sample_spec(ProgGuard::Unconditional, 2)).is_none());
        assert!(programmable(&sample_spec(ProgGuard::IfElse, 3)).is_none());
        assert!(programmable(&sample_spec(ProgGuard::Switch { selector_bits: 1 }, 3)).is_none());
        // Oversized path.
        let mut big = sample_spec(ProgGuard::Unconditional, 1);
        big.layouts[0].fields = (0..5)
            .map(|i| ProgField::pad(&format!("p{i}"), 128))
            .collect();
        assert!(programmable(&big).is_none());
        // TX base missing buf_len.
        let mut tx = sample_spec(ProgGuard::Unconditional, 1);
        tx.tx.as_mut().unwrap().base.retain(|f| f.name != "len");
        assert!(programmable(&tx).is_none());
        // TX header not byte-aligned.
        let mut ragged = sample_spec(ProgGuard::Unconditional, 1);
        ragged.tx.as_mut().unwrap().ext = Some(vec![ProgField::pad("x", 7)]);
        assert!(programmable(&ragged).is_none());
        // Duplicate field names.
        let mut dup = sample_spec(ProgGuard::Unconditional, 1);
        let first = dup.layouts[0].fields[0].clone();
        dup.layouts[0].fields.push(first);
        assert!(programmable(&dup).is_none());
    }

    #[test]
    fn ixgbe_writeback_is_16_bytes() {
        let m = ixgbe();
        let (checked, _) = parse_and_check(&m.p4_source);
        let rest = checked.types.header_id("ixgbe_rest_t").unwrap();
        assert_eq!(checked.types.header(rest).width_bytes(), 12);
    }
}
