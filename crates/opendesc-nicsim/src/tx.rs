//! The simulated NIC's transmit path (paper §3, channels ① and ②).
//!
//! The host posts descriptors into the TX ring; the device executes the
//! contract's `DescParser` over the raw bytes (per-queue H2C context
//! steering the parse), resolves `buf_addr`/`buf_len` against host
//! memory, honors the offload hints the descriptor carries (checksum
//! insertion, VLAN insertion — computed by the same softnic reference
//! code the host would use as fallback), and emits the wire frame.

use crate::nic::{NicError, SimNic};
use crate::ring::RingError;
use opendesc_ir::interp::run_desc_parser;
use opendesc_ir::semantics::names;
use opendesc_ir::value::Value;
use opendesc_ir::{Assignment, SemanticId};
use opendesc_p4::ast;
use opendesc_p4::types::{ExternKind, Ty};
use opendesc_softnic::fixup;
use std::collections::HashMap;

/// TX-side counters.
#[derive(Debug, Clone, Default)]
pub struct TxStats {
    /// Descriptors consumed from the ring.
    pub descs: u64,
    /// Frames emitted on the wire.
    pub frames: u64,
    /// Descriptors the parser rejected.
    pub parse_rejects: u64,
    /// Descriptors with unresolvable buffer addresses/lengths.
    pub bad_buffers: u64,
}

impl SimNic {
    /// Whether the model defines a TX descriptor parser.
    pub fn tx_available(&self) -> bool {
        self.model.desc_parser.is_some()
    }

    /// Program the H2C (TX) per-queue context.
    pub fn configure_tx(&mut self, ctx: Assignment) {
        self.h2c_context = ctx;
    }

    /// Register a frame buffer in DMA-visible host memory.
    pub fn alloc_tx_buf(&mut self, frame: &[u8]) -> u64 {
        self.host_mem.alloc(frame)
    }

    /// Post a raw TX descriptor (host side). One doorbell per
    /// descriptor — the seed submission protocol. Batched submitters use
    /// [`post_tx_deferred`](SimNic::post_tx_deferred) +
    /// [`ring_tx_doorbell`](SimNic::ring_tx_doorbell) instead.
    pub fn post_tx(&mut self, desc: &[u8]) -> Result<(), NicError> {
        match self.tx_ring.produce(desc) {
            Ok(()) => {
                self.tx_ring.ring_doorbell();
                Ok(())
            }
            Err(e @ RingError::Full) => Err(NicError::Ring(e)),
            Err(e) => Err(NicError::Ring(e)),
        }
    }

    /// Stage a TX descriptor in the ring *without* publishing it: the
    /// device sees nothing until [`ring_tx_doorbell`] makes the whole
    /// batch visible at once. This is how real drivers amortize the MMIO
    /// doorbell write over a batch.
    ///
    /// [`ring_tx_doorbell`]: SimNic::ring_tx_doorbell
    pub fn post_tx_deferred(&mut self, desc: &[u8]) -> Result<(), NicError> {
        self.tx_ring.produce(desc).map_err(NicError::Ring)
    }

    /// Publish every staged TX descriptor with one doorbell; returns how
    /// many became visible to the device.
    pub fn ring_tx_doorbell(&mut self) -> u64 {
        self.tx_ring.ring_doorbell()
    }

    /// Cumulative count of TX descriptors the device has consumed — the
    /// completion signal batched submitters reclaim buffer slots
    /// against (a descriptor is consumed only after its frame left the
    /// device, so a slot whose descriptor is consumed is free to reuse).
    pub fn tx_completed(&self) -> u64 {
        self.tx_ring.total_consumed()
    }

    /// [`process_tx`](SimNic::process_tx) without collecting the wire
    /// frames: processes every published descriptor and returns the
    /// number of frames emitted. The forwarding engine's device-side
    /// drain — wire frames that nobody inspects are not retained.
    pub fn process_tx_drain(&mut self) -> u64 {
        let before = self.tx_stats.frames;
        self.process_tx();
        self.tx_stats.frames - before
    }

    /// Device side: consume published descriptors, parse them with the
    /// contract, apply requested offloads, and return the wire frames.
    pub fn process_tx(&mut self) -> Vec<Vec<u8>> {
        let Some(parser_name) = self.model.desc_parser.clone() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while let Some(desc) = self.tx_ring.consume().map(|d| d.to_vec()) {
            self.tx_stats.descs += 1;
            match self.tx_one(&parser_name, &desc) {
                Ok(frame) => {
                    self.tx_stats.frames += 1;
                    self.dma.record(&self.dma_cfg, frame.len() as u32);
                    out.push(frame);
                }
                Err(TxError::ParseReject) => self.tx_stats.parse_rejects += 1,
                Err(TxError::BadBuffer) => self.tx_stats.bad_buffers += 1,
            }
        }
        out
    }

    fn tx_one(&mut self, parser_name: &str, desc: &[u8]) -> Result<Vec<u8>, TxError> {
        // H2C context value for the parser's `in` struct param.
        let mut args: HashMap<String, Value> = HashMap::new();
        if let Some(parser) = self.checked.program.parser(parser_name) {
            for p in &parser.params {
                let ty = self.checked.param_ty(p);
                if p.dir == Some(ast::Direction::In)
                    && !matches!(
                        ty,
                        Some(Ty::Extern(ExternKind::DescIn | ExternKind::PacketIn))
                    )
                {
                    if let Some(Ty::Struct(sid)) = ty {
                        let mut v = Value::struct_of(sid, &self.checked.types);
                        for (fref, val) in &self.h2c_context {
                            if fref.path.first().map(String::as_str) != Some(p.name.name.as_str()) {
                                continue;
                            }
                            let segs: Vec<&str> =
                                fref.path[1..].iter().map(String::as_str).collect();
                            if let Some(slot) = v.get_path_mut(&segs) {
                                *slot = Value::bits(fref.width, *val);
                            }
                        }
                        args.insert(p.name.name.clone(), v);
                    }
                }
            }
        }
        let run = run_desc_parser(&self.checked, parser_name, desc, &args)
            .map_err(|_| TxError::ParseReject)?;

        // Harvest semantic-annotated fields from the parsed descriptor.
        let hints = self.harvest_semantics(&run.descriptor);
        let addr = self
            .sem_value(&hints, names::BUF_ADDR)
            .ok_or(TxError::BadBuffer)?;
        let len = self
            .sem_value(&hints, names::BUF_LEN)
            .ok_or(TxError::BadBuffer)? as usize;
        let mut frame = self
            .host_mem
            .read(addr as u64, len)
            .ok_or(TxError::BadBuffer)?
            .to_vec();

        // Apply offload hints (same reference code as the host fallback).
        if self
            .sem_value(&hints, names::TX_VLAN_INSERT)
            .is_some_and(|v| v != 0)
        {
            let tci = self.sem_value(&hints, names::TX_VLAN_INSERT).unwrap() as u16;
            if let Some(tagged) = fixup::insert_vlan(&frame, tci) {
                frame = tagged;
            }
        }
        if self
            .sem_value(&hints, names::TX_IP_CSUM)
            .is_some_and(|v| v != 0)
        {
            fixup::fill_ipv4_checksum(&mut frame);
        }
        if self
            .sem_value(&hints, names::TX_L4_CSUM)
            .is_some_and(|v| v != 0)
        {
            fixup::fill_l4_checksum(&mut frame);
        }
        Ok(frame)
    }

    /// Extract `(semantic, value)` pairs from a parsed descriptor value
    /// tree: every valid header field carrying an `@semantic` annotation.
    fn harvest_semantics(&self, v: &Value) -> Vec<(SemanticId, u128)> {
        let mut out = Vec::new();
        self.harvest_rec(v, &mut out);
        out
    }

    fn harvest_rec(&self, v: &Value, out: &mut Vec<(SemanticId, u128)>) {
        match v {
            Value::Struct(fields) => {
                for f in fields.values() {
                    self.harvest_rec(f, out);
                }
            }
            Value::Header {
                header,
                valid: true,
                fields,
            } => {
                let info = self.checked.types.header(*header);
                for hf in &info.fields {
                    if let Some(sem) = hf.semantic.as_deref() {
                        if let Some(id) = self.reg.id(sem) {
                            out.push((id, fields.get(&hf.name).copied().unwrap_or(0)));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn sem_value(&self, hints: &[(SemanticId, u128)], name: &str) -> Option<u128> {
        let id = self.reg.id(name)?;
        hints.iter().find(|(s, _)| *s == id).map(|(_, v)| *v)
    }
}

enum TxError {
    ParseReject,
    BadBuffer,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use opendesc_ir::bits::write_bits;
    use opendesc_ir::pred::FieldRef;
    use opendesc_softnic::testpkt;

    fn h2c(size: u128) -> Assignment {
        let mut a = Assignment::new();
        a.insert(FieldRef::new(&["h2c_ctx", "desc_size"], 8), size);
        a
    }

    /// Build a QDMA base descriptor (addr 64, len 16, flags 8, qid 8).
    fn qdma_desc(addr: u64, len: u16, ext_args: Option<u32>) -> Vec<u8> {
        let size = if ext_args.is_some() { 16 } else { 12 };
        let mut d = vec![0u8; size];
        write_bits(&mut d, 0, 64, addr as u128);
        write_bits(&mut d, 64, 16, len as u128);
        if let Some(args) = ext_args {
            write_bits(&mut d, 96, 32, args as u128);
        }
        d
    }

    #[test]
    fn qdma_tx_base_descriptor_transmits() {
        let mut nic = SimNic::new(models::qdma_default(), 16).unwrap();
        assert!(nic.tx_available());
        nic.configure_tx(h2c(12));
        let frame = testpkt::udp4([1, 2, 3, 4], [5, 6, 7, 8], 1, 2, b"payload", None);
        let addr = nic.alloc_tx_buf(&frame);
        nic.post_tx(&qdma_desc(addr, frame.len() as u16, None))
            .unwrap();
        let sent = nic.process_tx();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0], frame);
        assert_eq!(nic.tx_stats.frames, 1);
    }

    #[test]
    fn tx_parse_reject_on_wrong_context() {
        let mut nic = SimNic::new(models::qdma_default(), 16).unwrap();
        nic.configure_tx(h2c(99)); // select has no arm for 99 → reject
        let frame = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"x", None);
        let addr = nic.alloc_tx_buf(&frame);
        nic.post_tx(&qdma_desc(addr, frame.len() as u16, None))
            .unwrap();
        assert!(nic.process_tx().is_empty());
        assert_eq!(nic.tx_stats.parse_rejects, 1);
    }

    #[test]
    fn tx_bad_buffer_counted() {
        let mut nic = SimNic::new(models::qdma_default(), 16).unwrap();
        nic.configure_tx(h2c(12));
        nic.post_tx(&qdma_desc(0xDEAD_0000, 64, None)).unwrap();
        assert!(nic.process_tx().is_empty());
        assert_eq!(nic.tx_stats.bad_buffers, 1);
    }

    #[test]
    fn e1000e_tx_transmits_via_its_parser() {
        let mut nic = SimNic::new(models::e1000e(), 16).unwrap();
        assert!(nic.tx_available());
        let frame = testpkt::udp4([3, 3, 3, 3], [4, 4, 4, 4], 9, 10, b"e1000e", None);
        let addr = nic.alloc_tx_buf(&frame);
        // e1000e TX: addr 64, length 16, flags 8, qid 8 (12 bytes).
        let mut d = vec![0u8; 12];
        write_bits(&mut d, 0, 64, addr as u128);
        write_bits(&mut d, 64, 16, frame.len() as u128);
        nic.post_tx(&d).unwrap();
        let sent = nic.process_tx();
        assert_eq!(sent, vec![frame]);
    }

    #[test]
    fn models_without_tx_parser_are_inert() {
        let mut nic = SimNic::new(models::mlx5(), 16).unwrap();
        assert!(!nic.tx_available());
        assert!(nic.process_tx().is_empty());
    }

    #[test]
    fn deferred_posts_invisible_until_doorbell() {
        let mut nic = SimNic::new(models::qdma_default(), 16).unwrap();
        nic.configure_tx(h2c(12));
        let frame = testpkt::udp4([9, 9, 9, 9], [8, 8, 8, 8], 3, 4, b"batched", None);
        let addr = nic.alloc_tx_buf(&frame);
        for _ in 0..3 {
            nic.post_tx_deferred(&qdma_desc(addr, frame.len() as u16, None))
                .unwrap();
        }
        // Nothing published: the device consumes nothing.
        assert_eq!(nic.process_tx_drain(), 0);
        assert_eq!(nic.tx_completed(), 0);
        // One doorbell publishes the whole batch.
        assert_eq!(nic.ring_tx_doorbell(), 3);
        assert_eq!(nic.process_tx_drain(), 3);
        assert_eq!(nic.tx_completed(), 3);
        assert_eq!(nic.tx_stats.frames, 3);
    }

    #[test]
    fn ring_full_reported() {
        let mut nic = SimNic::new(models::qdma_default(), 16).unwrap();
        nic.configure_tx(h2c(12));
        // TX ring default capacity; fill until Full.
        let d = qdma_desc(0x1000, 8, None);
        let mut posted = 0;
        loop {
            match nic.post_tx(&d) {
                Ok(()) => posted += 1,
                Err(NicError::Ring(RingError::Full)) => break,
                Err(e) => panic!("unexpected {e}"),
            }
            assert!(posted < 100_000, "ring never fills?");
        }
        assert_eq!(posted, nic.tx_ring.capacity());
    }
}
