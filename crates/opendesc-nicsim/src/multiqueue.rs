//! Multi-queue NIC: several receive queues with independent per-queue
//! contexts — the paper's §3 note that "applications might use multiple
//! OpenDesc instances with different intents to obtain different queues
//! tailored for different kinds of traffic".
//!
//! Each queue is a full [`SimNic`] instance sharing the model's contract
//! but programmed with its own context (its own completion layout). The
//! device steers arriving frames to queues by RSS, by an exact-match
//! port table (flow-director style), or round-robin.

use crate::models::NicModel;
use crate::nic::{NicError, SimNic};
use opendesc_softnic::wire::ParsedFrame;
use opendesc_softnic::{rss_ipv4, rss_ipv4_l4, MSFT_RSS_KEY};

/// How the device picks a queue for an arriving frame.
#[derive(Debug, Clone)]
pub enum SteerPolicy {
    /// Toeplitz RSS over the flow tuple, modulo queue count.
    Rss,
    /// Exact-match on L4 destination port; unmatched traffic goes to
    /// `default` (flow-director / ntuple style).
    DstPort {
        table: Vec<(u16, usize)>,
        default: usize,
    },
    /// Round-robin (stress/testing).
    RoundRobin,
}

/// A NIC with several independently configured receive queues.
pub struct MultiQueueNic {
    pub queues: Vec<SimNic>,
    policy: SteerPolicy,
    rr_next: usize,
    /// Frames steered per queue (diagnostics).
    pub steered: Vec<u64>,
}

impl MultiQueueNic {
    /// Build `n` queues of the same model, `ring` entries each.
    pub fn new(
        model: NicModel,
        n: usize,
        ring: usize,
        policy: SteerPolicy,
    ) -> Result<Self, NicError> {
        assert!(n > 0, "at least one queue");
        let mut queues = Vec::with_capacity(n);
        for _ in 0..n {
            queues.push(SimNic::new(model.clone(), ring)?);
        }
        Ok(MultiQueueNic {
            steered: vec![0; queues.len()],
            queues,
            policy,
            rr_next: 0,
        })
    }

    /// Number of queues.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// The queue an arriving frame steers to under the current policy.
    pub fn steer(&mut self, frame: &[u8]) -> usize {
        let n = self.queues.len();
        match &self.policy {
            SteerPolicy::RoundRobin => {
                let q = self.rr_next;
                self.rr_next = (self.rr_next + 1) % n;
                q
            }
            SteerPolicy::DstPort { table, default } => {
                let port = ParsedFrame::parse(frame)
                    .and_then(|p| p.ports())
                    .map(|(_, d)| d);
                match port {
                    Some(d) => table
                        .iter()
                        .find(|(p, _)| *p == d)
                        .map(|(_, q)| *q)
                        .unwrap_or(*default),
                    None => *default,
                }
                .min(n - 1)
            }
            SteerPolicy::Rss => {
                let h = ParsedFrame::parse(frame)
                    .and_then(|p| {
                        let ip = p.ipv4?;
                        Some(match p.ports() {
                            Some((sp, dp)) => {
                                rss_ipv4_l4(&MSFT_RSS_KEY, ip.src(), ip.dst(), sp, dp)
                            }
                            None => rss_ipv4(&MSFT_RSS_KEY, ip.src(), ip.dst()),
                        })
                    })
                    .unwrap_or(0);
                (h as usize) % n
            }
        }
    }

    /// Deliver one frame from the wire into whichever queue it steers to.
    /// Returns the queue index.
    pub fn deliver(&mut self, frame: &[u8]) -> Result<usize, NicError> {
        let q = self.steer(frame);
        self.queues[q].deliver(frame)?;
        self.steered[q] += 1;
        Ok(q)
    }

    /// Mutable access to one queue (for configuration / host polling).
    pub fn queue_mut(&mut self, i: usize) -> &mut SimNic {
        &mut self.queues[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::pktgen::{PktGen, Workload};
    use opendesc_ir::pred::FieldRef;
    use opendesc_ir::Assignment;

    fn frames(n: usize) -> Vec<Vec<u8>> {
        PktGen::new(Workload {
            flows: 32,
            ..Workload::default()
        })
        .batch(n)
    }

    #[test]
    fn rss_steering_is_flow_stable_and_spread() {
        let mut nic = MultiQueueNic::new(models::mlx5(), 4, 1024, SteerPolicy::Rss).unwrap();
        let fs = frames(400);
        // Same frame always steers identically.
        let q0 = nic.steer(&fs[0]);
        for _ in 0..5 {
            assert_eq!(nic.steer(&fs[0]), q0);
        }
        for f in &fs {
            nic.deliver(f).unwrap();
        }
        // All queues see some traffic (32 flows over 4 queues).
        for (i, n) in nic.steered.iter().enumerate() {
            assert!(*n > 0, "queue {i} starved: {:?}", nic.steered);
        }
        assert_eq!(nic.steered.iter().sum::<u64>(), 400);
    }

    #[test]
    fn dst_port_steering_matches_table() {
        let mut nic = MultiQueueNic::new(
            models::e1000e(),
            3,
            64,
            SteerPolicy::DstPort {
                table: vec![(11211, 1), (443, 2)],
                default: 0,
            },
        )
        .unwrap();
        let kvs = opendesc_softnic::testpkt::udp4(
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            5,
            11211,
            b"get k\r\n",
            None,
        );
        let https = opendesc_softnic::testpkt::tcp4([1, 1, 1, 1], [2, 2, 2, 2], 5, 443, b"", None);
        let other = opendesc_softnic::testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 5, 9999, b"", None);
        assert_eq!(nic.deliver(&kvs).unwrap(), 1);
        assert_eq!(nic.deliver(&https).unwrap(), 2);
        assert_eq!(nic.deliver(&other).unwrap(), 0);
    }

    #[test]
    fn round_robin_cycles() {
        let mut nic =
            MultiQueueNic::new(models::e1000_legacy(), 2, 16, SteerPolicy::RoundRobin).unwrap();
        let f = frames(4);
        assert_eq!(nic.deliver(&f[0]).unwrap(), 0);
        assert_eq!(nic.deliver(&f[1]).unwrap(), 1);
        assert_eq!(nic.deliver(&f[2]).unwrap(), 0);
    }

    #[test]
    fn queues_hold_independent_contexts() {
        // Queue 0: mini-RSS CQE; queue 1: full CQE. Same device, two
        // completion formats live simultaneously.
        let mut nic = MultiQueueNic::new(models::mlx5(), 2, 16, SteerPolicy::RoundRobin).unwrap();
        let mut ctx0 = Assignment::new();
        ctx0.insert(FieldRef::new(&["ctx", "cqe_format"], 2), 1);
        nic.queue_mut(0).configure(ctx0).unwrap();
        let mut ctx1 = Assignment::new();
        ctx1.insert(FieldRef::new(&["ctx", "cqe_format"], 2), 0);
        nic.queue_mut(1).configure(ctx1).unwrap();

        let f = frames(2);
        nic.deliver(&f[0]).unwrap(); // → q0
        nic.deliver(&f[1]).unwrap(); // → q1
        let (_, c0) = nic.queue_mut(0).receive().unwrap();
        let (_, c1) = nic.queue_mut(1).receive().unwrap();
        assert_eq!(c0.len(), 8, "mini CQE on queue 0");
        assert_eq!(c1.len(), 64, "full CQE on queue 1");
    }
}
