//! Multi-queue NIC: several receive queues with independent per-queue
//! contexts — the paper's §3 note that "applications might use multiple
//! OpenDesc instances with different intents to obtain different queues
//! tailored for different kinds of traffic".
//!
//! Each queue is a full [`SimNic`] instance sharing the model's contract
//! but programmed with its own context (its own completion layout). The
//! device steers arriving frames to queues by RSS, by an exact-match
//! port table (flow-director style), or round-robin.
//!
//! Steering itself lives in [`Steerer`], an immutable value computed once
//! at configuration time: RSS resolves through a real-NIC-style 128-entry
//! RETA indirection table instead of a per-frame modulo, and the verdict
//! carries the frame parse and Toeplitz hash forward so neither is
//! recomputed by the queue's offload engine or the host's shim plan. The
//! sharded RX engine shares the same `Steerer` across worker threads
//! (it is `Send + Sync`), which is what keeps parallel steering
//! bit-identical to the sequential device.

use crate::models::NicModel;
use crate::nic::{NicError, SimNic};
use opendesc_softnic::wire::ParsedFrame;
use opendesc_softnic::{rss_ipv4, rss_ipv4_l4, MSFT_RSS_KEY};
use std::ops::{Deref, DerefMut};

/// A value padded out to its own cache line.
///
/// Diagnostics counters on the hot path must not create false sharing
/// once queues are drained by parallel workers: each worker's cells live
/// on lines no other worker writes. `align(64)` covers the common x86/arm
/// line size; on wider-line parts two cells may share, which costs
/// nothing in correctness.
#[derive(Debug, Clone, Copy, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    pub value: T,
}

impl<T> CachePadded<T> {
    pub fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// How the device picks a queue for an arriving frame.
#[derive(Debug, Clone)]
pub enum SteerPolicy {
    /// Toeplitz RSS over the flow tuple, resolved through the RETA.
    Rss,
    /// Exact-match on L4 destination port; unmatched traffic goes to
    /// `default` (flow-director / ntuple style).
    DstPort {
        table: Vec<(u16, usize)>,
        default: usize,
    },
    /// Round-robin (stress/testing).
    RoundRobin,
}

/// Entries in the RSS redirection table. Real 82599/mlx5-class devices
/// use 128 (or a small multiple); the hash indexes the table with its low
/// bits and the table entry names the queue, so re-balancing rewrites the
/// table — never the per-frame path.
pub const RETA_SIZE: usize = 128;

/// Everything the steering stage learned about one frame. The parse and
/// hash ride along so downstream stages (offload engine, host shim plan)
/// reuse instead of recompute — the device pipeline parses once.
#[derive(Debug)]
pub struct SteerVerdict<'f> {
    /// Queue the frame steers to.
    pub queue: usize,
    /// The steering-time parse (absent only for unparseable frames).
    pub parsed: Option<ParsedFrame<'f>>,
    /// The steering-time Toeplitz hash (RSS policy, IP frames only).
    pub rss: Option<u32>,
    /// The RETA bucket (`hash & (RETA_SIZE-1)`) that named the queue —
    /// the unit of migration for adaptive rebalancing. RSS policy only.
    pub bucket: Option<usize>,
}

/// Immutable steering state, built once when the queue set is configured.
///
/// `Steerer` is deliberately free of interior mutability so one instance
/// can be shared by reference across worker threads; the only stateful
/// policy (round-robin) takes its cursor as an explicit argument
/// (`idx`), which also makes sharded steering reproducible: frame `i` of
/// a stream steers identically no matter which worker asks.
#[derive(Debug, Clone)]
pub struct Steerer {
    policy: SteerPolicy,
    /// RSS redirection table: `reta[hash & (RETA_SIZE-1)]` names the
    /// queue. Computed once here; per-frame steering is a mask + load.
    reta: [u16; RETA_SIZE],
    queues: usize,
}

impl Steerer {
    /// Build steering state for `queues` queues under `policy`. The RETA
    /// is filled round-robin (`i % queues`), the standard reset layout.
    pub fn new(policy: SteerPolicy, queues: usize) -> Steerer {
        assert!(queues > 0, "at least one queue");
        let mut reta = [0u16; RETA_SIZE];
        for (i, e) in reta.iter_mut().enumerate() {
            *e = (i % queues) as u16;
        }
        Steerer {
            policy,
            reta,
            queues,
        }
    }

    /// Number of queues steered across.
    pub fn queues(&self) -> usize {
        self.queues
    }

    /// The active policy.
    pub fn policy(&self) -> &SteerPolicy {
        &self.policy
    }

    /// The redirection table (diagnostics / tests).
    pub fn reta(&self) -> &[u16; RETA_SIZE] {
        &self.reta
    }

    /// Repoint one RETA bucket at `queue` — the rebalancer's migration
    /// primitive. Like a real device's RETA write this changes where
    /// *future* frames of the bucket's flows land; callers that need
    /// reorder-freedom must drain the bucket's old queue first
    /// (drain-before-remap).
    pub fn set_reta(&mut self, bucket: usize, queue: u16) {
        assert!(bucket < RETA_SIZE, "bucket {bucket} out of range");
        assert!((queue as usize) < self.queues, "queue {queue} out of range");
        self.reta[bucket] = queue;
    }

    /// Restore the reset round-robin RETA layout (`i % queues`).
    pub fn reset_reta(&mut self) {
        for (i, e) in self.reta.iter_mut().enumerate() {
            *e = (i % self.queues) as u16;
        }
    }

    /// Steer frame `idx` of a stream. `idx` only matters for round-robin
    /// (the cursor); content-based policies ignore it, so any caller that
    /// knows a frame's stream position steers it identically — the
    /// property sharded per-queue generators rely on.
    pub fn steer<'f>(&self, idx: u64, frame: &'f [u8]) -> SteerVerdict<'f> {
        let parsed = ParsedFrame::parse(frame);
        match &self.policy {
            SteerPolicy::RoundRobin => SteerVerdict {
                queue: (idx % self.queues as u64) as usize,
                parsed,
                rss: None,
                bucket: None,
            },
            SteerPolicy::DstPort { table, default } => {
                let port = parsed.as_ref().and_then(|p| p.ports()).map(|(_, d)| d);
                let queue = match port {
                    Some(d) => table
                        .iter()
                        .find(|(p, _)| *p == d)
                        .map(|(_, q)| *q)
                        .unwrap_or(*default),
                    None => *default,
                }
                .min(self.queues - 1);
                SteerVerdict {
                    queue,
                    parsed,
                    rss: None,
                    bucket: None,
                }
            }
            SteerPolicy::Rss => {
                let rss = parsed.as_ref().and_then(|p| {
                    let ip = p.ipv4?;
                    Some(match p.ports() {
                        Some((sp, dp)) => rss_ipv4_l4(&MSFT_RSS_KEY, ip.src(), ip.dst(), sp, dp),
                        None => rss_ipv4(&MSFT_RSS_KEY, ip.src(), ip.dst()),
                    })
                });
                let (queue, bucket) = match rss {
                    Some(h) => {
                        let b = h as usize & (RETA_SIZE - 1);
                        (self.reta[b] as usize, Some(b))
                    }
                    None => (0, None),
                };
                SteerVerdict {
                    queue,
                    parsed,
                    rss,
                    bucket,
                }
            }
        }
    }
}

/// Per-queue steering diagnostics. Lives inside a [`CachePadded`] cell so
/// counting a frame never dirties a line another queue's worker reads.
#[derive(Debug, Clone, Copy, Default)]
pub struct SteerStats {
    /// Frames steered to this queue.
    pub steered: u64,
}

/// A NIC with several independently configured receive queues.
pub struct MultiQueueNic {
    pub queues: Vec<SimNic>,
    steerer: Steerer,
    /// Round-robin cursor on its own line (it is written per frame; the
    /// per-queue stat cells must not share it).
    rr: CachePadded<u64>,
    /// Frames steered per queue, one padded cell per queue.
    stats: Vec<CachePadded<SteerStats>>,
}

impl MultiQueueNic {
    /// Build `n` queues of the same model, `ring` entries each.
    pub fn new(
        model: NicModel,
        n: usize,
        ring: usize,
        policy: SteerPolicy,
    ) -> Result<Self, NicError> {
        assert!(n > 0, "at least one queue");
        let mut queues = Vec::with_capacity(n);
        for _ in 0..n {
            queues.push(SimNic::new(model.clone(), ring)?);
        }
        Ok(MultiQueueNic {
            stats: (0..n).map(|_| CachePadded::default()).collect(),
            steerer: Steerer::new(policy, n),
            rr: CachePadded::default(),
            queues,
        })
    }

    /// Number of queues.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// The immutable steering state (shareable across worker threads).
    pub fn steerer(&self) -> &Steerer {
        &self.steerer
    }

    /// Round-robin cursor advance: only that policy consumes stream
    /// positions, preserving the historical "steer() cycles" behaviour.
    fn next_index(&mut self) -> u64 {
        match self.steerer.policy() {
            SteerPolicy::RoundRobin => {
                let i = self.rr.value;
                self.rr.value += 1;
                i
            }
            _ => 0,
        }
    }

    /// The queue an arriving frame steers to under the current policy.
    pub fn steer(&mut self, frame: &[u8]) -> usize {
        let idx = self.next_index();
        self.steerer.steer(idx, frame).queue
    }

    /// Deliver one frame from the wire into whichever queue it steers to,
    /// handing the steering-time parse and hash to the queue so neither
    /// is recomputed. Returns the queue index.
    pub fn deliver(&mut self, frame: &[u8]) -> Result<usize, NicError> {
        let idx = self.next_index();
        let v = self.steerer.steer(idx, frame);
        self.queues[v.queue].deliver_steered(frame, v.parsed.as_ref(), v.rss)?;
        self.stats[v.queue].value.steered += 1;
        Ok(v.queue)
    }

    /// Frames steered to queue `q` so far.
    pub fn steered(&self, q: usize) -> u64 {
        self.stats[q].steered
    }

    /// Steering counts for every queue (coordinator aggregation view).
    pub fn steered_counts(&self) -> Vec<u64> {
        self.stats.iter().map(|c| c.steered).collect()
    }

    /// Mutable access to one queue (for configuration / host polling).
    pub fn queue_mut(&mut self, i: usize) -> &mut SimNic {
        &mut self.queues[i]
    }

    /// Device-side counters merged across every queue — the whole-NIC
    /// view of delivered frames and injected faults.
    pub fn merged_stats(&self) -> crate::nic::NicStats {
        let mut total = crate::nic::NicStats::default();
        for q in &self.queues {
            total.merge(&q.stats);
        }
        total
    }

    /// Configure fault injection on every queue, deriving each queue's
    /// RNG seed from `faults.seed` plus its index so queues fault
    /// independently but the whole device is deterministic.
    pub fn set_faults_all(&mut self, faults: crate::nic::FaultConfig) -> Result<(), NicError> {
        faults.validate()?;
        for (i, q) in self.queues.iter_mut().enumerate() {
            let mut per_queue = faults;
            per_queue.seed = faults.seed.wrapping_add(i as u64);
            q.set_faults(per_queue)?;
        }
        Ok(())
    }

    /// Tear the NIC apart into its queues, for handing each to a worker
    /// thread (the sharded RX engine's ownership model: one queue, one
    /// worker, no sharing). The steerer should be taken with
    /// [`steerer`](MultiQueueNic::steerer) first if steering continues.
    pub fn into_queues(self) -> Vec<SimNic> {
        self.queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::pktgen::{PktGen, Workload};
    use opendesc_ir::pred::FieldRef;
    use opendesc_ir::Assignment;

    fn frames(n: usize) -> Vec<Vec<u8>> {
        PktGen::new(Workload {
            flows: 32,
            ..Workload::default()
        })
        .batch(n)
    }

    #[test]
    fn rss_steering_is_flow_stable_and_spread() {
        let mut nic = MultiQueueNic::new(models::mlx5(), 4, 1024, SteerPolicy::Rss).unwrap();
        let fs = frames(400);
        // Same frame always steers identically.
        let q0 = nic.steer(&fs[0]);
        for _ in 0..5 {
            assert_eq!(nic.steer(&fs[0]), q0);
        }
        for f in &fs {
            nic.deliver(f).unwrap();
        }
        // All queues see some traffic (32 flows over 4 queues).
        for (i, n) in nic.steered_counts().iter().enumerate() {
            assert!(*n > 0, "queue {i} starved: {:?}", nic.steered_counts());
        }
        assert_eq!(nic.steered_counts().iter().sum::<u64>(), 400);
    }

    #[test]
    fn reta_is_roundrobin_and_drives_rss_steering() {
        let nic = MultiQueueNic::new(models::mlx5(), 3, 64, SteerPolicy::Rss).unwrap();
        let st = nic.steerer();
        assert_eq!(st.reta().len(), RETA_SIZE);
        for (i, e) in st.reta().iter().enumerate() {
            assert_eq!(*e as usize, i % 3, "reset RETA is round-robin");
        }
        // Steering == hash → RETA lookup, no per-frame modulo over n.
        for f in frames(50) {
            let v = st.steer(0, &f);
            let h = v.rss.expect("generated frames are IPv4");
            assert_eq!(v.queue, st.reta()[h as usize & (RETA_SIZE - 1)] as usize);
        }
    }

    #[test]
    fn reta_rewrite_moves_exactly_one_bucket() {
        let mut st = Steerer::new(SteerPolicy::Rss, 4);
        let fs = frames(100);
        let before: Vec<_> = fs.iter().map(|f| st.steer(0, f).queue).collect();
        // Move bucket of the first frame somewhere else; only frames in
        // that bucket may change queue, and they all land on the target.
        let moved = st.steer(0, &fs[0]).bucket.expect("ipv4 under rss");
        let target = (st.reta()[moved] + 1) % 4;
        st.set_reta(moved, target);
        for (f, was) in fs.iter().zip(&before) {
            let v = st.steer(0, f);
            if v.bucket == Some(moved) {
                assert_eq!(v.queue, target as usize, "migrated bucket lands on target");
            } else {
                assert_eq!(v.queue, *was, "other buckets are untouched");
            }
        }
        st.reset_reta();
        for (i, e) in st.reta().iter().enumerate() {
            assert_eq!(*e as usize, i % 4);
        }
    }

    #[test]
    fn steer_verdict_carries_parse_and_hash() {
        let st = Steerer::new(SteerPolicy::Rss, 2);
        let f = frames(1).remove(0);
        let v = st.steer(0, &f);
        assert!(v.parsed.is_some(), "steering parse rides along");
        assert!(v.rss.is_some());
        // Non-IP garbage: queue 0, no parse-derived state.
        let garbage = vec![0u8; 6];
        let v = st.steer(0, &garbage);
        assert_eq!(v.queue, 0);
        assert!(v.parsed.is_none());
        assert!(v.rss.is_none());
    }

    #[test]
    fn dst_port_steering_matches_table() {
        let mut nic = MultiQueueNic::new(
            models::e1000e(),
            3,
            64,
            SteerPolicy::DstPort {
                table: vec![(11211, 1), (443, 2)],
                default: 0,
            },
        )
        .unwrap();
        let kvs = opendesc_softnic::testpkt::udp4(
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            5,
            11211,
            b"get k\r\n",
            None,
        );
        let https = opendesc_softnic::testpkt::tcp4([1, 1, 1, 1], [2, 2, 2, 2], 5, 443, b"", None);
        let other = opendesc_softnic::testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 5, 9999, b"", None);
        assert_eq!(nic.deliver(&kvs).unwrap(), 1);
        assert_eq!(nic.deliver(&https).unwrap(), 2);
        assert_eq!(nic.deliver(&other).unwrap(), 0);
    }

    #[test]
    fn round_robin_cycles() {
        let mut nic =
            MultiQueueNic::new(models::e1000_legacy(), 2, 16, SteerPolicy::RoundRobin).unwrap();
        let f = frames(4);
        assert_eq!(nic.deliver(&f[0]).unwrap(), 0);
        assert_eq!(nic.deliver(&f[1]).unwrap(), 1);
        assert_eq!(nic.deliver(&f[2]).unwrap(), 0);
    }

    #[test]
    fn queues_hold_independent_contexts() {
        // Queue 0: mini-RSS CQE; queue 1: full CQE. Same device, two
        // completion formats live simultaneously.
        let mut nic = MultiQueueNic::new(models::mlx5(), 2, 16, SteerPolicy::RoundRobin).unwrap();
        let mut ctx0 = Assignment::new();
        ctx0.insert(FieldRef::new(&["ctx", "cqe_format"], 2), 1);
        nic.queue_mut(0).configure(ctx0).unwrap();
        let mut ctx1 = Assignment::new();
        ctx1.insert(FieldRef::new(&["ctx", "cqe_format"], 2), 0);
        nic.queue_mut(1).configure(ctx1).unwrap();

        let f = frames(2);
        nic.deliver(&f[0]).unwrap(); // → q0
        nic.deliver(&f[1]).unwrap(); // → q1
        let (_, c0) = nic.queue_mut(0).receive().unwrap();
        let (_, c1) = nic.queue_mut(1).receive().unwrap();
        assert_eq!(c0.len(), 8, "mini CQE on queue 0");
        assert_eq!(c1.len(), 64, "full CQE on queue 1");
    }

    #[test]
    fn into_queues_hands_out_ownership() {
        let mut nic = MultiQueueNic::new(models::e1000e(), 2, 16, SteerPolicy::Rss).unwrap();
        for f in frames(8) {
            nic.deliver(&f).unwrap();
        }
        let steered = nic.steered_counts();
        let mut queues = nic.into_queues();
        assert_eq!(queues.len(), 2);
        for (q, nic) in queues.iter_mut().enumerate() {
            let mut got = 0u64;
            while nic.receive().is_some() {
                got += 1;
            }
            assert_eq!(got, steered[q], "queue {q} pending == steered");
        }
    }

    #[test]
    fn cache_padded_cells_do_not_share_lines() {
        assert!(std::mem::align_of::<CachePadded<SteerStats>>() >= 64);
        assert!(std::mem::size_of::<CachePadded<SteerStats>>() >= 64);
        let cells: Vec<CachePadded<SteerStats>> = (0..4).map(|_| CachePadded::default()).collect();
        for w in cells.windows(2) {
            let a = &w[0] as *const _ as usize;
            let b = &w[1] as *const _ as usize;
            assert!(b - a >= 64, "adjacent cells {a:#x}/{b:#x} share a line");
        }
    }
}
