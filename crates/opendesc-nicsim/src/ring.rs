//! Descriptor/completion rings: the shared-memory structures host and NIC
//! exchange through (paper §3, channels ① and ④).
//!
//! A ring is a power-of-two array of fixed-size byte slots with a
//! producer index, a consumer index, and a doorbell counter. The same
//! type serves both directions: the host produces TX descriptors the NIC
//! consumes, and the NIC produces RX completions the host consumes.

use std::fmt;

/// Error type for ring operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// No free slot: producer caught up with consumer.
    Full,
    /// Entry larger than the ring's slot size.
    EntryTooLarge { len: usize, slot: usize },
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::Full => write!(f, "ring full"),
            RingError::EntryTooLarge { len, slot } => {
                write!(f, "entry of {len} bytes exceeds slot size {slot}")
            }
        }
    }
}

impl std::error::Error for RingError {}

/// A single-producer single-consumer descriptor ring.
#[derive(Debug, Clone)]
pub struct DescRing {
    slots: Vec<Vec<u8>>,
    /// Valid byte length of each slot's current entry.
    lens: Vec<u16>,
    /// Writeback sequence tag of each slot's current entry — the
    /// generation word a real NIC embeds in the descriptor so the host
    /// can tell a fresh writeback from a stale or re-DMAed one.
    seqs: Vec<u64>,
    slot_size: usize,
    mask: usize,
    /// Total entries ever produced.
    prod: u64,
    /// Total entries ever consumed.
    cons: u64,
    /// Doorbell value: producer's published index (host MMIO write in a
    /// real device; here just a counter the consumer reads).
    doorbell: u64,
}

impl DescRing {
    /// Create a ring of `capacity` slots (rounded up to a power of two) of
    /// `slot_size` bytes each.
    pub fn new(capacity: usize, slot_size: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        DescRing {
            slots: vec![vec![0u8; slot_size]; cap],
            lens: vec![0; cap],
            seqs: vec![0; cap],
            slot_size,
            mask: cap - 1,
            prod: 0,
            cons: 0,
            doorbell: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    pub fn slot_size(&self) -> usize {
        self.slot_size
    }

    /// Entries produced but not yet consumed.
    pub fn len(&self) -> usize {
        (self.prod - self.cons) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.prod == self.cons
    }

    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    /// Free slots available to the producer.
    pub fn free(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Write one entry. Does not publish it — call [`ring_doorbell`] to
    /// make produced entries visible, as a driver batches doorbell writes.
    ///
    /// [`ring_doorbell`]: DescRing::ring_doorbell
    pub fn produce(&mut self, entry: &[u8]) -> Result<(), RingError> {
        let seq = self.prod;
        self.produce_tagged(entry, seq)
    }

    /// [`produce`](DescRing::produce) with an explicit sequence tag. An
    /// honest device tags each entry with its absolute produce index; a
    /// faulty one may re-use a tag (duplicated writeback) or write one
    /// from a previous ring generation (stale DD bit).
    pub fn produce_tagged(&mut self, entry: &[u8], seq: u64) -> Result<(), RingError> {
        if entry.len() > self.slot_size {
            return Err(RingError::EntryTooLarge {
                len: entry.len(),
                slot: self.slot_size,
            });
        }
        if self.is_full() {
            return Err(RingError::Full);
        }
        let idx = (self.prod as usize) & self.mask;
        self.slots[idx][..entry.len()].copy_from_slice(entry);
        self.lens[idx] = entry.len() as u16;
        self.seqs[idx] = seq;
        self.prod += 1;
        Ok(())
    }

    /// Publish all produced entries (one MMIO write in hardware). Returns
    /// how many new entries became visible.
    pub fn ring_doorbell(&mut self) -> u64 {
        let newly = self.prod - self.doorbell;
        self.doorbell = self.prod;
        newly
    }

    /// Entries published and not yet consumed.
    pub fn published(&self) -> usize {
        (self.doorbell - self.cons) as usize
    }

    /// Consume the next published entry, if any.
    pub fn consume(&mut self) -> Option<&[u8]> {
        self.consume_with_seq().map(|(e, _)| e)
    }

    /// [`consume`](DescRing::consume) that also surfaces the entry's
    /// sequence tag, so the host can run generation/duplicate checks.
    pub fn consume_with_seq(&mut self) -> Option<(&[u8], u64)> {
        if self.cons >= self.doorbell {
            return None;
        }
        let idx = (self.cons as usize) & self.mask;
        self.cons += 1;
        Some((&self.slots[idx][..self.lens[idx] as usize], self.seqs[idx]))
    }

    /// Re-tag every produced-but-unconsumed entry (published or not)
    /// with a previous-pass generation word — `seq - capacity`, the
    /// same arithmetic the stale-generation fault class uses. A
    /// device-side relayout invalidates old-generation writebacks this
    /// way: records serialized under the outgoing layout cannot be
    /// described by the incoming one, so the device marks them stale
    /// and the host's sequence admission discards them instead of
    /// misparsing them. Returns the number of entries re-tagged.
    pub fn retag_pending_stale(&mut self) -> usize {
        let cap = self.capacity() as u64;
        let mut i = self.cons;
        while i < self.prod {
            let idx = (i as usize) & self.mask;
            self.seqs[idx] = self.seqs[idx].wrapping_sub(cap);
            i += 1;
        }
        (self.prod - self.cons) as usize
    }

    /// Peek at the next published entry without consuming.
    pub fn peek(&self) -> Option<&[u8]> {
        if self.cons >= self.doorbell {
            return None;
        }
        let idx = (self.cons as usize) & self.mask;
        Some(&self.slots[idx][..self.lens[idx] as usize])
    }

    /// Total produced over the ring's lifetime.
    pub fn total_produced(&self) -> u64 {
        self.prod
    }

    /// Total consumed over the ring's lifetime.
    pub fn total_consumed(&self) -> u64 {
        self.cons
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn produce_publish_consume_roundtrip() {
        let mut r = DescRing::new(4, 16);
        r.produce(b"abc").unwrap();
        assert_eq!(r.consume(), None, "unpublished entries invisible");
        assert_eq!(r.ring_doorbell(), 1);
        assert_eq!(r.consume(), Some(&b"abc"[..]));
        assert_eq!(r.consume(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(DescRing::new(5, 8).capacity(), 8);
        assert_eq!(DescRing::new(1, 8).capacity(), 2);
    }

    #[test]
    fn full_ring_rejects() {
        let mut r = DescRing::new(2, 8);
        r.produce(b"1").unwrap();
        r.produce(b"2").unwrap();
        assert_eq!(r.produce(b"3"), Err(RingError::Full));
        r.ring_doorbell();
        r.consume().unwrap();
        r.produce(b"3").unwrap(); // slot freed
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut r = DescRing::new(2, 4);
        assert_eq!(
            r.produce(b"12345"),
            Err(RingError::EntryTooLarge { len: 5, slot: 4 })
        );
    }

    #[test]
    fn wraparound_preserves_order() {
        let mut r = DescRing::new(4, 8);
        for round in 0..10u8 {
            for i in 0..4u8 {
                r.produce(&[round, i]).unwrap();
            }
            r.ring_doorbell();
            for i in 0..4u8 {
                assert_eq!(r.consume(), Some(&[round, i][..]));
            }
        }
        assert_eq!(r.total_produced(), 40);
        assert_eq!(r.total_consumed(), 40);
    }

    #[test]
    fn sequence_tags_default_to_produce_index_and_survive_wraparound() {
        let mut r = DescRing::new(4, 8);
        for round in 0..3u64 {
            for i in 0..4u64 {
                r.produce(&[round as u8, i as u8]).unwrap();
            }
            r.ring_doorbell();
            for i in 0..4u64 {
                let (_, seq) = r.consume_with_seq().unwrap();
                assert_eq!(seq, round * 4 + i);
            }
        }
        // A faulty producer can tag an entry with an old generation.
        r.produce_tagged(b"x", 2).unwrap();
        r.ring_doorbell();
        assert_eq!(r.consume_with_seq().unwrap().1, 2);
    }

    #[test]
    fn doorbell_batching_publishes_in_groups() {
        let mut r = DescRing::new(8, 8);
        r.produce(b"a").unwrap();
        r.produce(b"b").unwrap();
        assert_eq!(r.published(), 0);
        assert_eq!(r.ring_doorbell(), 2);
        assert_eq!(r.published(), 2);
        r.produce(b"c").unwrap();
        assert_eq!(r.published(), 2, "third entry not yet published");
        assert_eq!(r.peek(), Some(&b"a"[..]));
    }

    proptest! {
        /// FIFO order holds under arbitrary interleavings of produce,
        /// doorbell, and consume.
        #[test]
        fn fifo_under_random_ops(ops in proptest::collection::vec(0u8..3, 1..200)) {
            let mut r = DescRing::new(8, 8);
            let mut next_write: u64 = 0;
            let mut next_read: u64 = 0;
            for op in ops {
                match op {
                    0 => {
                        if r.produce(&next_write.to_be_bytes()).is_ok() {
                            next_write += 1;
                        }
                    }
                    1 => { r.ring_doorbell(); }
                    _ => {
                        if let Some(e) = r.consume() {
                            let v = u64::from_be_bytes(e.try_into().unwrap());
                            prop_assert_eq!(v, next_read);
                            next_read += 1;
                        }
                    }
                }
            }
            prop_assert!(next_read <= next_write);
        }
    }
}
