//! PCIe/DMA cost model.
//!
//! The selection objective's second term (Eq. 1) favors smaller completion
//! records because every completion crosses the PCIe link. This model
//! charges a fixed per-transaction overhead (TLP header, DLLP, flow
//! control) plus a per-byte cost derived from link bandwidth, quantized to
//! the TLP payload granularity — enough fidelity for the crossover
//! behaviour experiments E4/E7 without simulating the link layer.

/// DMA link/model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaConfig {
    /// Usable link bandwidth in gigabytes per second.
    pub bandwidth_gbps: f64,
    /// Fixed per-transaction cost in nanoseconds (TLP + DLLP overheads).
    pub per_txn_ns: f64,
    /// Payload granularity in bytes: transfers round up to a multiple.
    pub granularity: u32,
}

impl Default for DmaConfig {
    fn default() -> Self {
        // Roughly PCIe 3.0 x8 effective: ~7.9 GB/s, ~50 ns per posted
        // write, 8-byte quantization.
        DmaConfig {
            bandwidth_gbps: 7.9,
            per_txn_ns: 50.0,
            granularity: 8,
        }
    }
}

impl DmaConfig {
    /// A slower link (useful for sweeping the E4/E7 crossover).
    pub fn with_bandwidth(mut self, gbps: f64) -> Self {
        self.bandwidth_gbps = gbps;
        self
    }

    /// Cost in ns of one DMA write of `bytes` bytes.
    pub fn write_cost_ns(&self, bytes: u32) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let quantized = bytes.div_ceil(self.granularity) * self.granularity;
        self.per_txn_ns + quantized as f64 / self.bandwidth_gbps
    }

    /// Cost of a batched write: one transaction overhead amortized over
    /// `count` records of `bytes` each, contiguous in the ring.
    pub fn batched_write_cost_ns(&self, bytes: u32, count: u32) -> f64 {
        if count == 0 || bytes == 0 {
            return 0.0;
        }
        let total = bytes * count;
        let quantized = total.div_ceil(self.granularity) * self.granularity;
        self.per_txn_ns + quantized as f64 / self.bandwidth_gbps
    }
}

/// Accumulates DMA time for one direction of one queue.
#[derive(Debug, Clone, Default)]
pub struct DmaMeter {
    pub bytes: u64,
    pub transactions: u64,
    pub busy_ns: f64,
}

impl DmaMeter {
    /// Record one write and return its cost.
    pub fn record(&mut self, cfg: &DmaConfig, bytes: u32) -> f64 {
        let cost = cfg.write_cost_ns(bytes);
        self.bytes += bytes as u64;
        self.transactions += 1;
        self.busy_ns += cost;
        cost
    }

    /// Record a batched write of `count` records and return its cost.
    pub fn record_batch(&mut self, cfg: &DmaConfig, bytes: u32, count: u32) -> f64 {
        let cost = cfg.batched_write_cost_ns(bytes, count);
        self.bytes += (bytes as u64) * (count as u64);
        self.transactions += 1;
        self.busy_ns += cost;
        cost
    }

    /// Effective goodput in GB/s over the busy time.
    pub fn effective_gbps(&self) -> f64 {
        if self.busy_ns == 0.0 {
            0.0
        } else {
            self.bytes as f64 / self.busy_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_cost_nothing() {
        let cfg = DmaConfig::default();
        assert_eq!(cfg.write_cost_ns(0), 0.0);
        assert_eq!(cfg.batched_write_cost_ns(8, 0), 0.0);
    }

    #[test]
    fn cost_monotone_in_size() {
        let cfg = DmaConfig::default();
        assert!(cfg.write_cost_ns(8) < cfg.write_cost_ns(64));
        assert!(cfg.write_cost_ns(64) < cfg.write_cost_ns(512));
    }

    #[test]
    fn quantization_rounds_up() {
        let cfg = DmaConfig {
            bandwidth_gbps: 1.0,
            per_txn_ns: 0.0,
            granularity: 8,
        };
        assert_eq!(cfg.write_cost_ns(1), 8.0);
        assert_eq!(cfg.write_cost_ns(8), 8.0);
        assert_eq!(cfg.write_cost_ns(9), 16.0);
    }

    #[test]
    fn batching_amortizes_transaction_overhead() {
        let cfg = DmaConfig::default();
        let single = 32.0 * cfg.write_cost_ns(8);
        let batched = cfg.batched_write_cost_ns(8, 32);
        assert!(
            batched < single / 2.0,
            "batched {batched} should be far below {single}"
        );
    }

    #[test]
    fn meter_accumulates() {
        let cfg = DmaConfig::default();
        let mut m = DmaMeter::default();
        m.record(&cfg, 64);
        m.record(&cfg, 64);
        assert_eq!(m.bytes, 128);
        assert_eq!(m.transactions, 2);
        assert!(m.busy_ns > 0.0);
        assert!(m.effective_gbps() > 0.0);
    }

    #[test]
    fn smaller_completions_cheaper_at_low_bandwidth() {
        // The E4 premise: with a constrained link, an 8B mini-CQE beats a
        // 64B CQE by a wide margin.
        let slow = DmaConfig::default().with_bandwidth(0.5);
        assert!(slow.write_cost_ns(8) * 4.0 < slow.write_cost_ns(64) * 2.0);
    }
}
