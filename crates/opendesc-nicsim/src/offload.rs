//! The simulated NIC's offload engine.
//!
//! For each received frame the engine produces a [`MetaRecord`]: the
//! values of every semantic the device model supports. The completion
//! deparser (executed from the contract) then serializes whichever subset
//! the active layout carries. The engine delegates stateless semantics to
//! the SoftNIC reference implementations — hardware and software compute
//! identical values by construction — and adds the device-only ones
//! (timestamps from the device clock).

use opendesc_ir::semantics::{names, SemanticRegistry};
use opendesc_ir::SemanticId;
use opendesc_softnic::wire::ParsedFrame;
use opendesc_softnic::{ShimMemo, ShimOp, SoftNic};

/// Per-packet semantic values, keyed by semantic id.
///
/// Backed by a sorted `Vec` rather than a tree: a record holds a handful
/// of entries and is rebuilt per packet, so a flat array wins on both
/// lookup and (crucially) `clear`-and-reuse — the deliver hot path keeps
/// one record allocated for the lifetime of the queue.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetaRecord {
    /// Sorted by semantic id.
    values: Vec<(SemanticId, u128)>,
}

impl MetaRecord {
    pub fn get(&self, sem: SemanticId) -> Option<u128> {
        self.values
            .binary_search_by_key(&sem, |(s, _)| *s)
            .ok()
            .map(|i| self.values[i].1)
    }

    pub fn set(&mut self, sem: SemanticId, value: u128) {
        match self.values.binary_search_by_key(&sem, |(s, _)| *s) {
            Ok(i) => self.values[i].1 = value,
            Err(i) => self.values.insert(i, (sem, value)),
        }
    }

    /// Drop all entries, keeping the backing storage for reuse.
    pub fn clear(&mut self) {
        self.values.clear();
    }

    pub fn iter(&self) -> impl Iterator<Item = (SemanticId, u128)> + '_ {
        self.values.iter().map(|(k, v)| (*k, *v))
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// One device-side operation, pre-lowered from a semantic name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceOp {
    /// Stamp the device clock (device-only state).
    Timestamp,
    /// Allocate a crypto-context id (device-only state).
    CryptoCtx,
    /// Delegate to the SoftNIC reference implementation.
    Shim(ShimOp),
}

/// The device's supported-semantic list lowered to ops, once per queue —
/// the engine-side twin of the host's compiled shim plan.
#[derive(Debug, Clone, Default)]
pub struct OffloadProgram {
    ops: Vec<(SemanticId, DeviceOp)>,
}

impl OffloadProgram {
    /// Lower `supported` against the registry. Names resolve to ops here,
    /// never again per packet.
    pub fn compile(reg: &SemanticRegistry, supported: &[SemanticId]) -> OffloadProgram {
        let ops = supported
            .iter()
            .map(|&sem| {
                let op = match reg.name(sem) {
                    names::TIMESTAMP => DeviceOp::Timestamp,
                    names::CRYPTO_CTX => DeviceOp::CryptoCtx,
                    name => DeviceOp::Shim(ShimOp::from_name(name)),
                };
                (sem, op)
            })
            .collect();
        OffloadProgram { ops }
    }

    pub fn ops(&self) -> &[(SemanticId, DeviceOp)] {
        &self.ops
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The device-side computation engine.
#[derive(Debug, Clone)]
pub struct OffloadEngine {
    soft: SoftNic,
    /// Device clock in nanoseconds; advances as frames arrive.
    clock_ns: u64,
    /// Link rate used to advance the clock per frame, bits per ns.
    link_gbps: f64,
    /// Monotonic crypto-context allocator (device-owned state).
    next_crypto_ctx: u32,
}

impl Default for OffloadEngine {
    fn default() -> Self {
        Self::new(100.0)
    }
}

impl OffloadEngine {
    /// An engine on a link of `link_gbps` gigabits per second.
    pub fn new(link_gbps: f64) -> Self {
        OffloadEngine {
            soft: SoftNic::new(),
            clock_ns: 1_000, // arbitrary non-zero epoch
            link_gbps,
            next_crypto_ctx: 1,
        }
    }

    /// Current device time.
    pub fn now_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Compute the values of `supported` semantics for `frame`, advancing
    /// the device clock by the frame's wire time.
    ///
    /// One-shot convenience that lowers `supported` per call; the deliver
    /// hot path compiles an [`OffloadProgram`] once and runs
    /// [`process_program_into`] instead.
    ///
    /// [`process_program_into`]: OffloadEngine::process_program_into
    pub fn process(
        &mut self,
        reg: &SemanticRegistry,
        supported: &[SemanticId],
        frame: &[u8],
    ) -> MetaRecord {
        let prog = OffloadProgram::compile(reg, supported);
        let mut rec = MetaRecord::default();
        self.process_program_into(&prog, frame, &mut rec);
        rec
    }

    /// Run a pre-compiled program over one frame into a reusable record,
    /// advancing the device clock by the frame's wire time.
    ///
    /// The frame is parsed once and the view shared by every shim op;
    /// intra-packet repeats are memoized (mirroring the host-side plan
    /// execution, so hardware and shims stay value-identical).
    pub fn process_program_into(
        &mut self,
        prog: &OffloadProgram,
        frame: &[u8],
        rec: &mut MetaRecord,
    ) {
        self.process_program_with(prog, frame, None, None, rec);
    }

    /// [`process_program_into`] with work the steering stage already did:
    /// a multi-queue NIC parses the frame and runs Toeplitz RSS to pick a
    /// queue, and a real pipeline never repeats either — pass the parse
    /// as `steer_parsed` and the hash as `rss_hint` and this engine reuses
    /// both instead of recomputing. `steer_parsed = None` parses here;
    /// `rss_hint = None` leaves RSS to the shim. The hint must come from
    /// the same key/tuple rules as the reference implementation (true for
    /// [`crate::multiqueue::Steerer`], which delegates to the softnic
    /// Toeplitz over the default key).
    ///
    /// [`process_program_into`]: OffloadEngine::process_program_into
    pub fn process_program_with(
        &mut self,
        prog: &OffloadProgram,
        frame: &[u8],
        steer_parsed: Option<&ParsedFrame<'_>>,
        rss_hint: Option<u32>,
        rec: &mut MetaRecord,
    ) {
        // Wire time: preamble(8) + frame + FCS(4) + IFG(12) bytes.
        let wire_bytes = frame.len() as u64 + 24;
        self.clock_ns += ((wire_bytes * 8) as f64 / self.link_gbps) as u64;

        rec.clear();
        let local;
        let parsed = match steer_parsed {
            Some(p) => Some(p),
            None => {
                local = ParsedFrame::parse(frame);
                local.as_ref()
            }
        };
        let mut memo = ShimMemo::default();
        if let Some(h) = rss_hint {
            memo.prime_rss(h);
        }
        for &(sem, op) in &prog.ops {
            let v = match op {
                DeviceOp::Timestamp => Some(self.clock_ns as u128),
                DeviceOp::CryptoCtx => {
                    let id = self.next_crypto_ctx;
                    self.next_crypto_ctx = self.next_crypto_ctx.wrapping_add(1).max(1);
                    Some(id as u128)
                }
                DeviceOp::Shim(shim) => parsed
                    .and_then(|p| self.soft.exec_op(shim, p, frame.len(), &mut memo))
                    .map(|v| v as u128),
            };
            if let Some(v) = v {
                rec.set(sem, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opendesc_softnic::testpkt;

    fn ids(reg: &SemanticRegistry, names_: &[&str]) -> Vec<SemanticId> {
        names_.iter().map(|n| reg.id(n).unwrap()).collect()
    }

    #[test]
    fn process_fills_supported_semantics() {
        let reg = SemanticRegistry::with_builtins();
        let mut eng = OffloadEngine::new(100.0);
        let f = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 1000, 2000, b"data", None);
        let sems = ids(&reg, &[names::RSS_HASH, names::PKT_LEN, names::TIMESTAMP]);
        let rec = eng.process(&reg, &sems, &f);
        assert_eq!(rec.len(), 3);
        assert_eq!(
            rec.get(reg.id(names::PKT_LEN).unwrap()),
            Some(f.len() as u128)
        );
        assert!(rec.get(reg.id(names::TIMESTAMP).unwrap()).unwrap() > 1000);
    }

    #[test]
    fn clock_advances_with_frame_size() {
        let reg = SemanticRegistry::with_builtins();
        let mut eng = OffloadEngine::new(10.0); // 10 Gbps
        let t0 = eng.now_ns();
        let f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[0u8; 1000], None);
        eng.process(&reg, &[], &f);
        let dt = eng.now_ns() - t0;
        // ~ (1042+24)*8/10 ≈ 850 ns.
        assert!(dt > 700 && dt < 1000, "wire time {dt} ns");
    }

    #[test]
    fn timestamps_monotonic() {
        let reg = SemanticRegistry::with_builtins();
        let mut eng = OffloadEngine::default();
        let ts = reg.id(names::TIMESTAMP).unwrap();
        let f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"x", None);
        let a = eng.process(&reg, &[ts], &f).get(ts).unwrap();
        let b = eng.process(&reg, &[ts], &f).get(ts).unwrap();
        assert!(b > a);
    }

    #[test]
    fn unsupported_layers_leave_gaps() {
        let reg = SemanticRegistry::with_builtins();
        let mut eng = OffloadEngine::default();
        // A non-IP frame: VLAN semantic absent, RSS absent.
        let frame = vec![0u8; 14]; // bare ethernet, ethertype 0
        let sems = ids(&reg, &[names::RSS_HASH, names::VLAN_TCI, names::PKT_LEN]);
        let rec = eng.process(&reg, &sems, &frame);
        assert_eq!(rec.get(reg.id(names::RSS_HASH).unwrap()), None);
        assert_eq!(rec.get(reg.id(names::VLAN_TCI).unwrap()), None);
        assert_eq!(rec.get(reg.id(names::PKT_LEN).unwrap()), Some(14));
    }

    #[test]
    fn meta_record_set_get_clear() {
        let mut rec = MetaRecord::default();
        assert!(rec.is_empty());
        // Insert out of order; storage stays sorted.
        rec.set(SemanticId(5), 50);
        rec.set(SemanticId(1), 10);
        rec.set(SemanticId(3), 30);
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.get(SemanticId(3)), Some(30));
        assert_eq!(rec.get(SemanticId(2)), None);
        let ids: Vec<_> = rec.iter().map(|(s, _)| s.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        // Overwrite, then clear-and-reuse.
        rec.set(SemanticId(3), 33);
        assert_eq!(rec.get(SemanticId(3)), Some(33));
        rec.clear();
        assert!(rec.is_empty());
        rec.set(SemanticId(9), 9);
        assert_eq!(rec.get(SemanticId(9)), Some(9));
    }

    #[test]
    fn program_path_matches_one_shot_process() {
        let reg = SemanticRegistry::with_builtins();
        let sems: Vec<SemanticId> = reg.iter().map(|(id, _)| id).collect();
        let prog = OffloadProgram::compile(&reg, &sems);
        assert_eq!(prog.len(), sems.len());
        let frames = [
            testpkt::udp4(
                [10, 0, 0, 1],
                [10, 0, 0, 2],
                1000,
                2000,
                b"get k\r\n",
                Some(7),
            ),
            vec![0u8; 14], // non-IP
        ];
        for f in &frames {
            // Engines advance clocks/counters identically on both paths.
            let mut a = OffloadEngine::new(100.0);
            let mut b = OffloadEngine::new(100.0);
            let one_shot = a.process(&reg, &sems, f);
            let mut rec = MetaRecord::default();
            b.process_program_into(&prog, f, &mut rec);
            assert_eq!(one_shot, rec);
            assert_eq!(a.now_ns(), b.now_ns());
        }
    }

    #[test]
    fn steer_reuse_path_matches_fresh_parse() {
        // Handing the engine the steering stage's parse + RSS hash must
        // be observationally identical to parsing/hashing from scratch.
        let reg = SemanticRegistry::with_builtins();
        let sems: Vec<SemanticId> = reg.iter().map(|(id, _)| id).collect();
        let prog = OffloadProgram::compile(&reg, &sems);
        let f = testpkt::udp4(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1000,
            2000,
            b"get k\r\n",
            Some(7),
        );
        let parsed = ParsedFrame::parse(&f).unwrap();
        let hint = SoftNic::new().rss(&parsed);
        let mut a = OffloadEngine::new(100.0);
        let mut b = OffloadEngine::new(100.0);
        let mut ra = MetaRecord::default();
        let mut rb = MetaRecord::default();
        a.process_program_into(&prog, &f, &mut ra);
        b.process_program_with(&prog, &f, Some(&parsed), hint, &mut rb);
        assert_eq!(ra, rb, "steer-reuse diverged from fresh parse");
        assert_eq!(a.now_ns(), b.now_ns());
    }

    #[test]
    fn reused_record_carries_nothing_across_frames() {
        let reg = SemanticRegistry::with_builtins();
        let sems = ids(&reg, &[names::RSS_HASH, names::VLAN_TCI, names::PKT_LEN]);
        let prog = OffloadProgram::compile(&reg, &sems);
        let mut eng = OffloadEngine::default();
        let mut rec = MetaRecord::default();
        let tagged = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"x", Some(0x0ABC));
        eng.process_program_into(&prog, &tagged, &mut rec);
        assert_eq!(rec.get(reg.id(names::VLAN_TCI).unwrap()), Some(0x0ABC));
        // Next frame has no VLAN: the stale entry must not leak through.
        let plain = vec![0u8; 14];
        eng.process_program_into(&prog, &plain, &mut rec);
        assert_eq!(rec.get(reg.id(names::VLAN_TCI).unwrap()), None);
        assert_eq!(rec.get(reg.id(names::PKT_LEN).unwrap()), Some(14));
    }

    #[test]
    fn crypto_ctx_ids_unique() {
        let reg = SemanticRegistry::with_builtins();
        let mut eng = OffloadEngine::default();
        let cc = reg.id(names::CRYPTO_CTX).unwrap();
        let f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"x", None);
        let a = eng.process(&reg, &[cc], &f).get(cc).unwrap();
        let b = eng.process(&reg, &[cc], &f).get(cc).unwrap();
        assert_ne!(a, b);
    }
}
