//! The simulated NIC's offload engine.
//!
//! For each received frame the engine produces a [`MetaRecord`]: the
//! values of every semantic the device model supports. The completion
//! deparser (executed from the contract) then serializes whichever subset
//! the active layout carries. The engine delegates stateless semantics to
//! the SoftNIC reference implementations — hardware and software compute
//! identical values by construction — and adds the device-only ones
//! (timestamps from the device clock).

use opendesc_ir::semantics::{names, SemanticRegistry};
use opendesc_ir::SemanticId;
use opendesc_softnic::SoftNic;
use std::collections::BTreeMap;

/// Per-packet semantic values, keyed by semantic id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetaRecord {
    values: BTreeMap<SemanticId, u128>,
}

impl MetaRecord {
    pub fn get(&self, sem: SemanticId) -> Option<u128> {
        self.values.get(&sem).copied()
    }

    pub fn set(&mut self, sem: SemanticId, value: u128) {
        self.values.insert(sem, value);
    }

    pub fn iter(&self) -> impl Iterator<Item = (SemanticId, u128)> + '_ {
        self.values.iter().map(|(k, v)| (*k, *v))
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The device-side computation engine.
#[derive(Debug, Clone)]
pub struct OffloadEngine {
    soft: SoftNic,
    /// Device clock in nanoseconds; advances as frames arrive.
    clock_ns: u64,
    /// Link rate used to advance the clock per frame, bits per ns.
    link_gbps: f64,
    /// Monotonic crypto-context allocator (device-owned state).
    next_crypto_ctx: u32,
}

impl Default for OffloadEngine {
    fn default() -> Self {
        Self::new(100.0)
    }
}

impl OffloadEngine {
    /// An engine on a link of `link_gbps` gigabits per second.
    pub fn new(link_gbps: f64) -> Self {
        OffloadEngine {
            soft: SoftNic::new(),
            clock_ns: 1_000, // arbitrary non-zero epoch
            link_gbps,
            next_crypto_ctx: 1,
        }
    }

    /// Current device time.
    pub fn now_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Compute the values of `supported` semantics for `frame`, advancing
    /// the device clock by the frame's wire time.
    pub fn process(
        &mut self,
        reg: &SemanticRegistry,
        supported: &[SemanticId],
        frame: &[u8],
    ) -> MetaRecord {
        // Wire time: preamble(8) + frame + FCS(4) + IFG(12) bytes.
        let wire_bytes = frame.len() as u64 + 24;
        self.clock_ns += ((wire_bytes * 8) as f64 / self.link_gbps) as u64;

        let mut rec = MetaRecord::default();
        for &sem in supported {
            let name = reg.name(sem).to_string();
            let v = match name.as_str() {
                names::TIMESTAMP => Some(self.clock_ns as u128),
                names::CRYPTO_CTX => {
                    let id = self.next_crypto_ctx;
                    self.next_crypto_ctx = self.next_crypto_ctx.wrapping_add(1).max(1);
                    Some(id as u128)
                }
                _ => self.soft.compute_by_name(&name, frame).map(|v| v as u128),
            };
            if let Some(v) = v {
                rec.set(sem, v);
            }
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opendesc_softnic::testpkt;

    fn ids(reg: &SemanticRegistry, names_: &[&str]) -> Vec<SemanticId> {
        names_.iter().map(|n| reg.id(n).unwrap()).collect()
    }

    #[test]
    fn process_fills_supported_semantics() {
        let reg = SemanticRegistry::with_builtins();
        let mut eng = OffloadEngine::new(100.0);
        let f = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 1000, 2000, b"data", None);
        let sems = ids(&reg, &[names::RSS_HASH, names::PKT_LEN, names::TIMESTAMP]);
        let rec = eng.process(&reg, &sems, &f);
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.get(reg.id(names::PKT_LEN).unwrap()), Some(f.len() as u128));
        assert!(rec.get(reg.id(names::TIMESTAMP).unwrap()).unwrap() > 1000);
    }

    #[test]
    fn clock_advances_with_frame_size() {
        let reg = SemanticRegistry::with_builtins();
        let mut eng = OffloadEngine::new(10.0); // 10 Gbps
        let t0 = eng.now_ns();
        let f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[0u8; 1000], None);
        eng.process(&reg, &[], &f);
        let dt = eng.now_ns() - t0;
        // ~ (1042+24)*8/10 ≈ 850 ns.
        assert!(dt > 700 && dt < 1000, "wire time {dt} ns");
    }

    #[test]
    fn timestamps_monotonic() {
        let reg = SemanticRegistry::with_builtins();
        let mut eng = OffloadEngine::default();
        let ts = reg.id(names::TIMESTAMP).unwrap();
        let f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"x", None);
        let a = eng.process(&reg, &[ts], &f).get(ts).unwrap();
        let b = eng.process(&reg, &[ts], &f).get(ts).unwrap();
        assert!(b > a);
    }

    #[test]
    fn unsupported_layers_leave_gaps() {
        let reg = SemanticRegistry::with_builtins();
        let mut eng = OffloadEngine::default();
        // A non-IP frame: VLAN semantic absent, RSS absent.
        let frame = vec![0u8; 14]; // bare ethernet, ethertype 0
        let sems = ids(&reg, &[names::RSS_HASH, names::VLAN_TCI, names::PKT_LEN]);
        let rec = eng.process(&reg, &sems, &frame);
        assert_eq!(rec.get(reg.id(names::RSS_HASH).unwrap()), None);
        assert_eq!(rec.get(reg.id(names::VLAN_TCI).unwrap()), None);
        assert_eq!(rec.get(reg.id(names::PKT_LEN).unwrap()), Some(14));
    }

    #[test]
    fn crypto_ctx_ids_unique() {
        let reg = SemanticRegistry::with_builtins();
        let mut eng = OffloadEngine::default();
        let cc = reg.id(names::CRYPTO_CTX).unwrap();
        let f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"x", None);
        let a = eng.process(&reg, &[cc], &f).get(cc).unwrap();
        let b = eng.process(&reg, &[cc], &f).get(cc).unwrap();
        assert_ne!(a, b);
    }
}
