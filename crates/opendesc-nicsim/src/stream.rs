//! ENSO-style streaming interface (paper §2/§5): descriptor rings are
//! replaced by a contiguous byte stream of length-delimited frames.
//!
//! The paper's discussion: ENSO's stream gives raw-payload throughput
//! (6× in their measurements) but "does not enable the exchange of
//! packet metadata with the NIC" — the model collapses when the
//! application needs a hash, and packets cannot be consumed out of
//! order without copying. This module exists to make those trade-offs
//! measurable next to descriptor-based and ASNI-aggregated delivery
//! (bench E11).

/// A contiguous stream buffer the device appends `u16 len | frame`
/// records into and the host consumes with a tail pointer.
#[derive(Debug, Clone)]
pub struct StreamQueue {
    buf: Vec<u8>,
    capacity: usize,
    /// Host consumption offset.
    tail: usize,
    /// Frames appended / dropped-for-space.
    pub appended: u64,
    pub dropped_full: u64,
}

impl StreamQueue {
    /// A stream of `capacity` bytes (device side stops appending when
    /// full until the host advances).
    pub fn new(capacity: usize) -> Self {
        StreamQueue {
            buf: Vec::with_capacity(capacity),
            capacity,
            tail: 0,
            appended: 0,
            dropped_full: 0,
        }
    }

    /// Device side: append one frame. No metadata travels with it —
    /// that is the interface's defining limitation.
    pub fn append(&mut self, frame: &[u8]) -> bool {
        let need = 2 + frame.len();
        if self.buf.len() + need > self.capacity {
            self.dropped_full += 1;
            return false;
        }
        self.buf
            .extend_from_slice(&(frame.len() as u16).to_be_bytes());
        self.buf.extend_from_slice(frame);
        self.appended += 1;
        true
    }

    /// Host side: next frame, zero-copy (borrow into the stream). Frames
    /// MUST be consumed in order — that is the other defining
    /// limitation (out-of-order processing requires copying out).
    /// (Lending-iterator shape, so `Iterator` cannot be implemented.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&[u8]> {
        if self.tail + 2 > self.buf.len() {
            return None;
        }
        let len = u16::from_be_bytes([self.buf[self.tail], self.buf[self.tail + 1]]) as usize;
        let start = self.tail + 2;
        if start + len > self.buf.len() {
            return None;
        }
        self.tail = start + len;
        Some(&self.buf[start..start + len])
    }

    /// Host side: reclaim consumed bytes (the ENSO "advance the ring
    /// head" operation). Amortized; call after a batch.
    pub fn reclaim(&mut self) {
        self.buf.drain(..self.tail);
        self.tail = 0;
    }

    /// Bytes pending consumption.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opendesc_softnic::testpkt;

    fn f(n: u8) -> Vec<u8> {
        testpkt::udp4(
            [10, 0, 0, n],
            [10, 0, 0, 99],
            100 + n as u16,
            9,
            &[n; 16],
            None,
        )
    }

    #[test]
    fn fifo_in_order_consumption() {
        let mut q = StreamQueue::new(4096);
        for i in 0..5 {
            assert!(q.append(&f(i)));
        }
        for i in 0..5 {
            assert_eq!(q.next().unwrap(), &f(i)[..]);
        }
        assert!(q.next().is_none());
        assert_eq!(q.appended, 5);
    }

    #[test]
    fn backpressure_when_full() {
        let entry = 2 + f(0).len();
        let mut q = StreamQueue::new(entry * 2 + 1);
        assert!(q.append(&f(0)));
        assert!(q.append(&f(1)));
        assert!(!q.append(&f(2)), "third frame must not fit");
        assert_eq!(q.dropped_full, 1);
        // Consuming + reclaiming frees space.
        q.next().unwrap();
        q.reclaim();
        assert!(q.append(&f(2)));
    }

    #[test]
    fn reclaim_preserves_unconsumed() {
        let mut q = StreamQueue::new(4096);
        q.append(&f(1));
        q.append(&f(2));
        q.next().unwrap();
        q.reclaim();
        assert_eq!(q.next().unwrap(), &f(2)[..]);
        assert_eq!(q.pending_bytes(), 0);
    }

    #[test]
    fn no_metadata_travels_with_frames() {
        // The structural point: nothing but the frame bytes exists in the
        // stream — the host must recompute everything (cf. LcdDriver).
        let mut q = StreamQueue::new(4096);
        let frame = f(7);
        q.append(&frame);
        let got = q.next().unwrap();
        assert_eq!(got, &frame[..]);
        assert_eq!(q.pending_bytes(), 0, "only len+frame bytes are stored");
    }
}
