//! # opendesc-nicsim — simulated NICs executing OpenDesc contracts
//!
//! Substitutes for the hardware the paper targets (e1000/ixgbe-class
//! fixed-function NICs, mlx5-class partially programmable NICs, QDMA-class
//! fully programmable NICs). The simulator's completion writeback is
//! driven by the *same contract* the compiler analyzes: either by
//! interpreting the `CmptDeparser`, or by a fast table-driven path proven
//! equivalent by tests. Includes descriptor rings, a PCIe/DMA cost model,
//! an offload engine delegating to the softnic reference implementations,
//! a deterministic workload generator, and fault injection.
pub mod aggregate;
pub mod dma;
pub mod hostmem;
pub mod models;
pub mod multiqueue;
pub mod nic;
pub mod offload;
pub mod pktgen;
pub mod ring;
pub mod rxbuf;
pub mod stream;
pub mod tx;

pub use aggregate::{AsniAggregator, AsniFrame, AsniIter};
pub use dma::{DmaConfig, DmaMeter};
pub use hostmem::HostMem;
pub use models::{
    catalog, e1000_legacy, e1000e, ice, ixgbe, mlx5, qdma, qdma_default, NicModel, QdmaLayout,
};
pub use multiqueue::{MultiQueueNic, SteerPolicy};
pub use nic::{FaultConfig, NicError, NicStats, SimNic, WritebackMode};
pub use offload::{DeviceOp, MetaRecord, OffloadEngine, OffloadProgram};
pub use pktgen::{PktGen, Transport, Workload};
pub use ring::{DescRing, RingError};
pub use rxbuf::RxBufferPool;
pub use stream::StreamQueue;
pub use tx::TxStats;
