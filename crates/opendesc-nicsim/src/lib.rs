//! # opendesc-nicsim — simulated NICs executing OpenDesc contracts
//!
//! Substitutes for the hardware the paper targets (e1000/ixgbe-class
//! fixed-function NICs, mlx5-class partially programmable NICs, QDMA-class
//! fully programmable NICs). The simulator's completion writeback is
//! driven by the *same contract* the compiler analyzes: either by
//! interpreting the `CmptDeparser`, or by a fast table-driven path proven
//! equivalent by tests. Includes descriptor rings, a PCIe/DMA cost model,
//! an offload engine delegating to the softnic reference implementations,
//! a deterministic workload generator, and fault injection.
pub mod aggregate;
pub mod dma;
pub mod hostmem;
pub mod models;
pub mod multiqueue;
pub mod nic;
pub mod offload;
pub mod pktgen;
pub mod ring;
pub mod rxbuf;
pub mod stream;
pub mod tx;

pub use aggregate::{AsniAggregator, AsniFrame, AsniIter};
pub use dma::{DmaConfig, DmaMeter};
pub use hostmem::HostMem;
pub use models::{
    catalog, e1000_legacy, e1000e, ice, ixgbe, mlx5, qdma, qdma_default, NicModel, QdmaLayout,
};
pub use multiqueue::{
    CachePadded, MultiQueueNic, SteerPolicy, SteerStats, SteerVerdict, Steerer, RETA_SIZE,
};
pub use nic::{
    FaultConfig, FaultConfigBuilder, NicError, NicStats, RxSideband, SimNic, WritebackMode,
};
pub use offload::{DeviceOp, MetaRecord, OffloadEngine, OffloadProgram};
pub use pktgen::{PktGen, ShardFrame, ShardedPktGen, Transport, Workload};
pub use ring::{DescRing, RingError};
pub use rxbuf::RxBufferPool;
pub use stream::StreamQueue;
pub use tx::TxStats;

// Send audit for the sharded RX engine (tentpole requirement): every
// piece of device state a worker thread takes ownership of must cross
// the thread boundary. All of these are plain owned data — no `Rc`, no
// `RefCell`/`Cell`, no raw pointers — and this block turns any future
// regression into a compile error. `Steerer` is additionally `Sync`
// because one instance is *shared by reference* across all workers.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<DescRing>();
    assert_send::<HostMem>();
    assert_send::<RxBufferPool>();
    assert_send::<SimNic>();
    assert_send::<MultiQueueNic>();
    assert_send::<OffloadEngine>();
    assert_send::<ShardedPktGen>();
    assert_sync::<Steerer>();
    assert_sync::<CachePadded<u64>>();
};
