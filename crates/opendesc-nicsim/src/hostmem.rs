//! Host memory model: the DMA-visible buffer pool TX descriptors point
//! into. Addresses are synthetic but stable, so descriptor `buf_addr`
//! fields round-trip through the contract like real IOVA addresses.

use std::collections::BTreeMap;

/// A registry of DMA-visible buffers.
#[derive(Debug, Clone, Default)]
pub struct HostMem {
    bufs: BTreeMap<u64, Vec<u8>>,
    next_addr: u64,
}

/// Buffers start above 0 so that a zero `buf_addr` (an unset descriptor
/// field) never resolves.
const BASE_ADDR: u64 = 0x1000;
/// Alignment of allocated buffers.
const ALIGN: u64 = 64;

impl HostMem {
    pub fn new() -> Self {
        HostMem {
            bufs: BTreeMap::new(),
            next_addr: BASE_ADDR,
        }
    }

    /// Register a buffer; returns its DMA address.
    pub fn alloc(&mut self, data: &[u8]) -> u64 {
        let addr = self.next_addr;
        self.next_addr += (data.len() as u64).max(1).div_ceil(ALIGN) * ALIGN + ALIGN;
        self.bufs.insert(addr, data.to_vec());
        addr
    }

    /// Read `len` bytes at `addr`. The access must lie within a single
    /// registered buffer (no cross-buffer reads, like an IOMMU).
    pub fn read(&self, addr: u64, len: usize) -> Option<&[u8]> {
        let (base, buf) = self.bufs.range(..=addr).next_back()?;
        let off = (addr - base) as usize;
        buf.get(off..off + len)
    }

    /// Overwrite the head of the buffer containing `addr` (device DMA
    /// write). Returns `false` when the write does not fit.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> bool {
        let Some((base, buf)) = self.bufs.range_mut(..=addr).next_back() else {
            return false;
        };
        let off = (addr - base) as usize;
        if off + data.len() > buf.len() {
            return false;
        }
        buf[off..off + data.len()].copy_from_slice(data);
        true
    }

    /// Capacity of the buffer based exactly at `addr`.
    pub fn buf_capacity(&self, addr: u64) -> Option<usize> {
        self.bufs.get(&addr).map(Vec::len)
    }

    /// Release a buffer. Returns `false` when `addr` is not a buffer base.
    pub fn free(&mut self, addr: u64) -> bool {
        self.bufs.remove(&addr).is_some()
    }

    /// Number of live buffers.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_roundtrip() {
        let mut m = HostMem::new();
        let a = m.alloc(b"hello");
        assert_eq!(m.read(a, 5), Some(&b"hello"[..]));
        assert_eq!(m.read(a + 1, 3), Some(&b"ell"[..]));
    }

    #[test]
    fn reads_do_not_cross_buffers() {
        let mut m = HostMem::new();
        let a = m.alloc(&[1u8; 8]);
        let _b = m.alloc(&[2u8; 8]);
        assert_eq!(m.read(a, 8), Some(&[1u8; 8][..]));
        assert_eq!(m.read(a, 9), None, "read past buffer end must fail");
    }

    #[test]
    fn zero_address_never_resolves() {
        let mut m = HostMem::new();
        m.alloc(b"x");
        assert_eq!(m.read(0, 1), None);
    }

    #[test]
    fn free_releases() {
        let mut m = HostMem::new();
        let a = m.alloc(b"x");
        assert!(m.free(a));
        assert!(!m.free(a));
        assert_eq!(m.read(a, 1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn addresses_unique_and_aligned() {
        let mut m = HostMem::new();
        let a = m.alloc(&[0u8; 100]);
        let b = m.alloc(&[0u8; 1]);
        assert_ne!(a, b);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b > a + 100);
    }
}
