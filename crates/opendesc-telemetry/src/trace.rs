//! Fixed-capacity per-queue trace rings for poll-cycle events.
//!
//! Counters say *how many* faults a queue saw; the trace ring says *in
//! what order* — which is what you need when a fault-injection test
//! fails and the question is "did the watchdog fire before or after the
//! third duplicate?". Each queue owns one [`TraceRing`]: a preallocated
//! circular buffer of fixed-size [`TraceEvent`] records. Recording is a
//! bump-and-store (no allocation, no branching beyond the wrap), old
//! events are overwritten, and the ring is only read out when someone
//! asks — on test failure, on a fault-injection anomaly, or from an
//! operator dump.

/// What happened in a poll cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A frame was delivered toward the queue (`a` = frame bytes).
    Doorbell,
    /// A fresh completion was admitted (`a` = sequence tag).
    Writeback,
    /// A replayed completion was discarded (`a` = sequence tag).
    DiscardDuplicate,
    /// A stale-generation completion was discarded (`a` = sequence tag).
    DiscardStale,
    /// A truncated completion was detected (`a` = record length,
    /// `b` = expected length).
    Truncated,
    /// A structural check failed; the packet was re-served degraded.
    StructuralFailure,
    /// The full cross-check repaired hardware fields (`a` = fields).
    Repaired,
    /// A packet was served through all-software degraded execution.
    DegradedServe,
    /// The queue's health machine moved (`a` = from, `b` = to, as
    /// severity ranks).
    HealthTransition,
    /// The watchdog requested a ring reset (`a` = total resets so far).
    WatchdogReset,
    /// A batched poll completed (`a` = packets, `b` = ring occupancy
    /// before the drain).
    BatchPolled,
    /// A relayout request found the queue Degraded and was parked
    /// (`a` = target plan generation, `b` = health severity rank).
    RelayoutDeferred,
    /// A drain-and-flip committed: the queue now runs the new plan
    /// generation (`a` = new generation, `b` = drain polls spent).
    RelayoutCompleted,
    /// A watchdog reset fired mid-flip and rolled the device forward to
    /// the new ring generation (`a` = new generation, `b` = old-layout
    /// completions stranded and stale-tagged by the reprogram).
    RelayoutRolledForward,
}

/// One fixed-size trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global order of this event within its ring (monotonic from 0).
    pub seq: u64,
    /// Queue the ring belongs to.
    pub queue: u16,
    pub kind: TraceKind,
    /// Kind-specific operands (see [`TraceKind`]).
    pub a: u64,
    pub b: u64,
}

/// A preallocated circular event buffer for one queue (see module docs).
#[derive(Debug, Clone)]
pub struct TraceRing {
    queue: u16,
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Events recorded over the ring's lifetime; `buf[next % cap]` is
    /// the slot the next event takes.
    next: u64,
}

impl TraceRing {
    /// A ring of `cap` slots for queue `queue` (capacity is clamped to
    /// at least 1; storage is allocated once, here).
    pub fn new(queue: u16, cap: usize) -> TraceRing {
        let cap = cap.max(1);
        TraceRing {
            queue,
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
        }
    }

    pub fn queue(&self) -> u16 {
        self.queue
    }

    pub fn set_queue(&mut self, queue: u16) {
        self.queue = queue;
        for e in &mut self.buf {
            e.queue = queue;
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events recorded over the ring's lifetime (recorded, not retained).
    pub fn recorded(&self) -> u64 {
        self.next
    }

    /// Events overwritten because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.next.saturating_sub(self.cap as u64)
    }

    /// Record one event. Zero-alloc once the ring has wrapped its
    /// preallocated storage in.
    #[inline]
    pub fn record(&mut self, kind: TraceKind, a: u64, b: u64) {
        let ev = TraceEvent {
            seq: self.next,
            queue: self.queue,
            kind,
            a,
            b,
        };
        let slot = (self.next % self.cap as u64) as usize;
        if slot < self.buf.len() {
            self.buf[slot] = ev;
        } else {
            self.buf.push(ev);
        }
        self.next += 1;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() < self.cap {
            out.extend_from_slice(&self.buf);
        } else {
            let split = (self.next % self.cap as u64) as usize;
            out.extend_from_slice(&self.buf[split..]);
            out.extend_from_slice(&self.buf[..split]);
        }
        out
    }

    /// Human-readable dump (test-failure / anomaly diagnostics).
    pub fn dump(&self) -> String {
        let mut s = format!(
            "trace q{}: {} recorded, {} dropped, {} retained\n",
            self.queue,
            self.recorded(),
            self.dropped(),
            self.buf.len()
        );
        for e in self.events() {
            s.push_str(&format!(
                "  [{:>6}] q{} {:?} a={} b={}\n",
                e.seq, e.queue, e.kind, e.a, e.b
            ));
        }
        s
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_wraps() {
        let mut r = TraceRing::new(3, 4);
        for i in 0..6u64 {
            r.record(TraceKind::Doorbell, i, 0);
        }
        assert_eq!(r.recorded(), 6);
        assert_eq!(r.dropped(), 2);
        let evs = r.events();
        assert_eq!(evs.len(), 4);
        // Oldest retained is seq 2; strictly ordered; queue attributed.
        assert_eq!(evs[0].seq, 2);
        for w in evs.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        assert!(evs.iter().all(|e| e.queue == 3 && e.a == e.seq));
        let dump = r.dump();
        assert!(dump.contains("trace q3"));
        assert!(dump.contains("Doorbell"));
    }

    #[test]
    fn partial_ring_returns_everything() {
        let mut r = TraceRing::new(0, 16);
        r.record(TraceKind::WatchdogReset, 1, 0);
        r.record(TraceKind::BatchPolled, 8, 100);
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, TraceKind::WatchdogReset);
        assert_eq!(evs[1].kind, TraceKind::BatchPolled);
        assert_eq!(r.dropped(), 0);
    }
}
