//! The metric registry and its frozen, serializable snapshot.
//!
//! The registry is deliberately a *cold-side* object: hot paths update
//! plain per-worker counters and [`Hist`] cells they exclusively own
//! (the `CachePadded` discipline of the sharded engine), and components
//! register those values into a [`MetricRegistry`] only when a snapshot
//! is taken. Registration is additive — registering the same counter or
//! histogram name twice folds the values together, which is exactly the
//! per-queue → engine-wide merge — but a name registered under one type
//! stays that type: a kind mismatch is a bug in the instrumentation and
//! panics rather than silently mixing units.
//!
//! [`Snapshot`] freezes the registry into a name-sorted list with a
//! deterministic JSON form: same metrics, same values → byte-identical
//! output, which is what lets CI diff snapshots against committed
//! baselines and what the determinism tests pin down.

use crate::hist::Hist;
use std::collections::BTreeMap;

/// A registered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count (merges by addition).
    Counter(u64),
    /// Point-in-time level (merges by last-write-wins).
    Gauge(f64),
    /// Distribution (merges via [`Hist::merge`]). Boxed so the enum —
    /// which mostly holds 8-byte counters and gauges — stays small;
    /// this is a cold-side type, the indirection is never on a hot path.
    Hist(Box<Hist>),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Hist(_) => "hist",
        }
    }
}

/// Named, typed metrics, keyed by dot-separated scope paths
/// (`rx.q0.validation.duplicates`). See module docs for the
/// registration discipline.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricRegistry {
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    /// Register (or fold into) a counter.
    pub fn counter(&mut self, name: &str, v: u64) {
        match self.entries.get_mut(name) {
            None => {
                self.entries
                    .insert(name.to_string(), MetricValue::Counter(v));
            }
            Some(MetricValue::Counter(c)) => *c += v,
            Some(other) => panic!(
                "metric {name:?} already registered as {}, not counter",
                other.kind()
            ),
        }
    }

    /// Register a gauge (last write wins).
    pub fn gauge(&mut self, name: &str, v: f64) {
        match self.entries.get_mut(name) {
            None => {
                self.entries.insert(name.to_string(), MetricValue::Gauge(v));
            }
            Some(MetricValue::Gauge(g)) => *g = v,
            Some(other) => panic!(
                "metric {name:?} already registered as {}, not gauge",
                other.kind()
            ),
        }
    }

    /// Register (or merge into) a histogram.
    pub fn hist(&mut self, name: &str, h: &Hist) {
        match self.entries.get_mut(name) {
            None => {
                self.entries
                    .insert(name.to_string(), MetricValue::Hist(Box::new(h.clone())));
            }
            Some(MetricValue::Hist(mine)) => mine.merge(h),
            Some(other) => panic!(
                "metric {name:?} already registered as {}, not hist",
                other.kind()
            ),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a registered metric.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Freeze into a snapshot (name-sorted, serializable).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// A frozen, name-sorted view of a [`MetricRegistry`] with a
/// deterministic JSON serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` sorted by name.
    entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter value by name (0 when absent — convenient for asserts).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// The snapshot without time-derived metrics (names ending in `_ns`
    /// or containing `.time.`): the part that must be bit-identical
    /// across same-seed runs, since wall-clock measurements never are.
    pub fn without_timing(&self) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .filter(|(k, _)| !k.ends_with("_ns") && !k.contains(".time."))
                .cloned()
                .collect(),
        }
    }

    /// Deterministic JSON: entries in name order, counters as integers,
    /// gauges via Rust's shortest-roundtrip float formatting, histograms
    /// as summary stats plus non-empty `[bucket_lo, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        for (i, (name, v)) in self.entries.iter().enumerate() {
            let sep = if i + 1 < self.entries.len() { "," } else { "" };
            match v {
                MetricValue::Counter(c) => {
                    s.push_str(&format!("  \"{name}\": {c}{sep}\n"));
                }
                MetricValue::Gauge(g) => {
                    s.push_str(&format!("  \"{name}\": {}{sep}\n", fmt_f64(*g)));
                }
                MetricValue::Hist(h) => {
                    s.push_str(&format!(
                        "  \"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99),
                    ));
                    for (j, (lo, c)) in h.nonzero_buckets().iter().enumerate() {
                        if j > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&format!("[{lo}, {c}]"));
                    }
                    s.push_str(&format!("]}}{sep}\n"));
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

/// JSON-safe float formatting: finite values use Rust's deterministic
/// shortest-roundtrip form (always with a decimal point), non-finite
/// values become null.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".into();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_fold_and_snapshot_sorts() {
        let mut reg = MetricRegistry::new();
        reg.counter("b.two", 2);
        reg.counter("a.one", 1);
        reg.counter("b.two", 3);
        reg.gauge("c.level", 0.5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a.one", "b.two", "c.level"]);
        assert_eq!(snap.counter("b.two"), 5);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn hists_merge_on_reregistration() {
        let mut reg = MetricRegistry::new();
        let mut a = Hist::new();
        a.record(10);
        let mut b = Hist::new();
        b.record(1000);
        reg.hist("h", &a);
        reg.hist("h", &b);
        match reg.get("h") {
            Some(MetricValue::Hist(h)) => {
                assert_eq!(h.count(), 2);
                assert_eq!(h.max(), 1000);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not counter")]
    fn kind_mismatch_panics() {
        let mut reg = MetricRegistry::new();
        reg.gauge("x", 1.0);
        reg.counter("x", 1);
    }

    #[test]
    fn json_is_deterministic_and_filters_timing() {
        let build = || {
            let mut reg = MetricRegistry::new();
            reg.counter("rx.packets", 7);
            reg.counter("rx.poll_ns", 12345);
            let mut h = Hist::new();
            h.record(3);
            h.record(300);
            reg.hist("rx.fill", &h);
            reg.snapshot()
        };
        let a = build();
        let b = build();
        assert_eq!(a.to_json(), b.to_json());
        let filtered = a.without_timing();
        assert!(filtered.get("rx.poll_ns").is_none());
        assert!(filtered.get("rx.packets").is_some());
        assert!(a.to_json().contains("\"rx.fill\": {\"count\": 2"));
    }
}
