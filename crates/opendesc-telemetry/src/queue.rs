//! The per-queue instrument bundle a datapath driver embeds.
//!
//! One [`QueueTelemetry`] is owned by each queue's driver — never
//! shared, so the hot path updates it without synchronization, and the
//! sharded layer keeps each one inside the worker's `CachePadded` world.
//! It carries the poll-cycle histograms, the hardware-vs-shim field-mix
//! counters, and the queue's trace ring. Everything here is
//! allocation-free after construction; when `enabled` is false the
//! driver skips the clock reads and record calls entirely, which is the
//! telemetry-off arm of the E15 overhead experiment.

use crate::hist::Hist;
use crate::registry::MetricRegistry;
use crate::trace::{TraceKind, TraceRing};

/// Default trace-ring capacity per queue.
pub const DEFAULT_TRACE_CAP: usize = 256;

/// One poll cycle in `2^CLOCK_SAMPLE_SHIFT` is wall-clock timed; the
/// rest skip the two clock reads. Sampling keeps the `poll_ns`
/// histogram statistically honest while holding the hot-path tax to
/// the integer-only instruments (E15's ≤3% budget — on a ~1µs batch,
/// two clock reads per batch alone would eat most of it).
pub const CLOCK_SAMPLE_SHIFT: u32 = 3;

/// Per-queue hot-path instruments (see module docs).
#[derive(Debug, Clone)]
pub struct QueueTelemetry {
    enabled: bool,
    /// Poll-cycle counter driving [`QueueTelemetry::sample_clock`].
    tick: u32,
    /// Cost of one batched poll cycle, nanoseconds.
    pub poll_ns: Hist,
    /// Batch fill ratio per non-empty poll, per-mille of capacity.
    pub batch_fill_permille: Hist,
    /// Completion-ring occupancy observed at poll entry.
    pub ring_occupancy: Hist,
    /// Metadata fields served from hardware completion reads.
    pub fields_hw: u64,
    /// Metadata fields served by SoftNIC shims.
    pub fields_sw: u64,
    /// The queue's poll-cycle event ring.
    pub trace: TraceRing,
}

impl Default for QueueTelemetry {
    fn default() -> Self {
        QueueTelemetry::new(0, DEFAULT_TRACE_CAP)
    }
}

impl QueueTelemetry {
    /// A fresh, **disabled** instrument bundle: telemetry is opt-in so
    /// an unconfigured driver pays nothing on the hot path.
    pub fn new(queue: u16, trace_cap: usize) -> QueueTelemetry {
        QueueTelemetry {
            enabled: false,
            tick: 0,
            poll_ns: Hist::new(),
            batch_fill_permille: Hist::new(),
            ring_occupancy: Hist::new(),
            fields_hw: 0,
            fields_sw: 0,
            trace: TraceRing::new(queue, trace_cap),
        }
    }

    /// Whether the driver should pay for instrumentation at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    pub fn set_queue(&mut self, queue: u16) {
        self.trace.set_queue(queue);
    }

    pub fn queue(&self) -> u16 {
        self.trace.queue()
    }

    /// Advance the poll-cycle tick and say whether this cycle should be
    /// wall-clock timed (true for 1 in `2^`[`CLOCK_SAMPLE_SHIFT`]
    /// cycles). The integer-only instruments are recorded every cycle;
    /// only the `Instant` reads are sampled.
    #[inline]
    pub fn sample_clock(&mut self) -> bool {
        self.tick = self.tick.wrapping_add(1);
        self.tick & ((1 << CLOCK_SAMPLE_SHIFT) - 1) == 0
    }

    /// Record a trace event (no-op when disabled).
    #[inline]
    pub fn event(&mut self, kind: TraceKind, a: u64, b: u64) {
        if self.enabled {
            self.trace.record(kind, a, b);
        }
    }

    /// Fraction of fields served by hardware, when anything was served.
    pub fn hw_field_fraction(&self) -> f64 {
        let total = self.fields_hw + self.fields_sw;
        if total == 0 {
            0.0
        } else {
            self.fields_hw as f64 / total as f64
        }
    }

    /// Register this queue's instruments under `scope` (e.g. `rx.q0`).
    /// Registering several queues under one scope merges them — that is
    /// the engine-wide view.
    pub fn register_into(&self, reg: &mut MetricRegistry, scope: &str) {
        reg.hist(&format!("{scope}.time.poll_ns"), &self.poll_ns);
        reg.hist(
            &format!("{scope}.batch_fill_permille"),
            &self.batch_fill_permille,
        );
        reg.hist(&format!("{scope}.ring_occupancy"), &self.ring_occupancy);
        reg.counter(&format!("{scope}.fields_hw"), self.fields_hw);
        reg.counter(&format!("{scope}.fields_sw"), self.fields_sw);
        reg.counter(&format!("{scope}.trace_recorded"), self.trace.recorded());
        reg.counter(&format!("{scope}.trace_dropped"), self.trace.dropped());
    }

    /// Reset instruments (trace ring included).
    pub fn reset(&mut self) {
        self.tick = 0;
        self.poll_ns.reset();
        self.batch_fill_permille.reset();
        self.ring_occupancy.reset();
        self.fields_hw = 0;
        self.fields_sw = 0;
        self.trace.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_queue_records_no_events() {
        let mut q = QueueTelemetry::new(2, 8);
        assert!(!q.enabled(), "telemetry must be opt-in");
        q.event(TraceKind::Doorbell, 1, 0);
        assert_eq!(q.trace.recorded(), 0);
        q.set_enabled(true);
        q.event(TraceKind::Doorbell, 1, 0);
        assert_eq!(q.trace.recorded(), 1);
        assert_eq!(q.trace.events()[0].queue, 2);
    }

    #[test]
    fn registers_under_scope_and_merges_across_queues() {
        let mut a = QueueTelemetry::new(0, 8);
        let mut b = QueueTelemetry::new(1, 8);
        a.poll_ns.record(100);
        b.poll_ns.record(200);
        a.fields_hw = 3;
        b.fields_hw = 4;
        a.fields_sw = 1;
        let mut reg = MetricRegistry::new();
        a.register_into(&mut reg, "rx.engine");
        b.register_into(&mut reg, "rx.engine");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("rx.engine.fields_hw"), 7);
        assert_eq!(snap.counter("rx.engine.fields_sw"), 1);
        match snap.get("rx.engine.time.poll_ns") {
            Some(crate::MetricValue::Hist(h)) => assert_eq!(h.count(), 2),
            other => panic!("wrong kind {other:?}"),
        }
        // Timing filtered out of the deterministic view.
        assert!(snap
            .without_timing()
            .get("rx.engine.time.poll_ns")
            .is_none());
    }

    #[test]
    fn hw_fraction_is_safe_on_empty() {
        let q = QueueTelemetry::default();
        assert_eq!(q.hw_field_fraction(), 0.0);
    }
}
