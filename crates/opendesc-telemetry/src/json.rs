//! A minimal JSON reader for the perf-gate.
//!
//! The tree has no serde (hermetic build, vendored shims only), and the
//! bench records are hand-formatted JSON; the gate needs to read them
//! back. This is a small recursive-descent parser over the full JSON
//! grammar — objects, arrays, strings with the standard escapes,
//! numbers, booleans, null — returning an owned [`Json`] tree with the
//! few accessors the gate actually uses.

/// An owned JSON value. Object member order is preserved (the bench
/// records are deterministic, so order carries meaning in diffs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry the byte offset they tripped at.
pub fn parse(src: &str) -> Result<Json, String> {
    let b = src.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing input at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.i
            )),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            members.push((key, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.i,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.i,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 5 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the source is a &str, so
                    // boundaries are valid).
                    let rest = &self.b[self.i..];
                    let ch_len = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf8")?
                        .chars()
                        .next()
                        .map(|c| c.len_utf8())
                        .unwrap_or(1);
                    s.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.i += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_record_shape() {
        let doc = r#"{
  "experiment": "e13_sharded_rx",
  "rows": [
    {"model": "e1000e", "queues": 1, "mpps": 13.05},
    {"model": "e1000e", "queues": 4, "mpps": 39.9}
  ],
  "scaling_4q_vs_1q_e1000e": 3.05
}"#;
        let j = parse(doc).unwrap();
        assert_eq!(
            j.get("experiment").and_then(Json::as_str),
            Some("e13_sharded_rx")
        );
        let rows = j.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("mpps").and_then(Json::as_f64), Some(39.9));
        assert_eq!(
            j.get("scaling_4q_vs_1q_e1000e").and_then(Json::as_f64),
            Some(3.05)
        );
    }

    #[test]
    fn parses_scalars_escapes_and_rejects_garbage() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(parse(r#""a\n\"bA""#).unwrap(), Json::Str("a\n\"bA".into()));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn snapshot_json_round_trips_through_the_parser() {
        use crate::{Hist, MetricRegistry};
        let mut reg = MetricRegistry::new();
        reg.counter("a.packets", 41);
        reg.gauge("a.ratio", 0.97);
        let mut h = Hist::new();
        h.record(7);
        reg.hist("a.lat", &h);
        let json = reg.snapshot().to_json();
        let doc = parse(&json).expect("snapshot JSON parses");
        assert_eq!(doc.get("a.packets").and_then(Json::as_f64), Some(41.0));
        assert_eq!(doc.get("a.ratio").and_then(Json::as_f64), Some(0.97));
        let hist = doc.get("a.lat").unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(1.0));
    }
}
