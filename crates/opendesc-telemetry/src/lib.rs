//! # opendesc-telemetry — workspace-wide observability primitives
//!
//! The substrate every experiment and CI gate stands on: production
//! operation of the RX stack means you can *see* the datapath, and
//! credible performance claims need continuous, comparable measurement
//! (the P4 per-stage-visibility and hXDP continuous-measurement
//! arguments). This crate provides four pieces, dependency-free so
//! every workspace crate can use them:
//!
//! * [`MetricRegistry`] / [`Snapshot`] — named, typed counters, gauges
//!   and histograms that components register into at snapshot time;
//!   the snapshot serializes to deterministic JSON so same-seed runs
//!   diff byte-for-byte and CI can gate on committed baselines.
//! * [`Hist`] — zero-alloc log-bucket histograms (`[u64; 64]`, one
//!   bucket per power of two) for poll-cycle cost, batch fill ratio and
//!   ring occupancy; recorded in per-worker cells on the hot path,
//!   merged only when a snapshot is taken.
//! * [`TraceRing`] / [`TraceEvent`] — a fixed-capacity per-queue ring
//!   of poll-cycle events (doorbells, writebacks, validation verdicts,
//!   health transitions, watchdog actions) dumped on test failure or
//!   fault-injection anomaly.
//! * [`QueueTelemetry`] — the per-queue bundle a driver embeds: the
//!   histograms, the hardware-vs-shim field-mix counters, and the trace
//!   ring, behind a single `enabled` switch (the E15 on/off arms).
//!
//! The [`json`] module is the matching reader: a minimal parser the
//! perf-gate uses to load bench records back (no serde in the tree).

pub mod hist;
pub mod json;
pub mod queue;
pub mod registry;
pub mod trace;

pub use hist::{bucket_hi, bucket_index, bucket_lo, Hist, HIST_BUCKETS};
pub use json::{parse as parse_json, Json};
pub use queue::{QueueTelemetry, DEFAULT_TRACE_CAP};
pub use registry::{MetricRegistry, MetricValue, Snapshot};
pub use trace::{TraceEvent, TraceKind, TraceRing};
