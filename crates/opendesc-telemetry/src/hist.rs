//! Zero-allocation log-bucket histograms for hot-path measurement.
//!
//! A [`Hist`] is a fixed `[u64; 64]` of power-of-two buckets plus
//! count/sum/min/max — no heap, `Copy`-cheap to reset, and safe to keep
//! in a per-worker `CachePadded` cell. Recording is a `leading_zeros`
//! and two adds; merging is element-wise addition, so per-worker cells
//! can be folded into an engine-wide view only at snapshot time (the
//! same discipline the sharded engine uses for its counters).
//!
//! Bucket `0` holds the value `0`; bucket `i > 0` holds values `v` with
//! `2^(i-1) <= v < 2^i` (i.e. `floor(log2(v)) == i - 1`), and the last
//! bucket absorbs everything from `2^62` up. Merging is associative and
//! commutative by construction — a property the telemetry tests pin
//! down with proptests, because snapshot correctness depends on it.

/// Number of buckets: value `0`, then one per power of two up to `2^62`,
/// with the last bucket open-ended.
pub const HIST_BUCKETS: usize = 64;

/// The bucket index value `v` lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Inclusive upper bound of bucket `i` (the last bucket saturates).
pub fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-capacity logarithmic histogram (see module docs).
#[derive(Clone, PartialEq, Eq)]
pub struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hist")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl Hist {
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Record one value. Constant time, no allocation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.buckets[bucket_index(v)] += 1;
    }

    /// Fold another histogram into this one (element-wise; associative
    /// and commutative, so per-worker cells can merge in any order).
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound of the first bucket whose
    /// cumulative count reaches `q * count`, clamped to the observed
    /// `[min, max]` range. `q` in `[0, 1]`; returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_hi(i).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// `(bucket_lo, count)` for non-empty buckets, low to high — the
    /// compact form the snapshot serializes.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_lo(i), *c))
            .collect()
    }

    pub fn reset(&mut self) {
        *self = Hist::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for k in 1..62 {
            let lo = 1u64 << k;
            assert_eq!(bucket_index(lo - 1), k, "2^{k}-1");
            assert_eq!(bucket_index(lo), k + 1, "2^{k}");
            assert_eq!(bucket_index(lo + 1), k + 1, "2^{k}+1");
        }
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        for i in 0..HIST_BUCKETS {
            assert!(bucket_lo(i) <= bucket_hi(i));
            assert_eq!(bucket_index(bucket_lo(i)), i);
            if i < HIST_BUCKETS - 1 {
                assert_eq!(bucket_index(bucket_hi(i)), i);
            }
        }
    }

    #[test]
    fn record_and_summary_stats() {
        let mut h = Hist::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 221.2).abs() < 1e-9);
        // p50 falls in the bucket holding 3 ([2,3]), clamped to range.
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut all = Hist::new();
        for v in [0u64, 5, 17, 64] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 5, 1 << 40] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
