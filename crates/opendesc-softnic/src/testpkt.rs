//! Frame builders: construct valid Ethernet/IPv4/{TCP,UDP} frames with
//! correct lengths and checksums. Used by unit tests here and by the
//! workload generator in `opendesc-nicsim`.

use crate::checksum::{ipv4_header_checksum, l4_checksum};
use crate::wire::{ethertype, ipproto};

/// Build an Ethernet(+optional 802.1Q)/IPv4/UDP frame.
pub fn udp4(
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
    vlan_tci: Option<u16>,
) -> Vec<u8> {
    build4(
        src_ip,
        dst_ip,
        ipproto::UDP,
        src_port,
        dst_port,
        payload,
        vlan_tci,
    )
}

/// Build an Ethernet(+optional 802.1Q)/IPv4/TCP frame (fixed 20-byte TCP
/// header, no options).
pub fn tcp4(
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
    vlan_tci: Option<u16>,
) -> Vec<u8> {
    build4(
        src_ip,
        dst_ip,
        ipproto::TCP,
        src_port,
        dst_port,
        payload,
        vlan_tci,
    )
}

fn build4(
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    proto: u8,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
    vlan_tci: Option<u16>,
) -> Vec<u8> {
    let l4_hdr = if proto == ipproto::TCP { 20 } else { 8 };
    let ip_total = 20 + l4_hdr + payload.len();
    let mut f = Vec::with_capacity(18 + ip_total);

    // Ethernet.
    f.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x01]); // dst
    f.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x02]); // src
    if let Some(tci) = vlan_tci {
        f.extend_from_slice(&ethertype::VLAN.to_be_bytes());
        f.extend_from_slice(&tci.to_be_bytes());
    }
    f.extend_from_slice(&ethertype::IPV4.to_be_bytes());

    // IPv4 header.
    let ip_start = f.len();
    f.push(0x45); // version 4, IHL 5
    f.push(0);
    f.extend_from_slice(&(ip_total as u16).to_be_bytes());
    f.extend_from_slice(&0x1234u16.to_be_bytes()); // ident
    f.extend_from_slice(&[0x40, 0]); // DF, no fragment offset
    f.push(64); // TTL
    f.push(proto);
    f.extend_from_slice(&[0, 0]); // checksum placeholder
    f.extend_from_slice(&src_ip);
    f.extend_from_slice(&dst_ip);
    let csum = ipv4_header_checksum(&f[ip_start..ip_start + 20]);
    f[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());

    // L4 header.
    let l4_start = f.len();
    if proto == ipproto::TCP {
        f.extend_from_slice(&src_port.to_be_bytes());
        f.extend_from_slice(&dst_port.to_be_bytes());
        f.extend_from_slice(&1000u32.to_be_bytes()); // seq
        f.extend_from_slice(&2000u32.to_be_bytes()); // ack
        f.push(5 << 4); // data offset 5
        f.push(0x18); // PSH|ACK
        f.extend_from_slice(&0xFFFFu16.to_be_bytes()); // window
        f.extend_from_slice(&[0, 0]); // checksum placeholder
        f.extend_from_slice(&[0, 0]); // urgent
    } else {
        f.extend_from_slice(&src_port.to_be_bytes());
        f.extend_from_slice(&dst_port.to_be_bytes());
        f.extend_from_slice(&((8 + payload.len()) as u16).to_be_bytes());
        f.extend_from_slice(&[0, 0]); // checksum placeholder
    }
    f.extend_from_slice(payload);

    // L4 checksum over pseudo-header + segment.
    let seg = &f[l4_start..];
    let csum = l4_checksum(src_ip, dst_ip, proto, seg);
    let csum_off = l4_start + if proto == ipproto::TCP { 16 } else { 6 };
    f[csum_off..csum_off + 2].copy_from_slice(&csum.to_be_bytes());
    f
}

/// A memcached-style KVS GET request payload: `get <key>\r\n`.
pub fn kvs_get_payload(key: &str) -> Vec<u8> {
    format!("get {key}\r\n").into_bytes()
}

/// A seed-deterministic valid frame: cycles through UDP, TCP, VLAN and
/// KVS-GET shapes with seed-derived addresses, ports and payloads. The
/// conformance fuzzer uses this so every differential run is
/// reproducible from its seed alone.
pub fn seeded_frame(seed: u64) -> Vec<u8> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let r = next();
    let src = [10, (r >> 8) as u8, (r >> 16) as u8, (r >> 24) as u8];
    let d = next();
    let dst = [10, (d >> 8) as u8, (d >> 16) as u8, (d >> 24) as u8];
    let p = next();
    let sport = 1024 + (p as u16 % 50000);
    let dport = 1 + ((p >> 16) as u16 % 60000);
    let vlan = if p & 0x10_0000 != 0 {
        Some((p >> 32) as u16 & 0x0FFF)
    } else {
        None
    };
    let n = next();
    let payload: Vec<u8> = (0..(n % 64) as usize + 4)
        .map(|i| (n >> (i % 8)) as u8 ^ i as u8)
        .collect();
    match next() % 3 {
        0 => udp4(src, dst, sport, dport, &payload, vlan),
        1 => tcp4(src, dst, sport, dport, &payload, vlan),
        _ => {
            let key = format!("k{:08x}", n as u32);
            udp4(src, dst, sport, 11211, &kvs_get_payload(&key), vlan)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::{internet_checksum, verify_l4_checksum};
    use crate::wire::ParsedFrame;

    #[test]
    fn built_udp_frame_has_valid_checksums() {
        let f = udp4([10, 0, 0, 1], [10, 0, 0, 2], 53, 9999, b"dns?", None);
        let p = ParsedFrame::parse(&f).unwrap();
        let ip = p.ipv4.unwrap();
        assert_eq!(internet_checksum(ip.header()), 0, "IP header must sum to 0");
        assert!(verify_l4_checksum(&p), "UDP checksum must verify");
    }

    #[test]
    fn built_tcp_frame_has_valid_checksums() {
        let f = tcp4([1, 2, 3, 4], [5, 6, 7, 8], 80, 1024, b"GET /", Some(0x0042));
        let p = ParsedFrame::parse(&f).unwrap();
        assert!(verify_l4_checksum(&p), "TCP checksum must verify");
        assert_eq!(p.vlan_tci, Some(0x0042));
    }

    #[test]
    fn kvs_payload_shape() {
        assert_eq!(kvs_get_payload("user:42"), b"get user:42\r\n");
    }
}
