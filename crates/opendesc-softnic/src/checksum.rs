//! Internet checksum (RFC 1071) and the IPv4/L4 helpers built on it.
//!
//! These are the reference software implementations behind the
//! `ip_checksum` and `l4_checksum` semantics: when the selected completion
//! layout does not carry checksum validity, the SoftNIC shim recomputes it
//! here (at the cost the selection objective charged for it).

use crate::wire::{ipproto, ParsedFrame};

/// RFC 1071 one's-complement sum over `data`, returned folded and
/// complemented (i.e. the value to *store* in a checksum field computed
/// over data whose checksum field is zero; a verify over data including a
/// correct checksum yields 0).
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data, 0))
}

fn sum_words(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        acc += u16::from_be_bytes([*last, 0]) as u32;
    }
    acc
}

fn fold(mut acc: u32) -> u16 {
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    acc as u16
}

/// Checksum of an IPv4 header whose checksum field is zeroed (or whose
/// current value should be replaced).
pub fn ipv4_header_checksum(header: &[u8]) -> u16 {
    debug_assert!(header.len() >= 20);
    let mut acc = sum_words(&header[..10], 0);
    // Skip the checksum field at bytes 10..12.
    acc = sum_words(&header[12..], acc);
    !fold(acc)
}

/// Verify an IPv4 header in place (including its checksum field): valid
/// iff the one's-complement sum is 0xFFFF (folded ~0).
pub fn verify_ipv4_checksum(header: &[u8]) -> bool {
    internet_checksum(header) == 0
}

/// TCP/UDP checksum over the IPv4 pseudo-header plus the L4 segment, with
/// the segment's checksum field assumed zeroed.
pub fn l4_checksum(src_ip: [u8; 4], dst_ip: [u8; 4], proto: u8, segment: &[u8]) -> u16 {
    let mut acc = 0u32;
    acc = sum_words(&src_ip, acc);
    acc = sum_words(&dst_ip, acc);
    acc += proto as u32;
    acc += segment.len() as u32;
    acc = sum_words(segment, acc);
    let c = !fold(acc);
    // UDP transmits an all-zero checksum as 0xFFFF.
    if proto == ipproto::UDP && c == 0 {
        0xFFFF
    } else {
        c
    }
}

/// Verify the L4 checksum of a parsed frame (checksum field included in
/// the sum; valid iff the folded sum complements to zero).
pub fn verify_l4_checksum(p: &ParsedFrame<'_>) -> bool {
    let Some(ip) = &p.ipv4 else { return false };
    let seg = ip.payload();
    if seg.is_empty() {
        return false;
    }
    let mut acc = 0u32;
    acc = sum_words(&ip.src().to_be_bytes(), acc);
    acc = sum_words(&ip.dst().to_be_bytes(), acc);
    acc += ip.protocol() as u32;
    acc += seg.len() as u32;
    acc = sum_words(seg, acc);
    fold(acc) == 0xFFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testpkt;
    use crate::wire::ParsedFrame;
    use proptest::prelude::*;

    #[test]
    fn rfc1071_worked_example() {
        // Classic example: 0x0001 0xF203 0xF4F5 0xF6F7 → sum 0xDDF2,
        // checksum 0x220D.
        let data = [0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7];
        assert_eq!(internet_checksum(&data), 0x220D);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00u16);
    }

    #[test]
    fn ipv4_header_checksum_known_vector() {
        // Wikipedia's IPv4 checksum example header.
        let hdr = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(ipv4_header_checksum(&hdr), 0xB861);
        let mut with = hdr;
        with[10..12].copy_from_slice(&0xB861u16.to_be_bytes());
        assert!(verify_ipv4_checksum(&with));
    }

    #[test]
    fn corrupted_frame_fails_l4_verify() {
        let mut f = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 1, 2, b"payload", None);
        let p = ParsedFrame::parse(&f).unwrap();
        assert!(verify_l4_checksum(&p));
        let last = f.len() - 1;
        f[last] ^= 0xFF;
        let p = ParsedFrame::parse(&f).unwrap();
        assert!(!verify_l4_checksum(&p));
    }

    proptest! {
        #[test]
        fn checksum_detects_single_byte_flips(
            payload in proptest::collection::vec(any::<u8>(), 1..256),
            flip_pos_seed in any::<usize>(),
            flip_bits in 1u8..=255,
        ) {
            let f = testpkt::udp4([1,2,3,4],[5,6,7,8], 10, 20, &payload, None);
            let p = ParsedFrame::parse(&f).unwrap();
            prop_assert!(verify_l4_checksum(&p));
            // Flip one payload byte; verification must fail (one's
            // complement sums detect any single-byte change).
            let mut g = f.clone();
            let start = g.len() - payload.len();
            let pos = start + flip_pos_seed % payload.len();
            g[pos] ^= flip_bits;
            let q = ParsedFrame::parse(&g).unwrap();
            prop_assert!(!verify_l4_checksum(&q));
        }

        #[test]
        fn built_frames_always_verify(
            payload in proptest::collection::vec(any::<u8>(), 0..512),
            sp in any::<u16>(),
            dp in any::<u16>(),
            tcp in any::<bool>(),
        ) {
            let f = if tcp {
                testpkt::tcp4([9,9,9,9],[8,8,8,8], sp, dp, &payload, None)
            } else {
                testpkt::udp4([9,9,9,9],[8,8,8,8], sp, dp, &payload, None)
            };
            let p = ParsedFrame::parse(&f).unwrap();
            prop_assert!(verify_ipv4_checksum(p.ipv4.unwrap().header()));
            prop_assert!(verify_l4_checksum(&p));
        }
    }
}
