//! # opendesc-softnic — reference software implementations of semantics
//!
//! Every OpenDesc semantic ships with a reference implementation (paper
//! §2: "we propose each offload feature to come with a reference
//! implementation"). This crate provides them: wire-format views,
//! internet checksums, the Toeplitz RSS hash (verified against the
//! Microsoft test vectors), packet typing, flow tagging, and KVS key
//! extraction — plus the [`SoftNic`] engine that dispatches a semantic id
//! to its implementation. The NIC simulator reuses these same functions
//! as its offload engine, so "hardware" and SoftNIC shims agree by
//! construction.
pub mod calibrate;
pub mod checksum;
pub mod engine;
pub mod fixup;
pub mod testpkt;
pub mod toeplitz;
pub mod wire;

pub use calibrate::{calibrate, CalibrationReport};
pub use engine::{csum_status, kvs_key_hash, ptype, rx_status, ShimMemo, ShimOp, SoftNic};
pub use toeplitz::{rss_ipv4, rss_ipv4_l4, toeplitz_hash, MSFT_RSS_KEY};
