//! Transmit-side frame fix-ups: the software fallbacks for TX offload
//! hints a descriptor layout cannot carry (checksum insertion, VLAN tag
//! insertion). The NIC simulator's TX engine uses the same functions, so
//! hardware offload and software fallback produce identical wire frames.

use crate::checksum::{ipv4_header_checksum, l4_checksum};
use crate::wire::{ethertype, EthFrame, Ipv4View};

/// Compute and store the IPv4 header checksum in place. Returns `false`
/// when the frame has no IPv4 header to fix.
pub fn fill_ipv4_checksum(frame: &mut [u8]) -> bool {
    let Some(eth) = EthFrame::new(frame) else {
        return false;
    };
    if eth.ethertype() != Some(ethertype::IPV4) {
        return false;
    }
    let l3 = eth.l3_offset();
    let Some(ip) = Ipv4View::new(&frame[l3..]) else {
        return false;
    };
    let hlen = ip.header_len();
    frame[l3 + 10] = 0;
    frame[l3 + 11] = 0;
    let csum = ipv4_header_checksum(&frame[l3..l3 + hlen]);
    frame[l3 + 10..l3 + 12].copy_from_slice(&csum.to_be_bytes());
    true
}

/// Compute and store the TCP/UDP checksum in place. Returns `false` when
/// the frame has no recognizable L4 segment.
pub fn fill_l4_checksum(frame: &mut [u8]) -> bool {
    let Some(eth) = EthFrame::new(frame) else {
        return false;
    };
    if eth.ethertype() != Some(ethertype::IPV4) {
        return false;
    }
    let l3 = eth.l3_offset();
    let Some(ip) = Ipv4View::new(&frame[l3..]) else {
        return false;
    };
    let proto = ip.protocol();
    let csum_rel = match proto {
        crate::wire::ipproto::TCP => 16,
        crate::wire::ipproto::UDP => 6,
        _ => return false,
    };
    let (src, dst) = (ip.src().to_be_bytes(), ip.dst().to_be_bytes());
    let l4 = l3 + ip.header_len();
    let seg_end = (l3 + ip.total_len() as usize).min(frame.len());
    if l4 + csum_rel + 2 > seg_end {
        return false;
    }
    frame[l4 + csum_rel] = 0;
    frame[l4 + csum_rel + 1] = 0;
    let csum = l4_checksum(src, dst, proto, &frame[l4..seg_end]);
    frame[l4 + csum_rel..l4 + csum_rel + 2].copy_from_slice(&csum.to_be_bytes());
    true
}

/// Insert an 802.1Q tag with the given TCI after the MAC addresses.
/// Returns the new frame (4 bytes longer); `None` if the frame is
/// already tagged or too short.
pub fn insert_vlan(frame: &[u8], tci: u16) -> Option<Vec<u8>> {
    let eth = EthFrame::new(frame)?;
    if eth.has_vlan() {
        return None;
    }
    let mut out = Vec::with_capacity(frame.len() + 4);
    out.extend_from_slice(&frame[..12]);
    out.extend_from_slice(&ethertype::VLAN.to_be_bytes());
    out.extend_from_slice(&tci.to_be_bytes());
    out.extend_from_slice(&frame[12..]);
    Some(out)
}

/// Allocation-free [`insert_vlan`]: grow the caller's buffer by 4 bytes
/// and shift the post-MAC payload in place (no fresh `Vec` once the
/// buffer's capacity has warmed up). Returns `false` — frame unchanged —
/// exactly when `insert_vlan` would return `None`.
pub fn insert_vlan_in_place(frame: &mut Vec<u8>, tci: u16) -> bool {
    let Some(eth) = EthFrame::new(frame) else {
        return false;
    };
    if eth.has_vlan() {
        return false;
    }
    frame.extend_from_slice(&[0u8; 4]);
    let end = frame.len();
    frame.copy_within(12..end - 4, 16);
    frame[12..14].copy_from_slice(&ethertype::VLAN.to_be_bytes());
    frame[14..16].copy_from_slice(&tci.to_be_bytes());
    true
}

/// [`insert_vlan_in_place`] over a fixed-capacity slice holding a
/// `len`-byte frame (the batched TX arena case: every slot reserves the
/// 4-byte headroom up front). Returns the new frame length, or `None`
/// with the slice unchanged when the frame is already tagged, too
/// short, or the slot lacks headroom.
pub fn insert_vlan_in_slice(buf: &mut [u8], len: usize, tci: u16) -> Option<usize> {
    if len + 4 > buf.len() {
        return None;
    }
    let eth = EthFrame::new(&buf[..len])?;
    if eth.has_vlan() {
        return None;
    }
    buf.copy_within(12..len, 16);
    buf[12..14].copy_from_slice(&ethertype::VLAN.to_be_bytes());
    buf[14..16].copy_from_slice(&tci.to_be_bytes());
    Some(len + 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::{verify_ipv4_checksum, verify_l4_checksum};
    use crate::testpkt;
    use crate::wire::ParsedFrame;

    fn zeroed_csums() -> Vec<u8> {
        let mut f = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 5, 7, b"fixme", None);
        // Zero both checksums to simulate an offload-requesting sender.
        f[24] = 0;
        f[25] = 0; // IP csum at eth(14)+10
        f[40] = 0;
        f[41] = 0; // UDP csum at eth(14)+ip(20)+6
        f
    }

    #[test]
    fn fill_ipv4_checksum_restores_validity() {
        let mut f = zeroed_csums();
        assert!(!verify_ipv4_checksum(&f[14..34]));
        assert!(fill_ipv4_checksum(&mut f));
        assert!(verify_ipv4_checksum(&f[14..34]));
    }

    #[test]
    fn fill_l4_checksum_restores_validity() {
        let mut f = zeroed_csums();
        fill_ipv4_checksum(&mut f);
        assert!(fill_l4_checksum(&mut f));
        let p = ParsedFrame::parse(&f).unwrap();
        assert!(verify_l4_checksum(&p));
    }

    #[test]
    fn fixups_match_builder_output() {
        // Fixing a zeroed frame must reproduce testpkt's own checksums.
        let golden = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 5, 7, b"fixme", None);
        let mut f = zeroed_csums();
        fill_ipv4_checksum(&mut f);
        fill_l4_checksum(&mut f);
        assert_eq!(f, golden);
    }

    #[test]
    fn tcp_checksum_offset_handled() {
        let mut f = testpkt::tcp4([1, 1, 1, 1], [2, 2, 2, 2], 80, 81, b"abc", None);
        let off = 14 + 20 + 16;
        f[off] = 0;
        f[off + 1] = 0;
        assert!(fill_l4_checksum(&mut f));
        let p = ParsedFrame::parse(&f).unwrap();
        assert!(verify_l4_checksum(&p));
    }

    #[test]
    fn insert_vlan_produces_parsable_tag() {
        let f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"x", None);
        let tagged = insert_vlan(&f, 0x2064).unwrap();
        assert_eq!(tagged.len(), f.len() + 4);
        let p = ParsedFrame::parse(&tagged).unwrap();
        assert_eq!(p.vlan_tci, Some(0x2064));
        // L4 payload unchanged.
        assert_eq!(p.l4_payload(), Some(&b"x"[..]));
    }

    #[test]
    fn insert_vlan_rejects_already_tagged() {
        let f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"x", Some(7));
        assert!(insert_vlan(&f, 9).is_none());
    }

    #[test]
    fn in_place_vlan_variants_match_allocating_insert() {
        let f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"inplace", None);
        let golden = insert_vlan(&f, 0x3011).unwrap();

        let mut vec_frame = f.clone();
        assert!(insert_vlan_in_place(&mut vec_frame, 0x3011));
        assert_eq!(vec_frame, golden);

        let mut slot = vec![0u8; f.len() + 64];
        slot[..f.len()].copy_from_slice(&f);
        let new_len = insert_vlan_in_slice(&mut slot, f.len(), 0x3011).unwrap();
        assert_eq!(&slot[..new_len], &golden[..]);

        // Already-tagged and too-short frames are refused unchanged,
        // exactly like `insert_vlan`.
        let tagged = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"x", Some(7));
        let mut t = tagged.clone();
        assert!(!insert_vlan_in_place(&mut t, 9));
        assert_eq!(t, tagged);
        let mut short = vec![0u8; 8];
        assert!(!insert_vlan_in_place(&mut short, 9));
        let mut slot = vec![0u8; 64];
        assert_eq!(insert_vlan_in_slice(&mut slot, 8, 9), None);
    }

    #[test]
    fn non_ip_frames_refused() {
        let mut arp = vec![0u8; 42];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert!(!fill_ipv4_checksum(&mut arp));
        assert!(!fill_l4_checksum(&mut arp));
    }
}
