//! Zero-copy wire-format views over raw Ethernet frames.
//!
//! Minimal, allocation-free accessors in the smoltcp style: a view wraps a
//! byte slice and exposes typed getters. Only the protocols the semantic
//! implementations need are covered (Ethernet II, 802.1Q, IPv4, TCP, UDP).

/// EtherType values used by the views.
pub mod ethertype {
    pub const IPV4: u16 = 0x0800;
    pub const VLAN: u16 = 0x8100;
    pub const QINQ: u16 = 0x88A8;
    pub const IPV6: u16 = 0x86DD;
    pub const ARP: u16 = 0x0806;
}

/// IPv4 protocol numbers used by the views.
pub mod ipproto {
    pub const TCP: u8 = 6;
    pub const UDP: u8 = 17;
    pub const ICMP: u8 = 1;
}

fn be16(b: &[u8], off: usize) -> Option<u16> {
    Some(u16::from_be_bytes([*b.get(off)?, *b.get(off + 1)?]))
}

fn be32(b: &[u8], off: usize) -> Option<u32> {
    Some(u32::from_be_bytes([
        *b.get(off)?,
        *b.get(off + 1)?,
        *b.get(off + 2)?,
        *b.get(off + 3)?,
    ]))
}

/// View over an Ethernet II frame (with optional single 802.1Q tag).
#[derive(Debug, Clone, Copy)]
pub struct EthFrame<'a> {
    bytes: &'a [u8],
}

impl<'a> EthFrame<'a> {
    /// Wrap a frame; `None` if shorter than the 14-byte Ethernet header.
    pub fn new(bytes: &'a [u8]) -> Option<Self> {
        (bytes.len() >= 14).then_some(EthFrame { bytes })
    }

    pub fn dst_mac(&self) -> [u8; 6] {
        self.bytes[0..6].try_into().unwrap()
    }

    pub fn src_mac(&self) -> [u8; 6] {
        self.bytes[6..12].try_into().unwrap()
    }

    /// Outer ethertype (may be the VLAN TPID).
    pub fn outer_ethertype(&self) -> u16 {
        be16(self.bytes, 12).unwrap()
    }

    /// Whether a single 802.1Q tag is present.
    pub fn has_vlan(&self) -> bool {
        matches!(self.outer_ethertype(), ethertype::VLAN | ethertype::QINQ)
    }

    /// VLAN tag control information, if tagged.
    pub fn vlan_tci(&self) -> Option<u16> {
        if self.has_vlan() {
            be16(self.bytes, 14)
        } else {
            None
        }
    }

    /// Ethertype of the encapsulated payload, after any VLAN tag.
    pub fn ethertype(&self) -> Option<u16> {
        if self.has_vlan() {
            be16(self.bytes, 16)
        } else {
            Some(self.outer_ethertype())
        }
    }

    /// Byte offset of the L3 header.
    pub fn l3_offset(&self) -> usize {
        if self.has_vlan() {
            18
        } else {
            14
        }
    }

    /// L3 payload slice.
    pub fn l3(&self) -> &'a [u8] {
        &self.bytes[self.l3_offset().min(self.bytes.len())..]
    }

    /// Whole frame.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }
}

/// View over an IPv4 header (+payload).
#[derive(Debug, Clone, Copy)]
pub struct Ipv4View<'a> {
    bytes: &'a [u8],
}

impl<'a> Ipv4View<'a> {
    /// Wrap an IPv4 packet; validates version nibble and minimum length.
    pub fn new(bytes: &'a [u8]) -> Option<Self> {
        if bytes.len() < 20 || bytes[0] >> 4 != 4 {
            return None;
        }
        let ihl = ((bytes[0] & 0xF) as usize) * 4;
        (ihl >= 20 && bytes.len() >= ihl).then_some(Ipv4View { bytes })
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        ((self.bytes[0] & 0xF) as usize) * 4
    }

    pub fn total_len(&self) -> u16 {
        be16(self.bytes, 2).unwrap()
    }

    pub fn ident(&self) -> u16 {
        be16(self.bytes, 4).unwrap()
    }

    pub fn ttl(&self) -> u8 {
        self.bytes[8]
    }

    pub fn protocol(&self) -> u8 {
        self.bytes[9]
    }

    pub fn checksum(&self) -> u16 {
        be16(self.bytes, 10).unwrap()
    }

    pub fn src(&self) -> u32 {
        be32(self.bytes, 12).unwrap()
    }

    pub fn dst(&self) -> u32 {
        be32(self.bytes, 16).unwrap()
    }

    /// L4 payload (after the IPv4 header, clipped to `total_len`).
    pub fn payload(&self) -> &'a [u8] {
        let start = self.header_len();
        let end = (self.total_len() as usize).min(self.bytes.len());
        &self.bytes[start.min(end)..end]
    }

    /// The raw header bytes.
    pub fn header(&self) -> &'a [u8] {
        &self.bytes[..self.header_len()]
    }
}

/// View over a TCP header.
#[derive(Debug, Clone, Copy)]
pub struct TcpView<'a> {
    bytes: &'a [u8],
}

impl<'a> TcpView<'a> {
    pub fn new(bytes: &'a [u8]) -> Option<Self> {
        if bytes.len() < 20 {
            return None;
        }
        let off = ((bytes[12] >> 4) as usize) * 4;
        (off >= 20 && bytes.len() >= off).then_some(TcpView { bytes })
    }

    pub fn src_port(&self) -> u16 {
        be16(self.bytes, 0).unwrap()
    }

    pub fn dst_port(&self) -> u16 {
        be16(self.bytes, 2).unwrap()
    }

    pub fn header_len(&self) -> usize {
        ((self.bytes[12] >> 4) as usize) * 4
    }

    pub fn checksum(&self) -> u16 {
        be16(self.bytes, 16).unwrap()
    }

    pub fn payload(&self) -> &'a [u8] {
        &self.bytes[self.header_len().min(self.bytes.len())..]
    }
}

/// View over a UDP header.
#[derive(Debug, Clone, Copy)]
pub struct UdpView<'a> {
    bytes: &'a [u8],
}

impl<'a> UdpView<'a> {
    pub fn new(bytes: &'a [u8]) -> Option<Self> {
        (bytes.len() >= 8).then_some(UdpView { bytes })
    }

    pub fn src_port(&self) -> u16 {
        be16(self.bytes, 0).unwrap()
    }

    pub fn dst_port(&self) -> u16 {
        be16(self.bytes, 2).unwrap()
    }

    pub fn len(&self) -> u16 {
        be16(self.bytes, 4).unwrap()
    }

    pub fn is_empty(&self) -> bool {
        self.len() <= 8
    }

    pub fn checksum(&self) -> u16 {
        be16(self.bytes, 6).unwrap()
    }

    pub fn payload(&self) -> &'a [u8] {
        let end = (self.len() as usize).min(self.bytes.len());
        &self.bytes[8.min(end)..end]
    }
}

/// A fully parsed frame: every layer the semantics need, resolved once.
#[derive(Debug, Clone, Copy)]
pub struct ParsedFrame<'a> {
    pub eth: EthFrame<'a>,
    pub vlan_tci: Option<u16>,
    pub ipv4: Option<Ipv4View<'a>>,
    pub tcp: Option<TcpView<'a>>,
    pub udp: Option<UdpView<'a>>,
}

impl<'a> ParsedFrame<'a> {
    /// Parse as far as the frame allows; L2 must be present.
    pub fn parse(bytes: &'a [u8]) -> Option<Self> {
        let eth = EthFrame::new(bytes)?;
        let vlan_tci = eth.vlan_tci();
        let mut ipv4 = None;
        let mut tcp = None;
        let mut udp = None;
        if eth.ethertype() == Some(ethertype::IPV4) {
            if let Some(ip) = Ipv4View::new(eth.l3()) {
                match ip.protocol() {
                    ipproto::TCP => tcp = TcpView::new(ip.payload()),
                    ipproto::UDP => udp = UdpView::new(ip.payload()),
                    _ => {}
                }
                ipv4 = Some(ip);
            }
        }
        Some(ParsedFrame {
            eth,
            vlan_tci,
            ipv4,
            tcp,
            udp,
        })
    }

    /// The L4 source/destination ports, from whichever transport parsed.
    pub fn ports(&self) -> Option<(u16, u16)> {
        if let Some(t) = &self.tcp {
            return Some((t.src_port(), t.dst_port()));
        }
        if let Some(u) = &self.udp {
            return Some((u.src_port(), u.dst_port()));
        }
        None
    }

    /// The application payload, if a transport parsed.
    pub fn l4_payload(&self) -> Option<&'a [u8]> {
        if let Some(t) = &self.tcp {
            return Some(t.payload());
        }
        if let Some(u) = &self.udp {
            return Some(u.payload());
        }
        None
    }

    /// Byte offset of the L4 payload within the frame, if resolvable.
    pub fn payload_offset(&self) -> Option<u16> {
        let ip = self.ipv4.as_ref()?;
        let l4 = self.eth.l3_offset() + ip.header_len();
        let hdr = if let Some(t) = &self.tcp {
            t.header_len()
        } else if self.udp.is_some() {
            8
        } else {
            return None;
        };
        Some((l4 + hdr) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testpkt;

    #[test]
    fn parse_plain_udp_frame() {
        let f = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 1234, 5678, b"hello", None);
        let p = ParsedFrame::parse(&f).unwrap();
        assert!(p.vlan_tci.is_none());
        let ip = p.ipv4.unwrap();
        assert_eq!(ip.src(), u32::from_be_bytes([10, 0, 0, 1]));
        assert_eq!(ip.protocol(), ipproto::UDP);
        assert_eq!(p.ports(), Some((1234, 5678)));
        assert_eq!(p.l4_payload(), Some(&b"hello"[..]));
        assert_eq!(p.payload_offset(), Some(14 + 20 + 8));
    }

    #[test]
    fn parse_vlan_tagged_tcp_frame() {
        let f = testpkt::tcp4(
            [192, 168, 1, 1],
            [192, 168, 1, 2],
            443,
            51000,
            b"xyz",
            Some(0x2064), // prio 1, vid 100
        );
        let p = ParsedFrame::parse(&f).unwrap();
        assert_eq!(p.vlan_tci, Some(0x2064));
        assert!(p.tcp.is_some());
        assert_eq!(p.ports(), Some((443, 51000)));
        assert_eq!(p.l4_payload(), Some(&b"xyz"[..]));
        assert_eq!(p.payload_offset(), Some(18 + 20 + 20));
    }

    #[test]
    fn short_frame_rejected() {
        assert!(EthFrame::new(&[0u8; 13]).is_none());
        assert!(ParsedFrame::parse(&[0u8; 5]).is_none());
    }

    #[test]
    fn bad_ip_version_rejected() {
        let mut f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"", None);
        f[14] = 0x65; // version 6 nibble in an IPv4 slot
        let p = ParsedFrame::parse(&f).unwrap();
        assert!(p.ipv4.is_none());
    }

    #[test]
    fn ipv4_payload_clipped_to_total_len() {
        // Frame padded past the IP total length must not leak padding into
        // the payload view.
        let mut f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 7, 9, b"ab", None);
        f.extend_from_slice(&[0xEE; 10]); // ethernet padding
        let p = ParsedFrame::parse(&f).unwrap();
        assert_eq!(p.l4_payload(), Some(&b"ab"[..]));
    }

    #[test]
    fn udp_view_len_and_empty() {
        let f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 7, 9, b"", None);
        let p = ParsedFrame::parse(&f).unwrap();
        let u = p.udp.unwrap();
        assert_eq!(u.len(), 8);
        assert!(u.is_empty());
    }
}
