//! Toeplitz hash — the reference implementation of the `rss_hash`
//! semantic, verified against the Microsoft RSS test vectors.

/// The standard 40-byte Microsoft RSS key used by default in most NICs
/// and drivers.
pub const MSFT_RSS_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Toeplitz hash of `input` under `key`. `key` must be at least
/// `input.len() + 4` bytes (the sliding 32-bit window must stay in range).
pub fn toeplitz_hash(key: &[u8], input: &[u8]) -> u32 {
    assert!(
        key.len() >= input.len() + 4,
        "toeplitz key too short: {} bytes for {} input bytes",
        key.len(),
        input.len()
    );
    let mut result: u32 = 0;
    // The initial 32-bit window is the first four key bytes; it shifts
    // left one bit per input bit consumed.
    let mut window: u32 = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
    for (i, byte) in input.iter().enumerate() {
        for bit in 0..8 {
            if byte & (0x80 >> bit) != 0 {
                result ^= window;
            }
            // Shift in the next key bit.
            let next_bit_idx = (i + 4) * 8 + bit;
            let next_bit = (key[next_bit_idx / 8] >> (7 - (next_bit_idx % 8))) & 1;
            window = (window << 1) | next_bit as u32;
        }
    }
    result
}

/// RSS hash over an IPv4 2-tuple (source address, destination address).
pub fn rss_ipv4(key: &[u8], src: u32, dst: u32) -> u32 {
    let mut input = [0u8; 8];
    input[..4].copy_from_slice(&src.to_be_bytes());
    input[4..].copy_from_slice(&dst.to_be_bytes());
    toeplitz_hash(key, &input)
}

/// RSS hash over an IPv4 4-tuple (addresses + TCP/UDP ports).
pub fn rss_ipv4_l4(key: &[u8], src: u32, dst: u32, src_port: u16, dst_port: u16) -> u32 {
    let mut input = [0u8; 12];
    input[..4].copy_from_slice(&src.to_be_bytes());
    input[4..8].copy_from_slice(&dst.to_be_bytes());
    input[8..10].copy_from_slice(&src_port.to_be_bytes());
    input[10..12].copy_from_slice(&dst_port.to_be_bytes());
    toeplitz_hash(key, &input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    /// The five IPv4 verification vectors from the Microsoft RSS
    /// specification ("Verifying the RSS Hash Calculation").
    /// Each row: (dst, src, dst_port, src_port, ipv4_hash, ipv4_tcp_hash).
    const MSFT_VECTORS: &[(u32, u32, u16, u16, u32, u32)] = &[
        (0xA18E6450, 0x420995BB, 1766, 2794, 0x323e8fc2, 0x51ccc178),
        (0x41458C53, 0xC75C6F02, 4739, 14230, 0xd718262a, 0xc626b0ea),
        (0x0C16CFB8, 0x1813C65F, 38024, 12898, 0xd2d0a5de, 0x5c2b394a),
        (0xD18EA306, 0x261BCD1E, 2217, 48228, 0x82989176, 0xafc7327f),
        (0xCABC7F02, 0x9927A3BF, 1303, 44251, 0x5d1809c5, 0x10e828a2),
    ];

    #[test]
    fn microsoft_ipv4_vectors() {
        for &(dst, src, _dp, _sp, want, _) in MSFT_VECTORS {
            assert_eq!(
                rss_ipv4(&MSFT_RSS_KEY, src, dst),
                want,
                "ipv4-only vector src={src:#x} dst={dst:#x}"
            );
        }
    }

    #[test]
    fn microsoft_ipv4_tcp_vectors() {
        for &(dst, src, dst_port, src_port, _, want) in MSFT_VECTORS {
            assert_eq!(
                rss_ipv4_l4(&MSFT_RSS_KEY, src, dst, src_port, dst_port),
                want,
                "ipv4+tcp vector src={src:#x} dst={dst:#x}"
            );
        }
    }

    #[test]
    fn sanity_first_vector_explicit() {
        // 66.9.149.187:2794 → 161.142.100.80:1766 ⇒ 0x51ccc178.
        let h = rss_ipv4_l4(
            &MSFT_RSS_KEY,
            ip(66, 9, 149, 187),
            ip(161, 142, 100, 80),
            2794,
            1766,
        );
        assert_eq!(h, 0x51ccc178);
    }

    #[test]
    fn zero_input_hashes_to_zero() {
        assert_eq!(toeplitz_hash(&MSFT_RSS_KEY, &[0u8; 12]), 0);
    }

    #[test]
    #[should_panic(expected = "key too short")]
    fn key_too_short_panics() {
        toeplitz_hash(&MSFT_RSS_KEY[..10], &[0u8; 12]);
    }

    proptest! {
        /// Toeplitz is linear over GF(2): H(a ^ b) == H(a) ^ H(b).
        #[test]
        fn gf2_linearity(a in any::<[u8; 12]>(), b in any::<[u8; 12]>()) {
            let xored: Vec<u8> = a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect();
            prop_assert_eq!(
                toeplitz_hash(&MSFT_RSS_KEY, &xored),
                toeplitz_hash(&MSFT_RSS_KEY, &a) ^ toeplitz_hash(&MSFT_RSS_KEY, &b)
            );
        }

        /// Per-connection consistency: equal tuples hash equal (trivially
        /// true but guards against accidental statefulness).
        #[test]
        fn deterministic(src in any::<u32>(), dst in any::<u32>(), sp in any::<u16>(), dp in any::<u16>()) {
            let h1 = rss_ipv4_l4(&MSFT_RSS_KEY, src, dst, sp, dp);
            let h2 = rss_ipv4_l4(&MSFT_RSS_KEY, src, dst, sp, dp);
            prop_assert_eq!(h1, h2);
        }
    }
}
