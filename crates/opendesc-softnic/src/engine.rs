//! The SoftNIC engine: software reference implementations of every
//! well-known semantic (paper §4 step 4 — "SoftNIC shims").
//!
//! When the selected completion layout does not provide a requested
//! semantic, the compiled datapath calls [`SoftNic::compute`] per packet.
//! The engine is also what the paper calls the *reference implementation*
//! shipped with each feature: the NIC simulator's offload engine delegates
//! here so hardware and software compute identical values.

use crate::checksum::{verify_ipv4_checksum, verify_l4_checksum};
use crate::toeplitz::{rss_ipv4_l4, MSFT_RSS_KEY};
use crate::wire::{ethertype, ipproto, ParsedFrame};
use opendesc_ir::semantics::{names, SemanticRegistry};
use opendesc_ir::SemanticId;
use std::collections::HashMap;

/// Bits of the `packet_type` semantic's bitmap.
pub mod ptype {
    pub const ETH: u16 = 1 << 0;
    pub const VLAN: u16 = 1 << 1;
    pub const IPV4: u16 = 1 << 2;
    pub const IPV6: u16 = 1 << 3;
    pub const TCP: u16 = 1 << 4;
    pub const UDP: u16 = 1 << 5;
    pub const ICMP: u16 = 1 << 6;
}

/// A software semantic lowered to a first-class operation.
///
/// The compiled datapath resolves each software accessor to a `ShimOp`
/// *once*, at compile time, instead of re-dispatching on the semantic's
/// name for every packet. Executing an op takes a pre-parsed
/// [`ParsedFrame`] so one parse is shared by every shim on the packet,
/// and a [`ShimMemo`] so intra-packet repeats (RSS feeding both
/// `rss_hash` and `queue_hint`) are computed once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShimOp {
    RssHash,
    IpChecksum,
    L4Checksum,
    VlanTci,
    PktLen,
    PacketType,
    IpId,
    PayloadOffset,
    FlowTag,
    KvsKeyHash,
    QueueHint,
    RxStatus,
    /// Semantics software cannot recompute (timestamps, crypto contexts)
    /// or that no reference implementation exists for.
    Unsupported,
}

impl ShimOp {
    /// Lower a semantic name to its operation. Unknown or
    /// software-incomputable semantics lower to [`ShimOp::Unsupported`].
    pub fn from_name(name: &str) -> ShimOp {
        match name {
            names::RSS_HASH => ShimOp::RssHash,
            names::IP_CHECKSUM => ShimOp::IpChecksum,
            names::L4_CHECKSUM => ShimOp::L4Checksum,
            names::VLAN_TCI => ShimOp::VlanTci,
            names::PKT_LEN => ShimOp::PktLen,
            names::PACKET_TYPE => ShimOp::PacketType,
            names::IP_ID => ShimOp::IpId,
            names::PAYLOAD_OFFSET => ShimOp::PayloadOffset,
            names::FLOW_TAG => ShimOp::FlowTag,
            names::KVS_KEY_HASH => ShimOp::KvsKeyHash,
            names::QUEUE_HINT => ShimOp::QueueHint,
            names::RX_STATUS => ShimOp::RxStatus,
            _ => ShimOp::Unsupported,
        }
    }
}

/// Per-packet memo shared by the shims of one packet: results that more
/// than one op may need are computed at most once. Reset (or fresh) per
/// packet.
#[derive(Debug, Clone, Default)]
pub struct ShimMemo {
    /// RSS over the frame: `None` = not computed yet; `Some(r)` caches
    /// the result (which may itself be `None` for non-IP frames).
    rss: Option<Option<u32>>,
}

impl ShimMemo {
    /// Clear for the next packet (keeps nothing allocated; exists so
    /// batch loops read naturally).
    pub fn reset(&mut self) {
        self.rss = None;
    }

    /// Seed the RSS slot with a hash computed elsewhere — the steering
    /// stage of a multi-queue NIC already ran Toeplitz over the flow
    /// tuple, and a real device reports that hash in the completion, so
    /// the host shims must not pay for it again. Only prime with a value
    /// produced by the *same* key and tuple rules as [`SoftNic::rss`]
    /// (the default MSFT key), or shim outputs will diverge from the
    /// reference.
    pub fn prime_rss(&mut self, rss: u32) {
        self.rss = Some(Some(rss));
    }
}

/// Checksum-status encoding shared by hardware models and software: the
/// 16-bit value is `0xFFFF` for "verified good", `0x0000` for "bad", and
/// anything else is the raw computed checksum (fixed-function NICs differ
/// in what they report; OpenDesc only needs both sides to agree, which
/// the contract guarantees).
pub mod csum_status {
    pub const GOOD: u16 = 0xFFFF;
    pub const BAD: u16 = 0x0000;
}

/// RX status bit encoding shared by hardware models and software: every
/// completed frame has both "descriptor done" and "end of packet" set
/// (the simulator delivers whole frames), so a status word missing
/// either bit is structurally invalid — the completion validator relies
/// on this.
pub mod rx_status {
    /// Descriptor done.
    pub const DD: u64 = 1 << 0;
    /// End of packet.
    pub const EOP: u64 = 1 << 1;
}

/// Software implementations of the semantic alphabet.
///
/// Stateless semantics are pure functions of the frame; `flow_tag`
/// emulates a device flow table with a host-side hash map (the run-time
/// cost the selection objective charges for it).
#[derive(Debug, Clone)]
pub struct SoftNic {
    rss_key: [u8; 40],
    /// Emulated flow table: 5-tuple hash → tag, insertion-ordered ids.
    flow_table: HashMap<u64, u32>,
    next_flow_tag: u32,
    /// Shim ops executed over this engine's lifetime (telemetry: the
    /// software half of the field-source mix).
    shim_ops: u64,
}

impl Default for SoftNic {
    fn default() -> Self {
        Self::new()
    }
}

impl SoftNic {
    pub fn new() -> Self {
        SoftNic {
            rss_key: MSFT_RSS_KEY,
            flow_table: HashMap::new(),
            next_flow_tag: 1,
            shim_ops: 0,
        }
    }

    /// Shim ops executed so far (every [`exec_op`] call, including ones
    /// that returned `None`).
    ///
    /// [`exec_op`]: SoftNic::exec_op
    pub fn shim_ops(&self) -> u64 {
        self.shim_ops
    }

    /// Register the engine's counters under `scope` (e.g.
    /// `rx.q0.softnic`).
    pub fn register_metrics(&self, reg: &mut opendesc_telemetry::MetricRegistry, scope: &str) {
        reg.counter(&format!("{scope}.shim_ops"), self.shim_ops);
        reg.counter(&format!("{scope}.flows"), self.flow_table.len() as u64);
    }

    /// Use a non-default RSS key.
    pub fn with_rss_key(mut self, key: [u8; 40]) -> Self {
        self.rss_key = key;
        self
    }

    /// Compute semantic `sem` over `frame`. Returns `None` when the
    /// semantic is software-incomputable (timestamps, crypto contexts) or
    /// the frame lacks the layers it needs.
    pub fn compute(
        &mut self,
        reg: &SemanticRegistry,
        sem: SemanticId,
        frame: &[u8],
    ) -> Option<u64> {
        self.compute_by_name(reg.name(sem), frame)
    }

    /// Compute a semantic by name (see [`compute`]).
    ///
    /// One-shot convenience over [`exec_op`]: parses the frame and
    /// dispatches per call. Hot paths should lower the name with
    /// [`ShimOp::from_name`] once and run [`exec_op`] against a shared
    /// parse instead.
    ///
    /// [`compute`]: SoftNic::compute
    /// [`exec_op`]: SoftNic::exec_op
    pub fn compute_by_name(&mut self, name: &str, frame: &[u8]) -> Option<u64> {
        let p = ParsedFrame::parse(frame)?;
        self.exec_op(
            ShimOp::from_name(name),
            &p,
            frame.len(),
            &mut ShimMemo::default(),
        )
    }

    /// Execute one pre-lowered shim op against a pre-parsed frame.
    ///
    /// `frame_len` is the full L2 frame length (`pkt_len` reports it even
    /// though `ParsedFrame` only borrows the frame). `memo` carries
    /// intra-packet shared results; pass the same memo for every op of one
    /// packet and a fresh/reset one for the next.
    pub fn exec_op(
        &mut self,
        op: ShimOp,
        p: &ParsedFrame<'_>,
        frame_len: usize,
        memo: &mut ShimMemo,
    ) -> Option<u64> {
        self.shim_ops += 1;
        match op {
            ShimOp::RssHash => self.rss_memo(p, memo).map(|h| h as u64),
            ShimOp::IpChecksum => {
                let ip = p.ipv4?;
                Some(if verify_ipv4_checksum(ip.header()) {
                    csum_status::GOOD as u64
                } else {
                    csum_status::BAD as u64
                })
            }
            ShimOp::L4Checksum => {
                p.ipv4?;
                p.ports()?;
                Some(if verify_l4_checksum(p) {
                    csum_status::GOOD as u64
                } else {
                    csum_status::BAD as u64
                })
            }
            ShimOp::VlanTci => p.vlan_tci.map(|t| t as u64),
            ShimOp::PktLen => Some(frame_len as u64),
            ShimOp::PacketType => Some(self.packet_type(p) as u64),
            ShimOp::IpId => p.ipv4.map(|ip| ip.ident() as u64),
            ShimOp::PayloadOffset => p.payload_offset().map(|o| o as u64),
            ShimOp::FlowTag => self.flow_tag(p).map(|t| t as u64),
            ShimOp::KvsKeyHash => kvs_key_hash(p.l4_payload()?).map(|h| h as u64),
            ShimOp::QueueHint => {
                // Steering hint: low bits of the RSS hash (RSS++-style).
                self.rss_memo(p, memo).map(|h| (h & 0xFF) as u64)
            }
            ShimOp::RxStatus => {
                // Software receives complete frames, so both bits are
                // always set.
                Some(rx_status::DD | rx_status::EOP)
            }
            // Semantics software cannot recompute (timestamp, crypto_ctx)
            // or that have no reference implementation.
            ShimOp::Unsupported => None,
        }
    }

    /// Memoized [`rss`]: computed at most once per (`packet`, `memo`)
    /// even when several ops need it (`rss_hash` + `queue_hint`).
    ///
    /// [`rss`]: SoftNic::rss
    pub fn rss_memo(&self, p: &ParsedFrame<'_>, memo: &mut ShimMemo) -> Option<u32> {
        if let Some(cached) = memo.rss {
            return cached;
        }
        let r = self.rss(p);
        memo.rss = Some(r);
        r
    }

    /// Toeplitz RSS over the 4-tuple (falls back to the 2-tuple for
    /// non-TCP/UDP IPv4 traffic).
    pub fn rss(&self, p: &ParsedFrame<'_>) -> Option<u32> {
        let ip = p.ipv4.as_ref()?;
        match p.ports() {
            Some((sp, dp)) => Some(rss_ipv4_l4(&self.rss_key, ip.src(), ip.dst(), sp, dp)),
            None => Some(crate::toeplitz::rss_ipv4(&self.rss_key, ip.src(), ip.dst())),
        }
    }

    /// Packet-type bitmap (see [`ptype`]).
    pub fn packet_type(&self, p: &ParsedFrame<'_>) -> u16 {
        let mut t = ptype::ETH;
        if p.vlan_tci.is_some() {
            t |= ptype::VLAN;
        }
        match p.eth.ethertype() {
            Some(ethertype::IPV6) => t |= ptype::IPV6,
            Some(ethertype::IPV4) if p.ipv4.is_some() => {
                t |= ptype::IPV4;
                match p.ipv4.as_ref().unwrap().protocol() {
                    ipproto::TCP => t |= ptype::TCP,
                    ipproto::UDP => t |= ptype::UDP,
                    ipproto::ICMP => t |= ptype::ICMP,
                    _ => {}
                }
            }
            _ => {}
        }
        t
    }

    /// Emulated flow-table tag: stable per 5-tuple, assigned on first
    /// sight.
    pub fn flow_tag(&mut self, p: &ParsedFrame<'_>) -> Option<u32> {
        let ip = p.ipv4.as_ref()?;
        let (sp, dp) = p.ports()?;
        let key = ((ip.src() as u64) << 32 | ip.dst() as u64)
            ^ ((sp as u64) << 48 | (dp as u64) << 16 | ip.protocol() as u64);
        let tag = *self.flow_table.entry(key).or_insert_with(|| {
            let t = self.next_flow_tag;
            self.next_flow_tag = self.next_flow_tag.wrapping_add(1).max(1);
            t
        });
        Some(tag)
    }

    /// Number of distinct flows the emulated flow table has seen.
    pub fn flow_count(&self) -> usize {
        self.flow_table.len()
    }
}

/// FNV-1a hash of the key in a memcached-style `get <key>\r\n` request —
/// the reference implementation of the `kvs_key_hash` semantic (the
/// paper's Fig. 1 "result of a specific feature" example, after
/// FlexNIC's KVS offload).
pub fn kvs_key_hash(payload: &[u8]) -> Option<u32> {
    let rest = payload.strip_prefix(b"get ")?;
    let end = rest
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(rest.len());
    let key = &rest[..end];
    if key.is_empty() {
        return None;
    }
    let mut h: u32 = 0x811c9dc5;
    for &b in key {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    Some(h)
}

// Send audit (sharded RX engine): every worker thread owns its own
// `SoftNic` + `ShimMemo`, so both must be `Send`. The flow table is a
// plain owned `HashMap` and the RSS key an inline array — nothing holds
// interior mutability or shared references. Checked at compile time so a
// future field can't silently break the multi-core datapath.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SoftNic>();
    assert_send::<ShimMemo>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testpkt;

    fn udp_frame() -> Vec<u8> {
        testpkt::udp4([10, 1, 0, 1], [10, 1, 0, 2], 5000, 6000, b"payload", None)
    }

    #[test]
    fn rss_matches_toeplitz_reference() {
        let mut sn = SoftNic::new();
        let f = udp_frame();
        let got = sn.compute_by_name(names::RSS_HASH, &f).unwrap();
        let want = rss_ipv4_l4(
            &MSFT_RSS_KEY,
            u32::from_be_bytes([10, 1, 0, 1]),
            u32::from_be_bytes([10, 1, 0, 2]),
            5000,
            6000,
        ) as u64;
        assert_eq!(got, want);
    }

    #[test]
    fn checksums_report_good_then_bad() {
        let mut sn = SoftNic::new();
        let mut f = udp_frame();
        assert_eq!(
            sn.compute_by_name(names::IP_CHECKSUM, &f),
            Some(csum_status::GOOD as u64)
        );
        assert_eq!(
            sn.compute_by_name(names::L4_CHECKSUM, &f),
            Some(csum_status::GOOD as u64)
        );
        let n = f.len() - 1;
        f[n] ^= 0xA5; // corrupt payload → L4 bad, IP header still good
        assert_eq!(
            sn.compute_by_name(names::IP_CHECKSUM, &f),
            Some(csum_status::GOOD as u64)
        );
        assert_eq!(
            sn.compute_by_name(names::L4_CHECKSUM, &f),
            Some(csum_status::BAD as u64)
        );
    }

    #[test]
    fn vlan_tci_only_when_tagged() {
        let mut sn = SoftNic::new();
        assert_eq!(sn.compute_by_name(names::VLAN_TCI, &udp_frame()), None);
        let f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"", Some(0x3064));
        assert_eq!(sn.compute_by_name(names::VLAN_TCI, &f), Some(0x3064));
    }

    #[test]
    fn packet_type_bitmap() {
        let mut sn = SoftNic::new();
        let udp = sn
            .compute_by_name(names::PACKET_TYPE, &udp_frame())
            .unwrap() as u16;
        assert_eq!(udp, ptype::ETH | ptype::IPV4 | ptype::UDP);
        let f = testpkt::tcp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"", Some(5));
        let tcp = sn.compute_by_name(names::PACKET_TYPE, &f).unwrap() as u16;
        assert_eq!(tcp, ptype::ETH | ptype::VLAN | ptype::IPV4 | ptype::TCP);
    }

    #[test]
    fn flow_tags_stable_per_flow() {
        let mut sn = SoftNic::new();
        let a1 = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 100, 200, b"x", None);
        let a2 = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 100, 200, b"yyy", None);
        let b = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 101, 200, b"x", None);
        let ta1 = sn.compute_by_name(names::FLOW_TAG, &a1).unwrap();
        let ta2 = sn.compute_by_name(names::FLOW_TAG, &a2).unwrap();
        let tb = sn.compute_by_name(names::FLOW_TAG, &b).unwrap();
        assert_eq!(ta1, ta2, "same 5-tuple, same tag");
        assert_ne!(ta1, tb, "different flow, different tag");
        assert_eq!(sn.flow_count(), 2);
    }

    #[test]
    fn kvs_key_hash_parses_get_requests() {
        assert!(kvs_key_hash(b"get user:42\r\n").is_some());
        assert_eq!(kvs_key_hash(b"get a\r\n"), kvs_key_hash(b"get a\r\n"));
        assert_ne!(kvs_key_hash(b"get a\r\n"), kvs_key_hash(b"get b\r\n"));
        assert_eq!(kvs_key_hash(b"set a 1\r\n"), None);
        assert_eq!(kvs_key_hash(b"get \r\n"), None);
        // Missing CRLF still hashes the remainder.
        assert_eq!(kvs_key_hash(b"get abc"), kvs_key_hash(b"get abc\r\n"));
    }

    #[test]
    fn kvs_semantic_via_frame() {
        let mut sn = SoftNic::new();
        let f = testpkt::udp4(
            [10, 0, 0, 9],
            [10, 0, 0, 10],
            31337,
            11211,
            &testpkt::kvs_get_payload("session:9"),
            None,
        );
        let h = sn.compute_by_name(names::KVS_KEY_HASH, &f).unwrap();
        assert_eq!(h as u32, kvs_key_hash(b"get session:9\r\n").unwrap());
    }

    #[test]
    fn incomputable_semantics_return_none() {
        let mut sn = SoftNic::new();
        assert_eq!(sn.compute_by_name(names::TIMESTAMP, &udp_frame()), None);
        assert_eq!(sn.compute_by_name(names::CRYPTO_CTX, &udp_frame()), None);
        assert_eq!(
            sn.compute_by_name("nonexistent_semantic", &udp_frame()),
            None
        );
    }

    #[test]
    fn pkt_len_and_payload_offset() {
        let mut sn = SoftNic::new();
        let f = udp_frame();
        assert_eq!(sn.compute_by_name(names::PKT_LEN, &f), Some(f.len() as u64));
        assert_eq!(
            sn.compute_by_name(names::PAYLOAD_OFFSET, &f),
            Some((14 + 20 + 8) as u64)
        );
    }

    #[test]
    fn queue_hint_is_rss_low_bits() {
        let mut sn = SoftNic::new();
        let f = udp_frame();
        let rss = sn.compute_by_name(names::RSS_HASH, &f).unwrap();
        let hint = sn.compute_by_name(names::QUEUE_HINT, &f).unwrap();
        assert_eq!(hint, rss & 0xFF);
    }

    #[test]
    fn exec_op_matches_name_dispatch_for_every_semantic() {
        let reg = SemanticRegistry::with_builtins();
        let mut by_name = SoftNic::new();
        let mut by_op = SoftNic::new();
        let frames = [
            udp_frame(),
            testpkt::tcp4([1, 1, 1, 1], [2, 2, 2, 2], 7, 8, b"hi", Some(0x0123)),
            b"\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x86\xddrest".to_vec(),
        ];
        for f in &frames {
            for (_, info) in reg.iter() {
                let want = by_name.compute_by_name(&info.name, f);
                let got = ParsedFrame::parse(f).and_then(|p| {
                    by_op.exec_op(
                        ShimOp::from_name(&info.name),
                        &p,
                        f.len(),
                        &mut ShimMemo::default(),
                    )
                });
                assert_eq!(got, want, "mismatch for {} on {:02x?}", info.name, &f[..4]);
            }
        }
    }

    #[test]
    fn memo_shares_rss_between_hash_and_hint() {
        let sn = SoftNic::new();
        let f = udp_frame();
        let p = ParsedFrame::parse(&f).unwrap();
        let mut memo = ShimMemo::default();
        let direct = sn.rss(&p);
        assert_eq!(sn.rss_memo(&p, &mut memo), direct);
        // Cached result is reused (same value back without recompute).
        assert_eq!(sn.rss_memo(&p, &mut memo), direct);
        memo.reset();
        assert_eq!(sn.rss_memo(&p, &mut memo), direct);
        // Non-IP frames cache the `None` too.
        let arp = b"\xff\xff\xff\xff\xff\xff\x00\x01\x02\x03\x04\x05\x08\x06body".to_vec();
        let p2 = ParsedFrame::parse(&arp).unwrap();
        let mut memo2 = ShimMemo::default();
        assert_eq!(sn.rss_memo(&p2, &mut memo2), None);
        assert_eq!(sn.rss_memo(&p2, &mut memo2), None);
    }

    #[test]
    fn primed_memo_is_trusted_and_skips_recompute() {
        let sn = SoftNic::new();
        let f = udp_frame();
        let p = ParsedFrame::parse(&f).unwrap();
        let want = sn.rss(&p).unwrap();
        let mut memo = ShimMemo::default();
        memo.prime_rss(want);
        assert_eq!(sn.rss_memo(&p, &mut memo), Some(want));
        // Priming is the caller's contract: whatever was primed is what
        // the shims observe (no silent recompute).
        let mut wrong = ShimMemo::default();
        wrong.prime_rss(0xDEAD_BEEF);
        assert_eq!(sn.rss_memo(&p, &mut wrong), Some(0xDEAD_BEEF));
        wrong.reset();
        assert_eq!(sn.rss_memo(&p, &mut wrong), Some(want));
    }

    #[test]
    fn registry_dispatch_equivalent_to_name_dispatch() {
        let reg = SemanticRegistry::with_builtins();
        let mut sn1 = SoftNic::new();
        let mut sn2 = SoftNic::new();
        let f = udp_frame();
        for (id, info) in reg.iter() {
            assert_eq!(
                sn1.compute(&reg, id, &f),
                sn2.compute_by_name(&info.name, &f),
                "mismatch for {}",
                info.name
            );
        }
    }
}
