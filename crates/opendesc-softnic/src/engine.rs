//! The SoftNIC engine: software reference implementations of every
//! well-known semantic (paper §4 step 4 — "SoftNIC shims").
//!
//! When the selected completion layout does not provide a requested
//! semantic, the compiled datapath calls [`SoftNic::compute`] per packet.
//! The engine is also what the paper calls the *reference implementation*
//! shipped with each feature: the NIC simulator's offload engine delegates
//! here so hardware and software compute identical values.

use crate::checksum::{verify_ipv4_checksum, verify_l4_checksum};
use crate::toeplitz::{rss_ipv4_l4, MSFT_RSS_KEY};
use crate::wire::{ethertype, ipproto, ParsedFrame};
use opendesc_ir::semantics::{names, SemanticRegistry};
use opendesc_ir::SemanticId;
use std::collections::HashMap;

/// Bits of the `packet_type` semantic's bitmap.
pub mod ptype {
    pub const ETH: u16 = 1 << 0;
    pub const VLAN: u16 = 1 << 1;
    pub const IPV4: u16 = 1 << 2;
    pub const IPV6: u16 = 1 << 3;
    pub const TCP: u16 = 1 << 4;
    pub const UDP: u16 = 1 << 5;
    pub const ICMP: u16 = 1 << 6;
}

/// Checksum-status encoding shared by hardware models and software: the
/// 16-bit value is `0xFFFF` for "verified good", `0x0000` for "bad", and
/// anything else is the raw computed checksum (fixed-function NICs differ
/// in what they report; OpenDesc only needs both sides to agree, which
/// the contract guarantees).
pub mod csum_status {
    pub const GOOD: u16 = 0xFFFF;
    pub const BAD: u16 = 0x0000;
}

/// Software implementations of the semantic alphabet.
///
/// Stateless semantics are pure functions of the frame; `flow_tag`
/// emulates a device flow table with a host-side hash map (the run-time
/// cost the selection objective charges for it).
#[derive(Debug, Clone)]
pub struct SoftNic {
    rss_key: [u8; 40],
    /// Emulated flow table: 5-tuple hash → tag, insertion-ordered ids.
    flow_table: HashMap<u64, u32>,
    next_flow_tag: u32,
}

impl Default for SoftNic {
    fn default() -> Self {
        Self::new()
    }
}

impl SoftNic {
    pub fn new() -> Self {
        SoftNic {
            rss_key: MSFT_RSS_KEY,
            flow_table: HashMap::new(),
            next_flow_tag: 1,
        }
    }

    /// Use a non-default RSS key.
    pub fn with_rss_key(mut self, key: [u8; 40]) -> Self {
        self.rss_key = key;
        self
    }

    /// Compute semantic `sem` over `frame`. Returns `None` when the
    /// semantic is software-incomputable (timestamps, crypto contexts) or
    /// the frame lacks the layers it needs.
    pub fn compute(&mut self, reg: &SemanticRegistry, sem: SemanticId, frame: &[u8]) -> Option<u64> {
        let name = reg.name(sem).to_string();
        self.compute_by_name(&name, frame)
    }

    /// Compute a semantic by name (see [`compute`]).
    ///
    /// [`compute`]: SoftNic::compute
    pub fn compute_by_name(&mut self, name: &str, frame: &[u8]) -> Option<u64> {
        let p = ParsedFrame::parse(frame)?;
        match name {
            names::RSS_HASH => self.rss(&p).map(|h| h as u64),
            names::IP_CHECKSUM => {
                let ip = p.ipv4?;
                Some(if verify_ipv4_checksum(ip.header()) {
                    csum_status::GOOD as u64
                } else {
                    csum_status::BAD as u64
                })
            }
            names::L4_CHECKSUM => {
                p.ipv4?;
                p.ports()?;
                Some(if verify_l4_checksum(&p) {
                    csum_status::GOOD as u64
                } else {
                    csum_status::BAD as u64
                })
            }
            names::VLAN_TCI => p.vlan_tci.map(|t| t as u64),
            names::PKT_LEN => Some(frame.len() as u64),
            names::PACKET_TYPE => Some(self.packet_type(&p) as u64),
            names::IP_ID => p.ipv4.map(|ip| ip.ident() as u64),
            names::PAYLOAD_OFFSET => p.payload_offset().map(|o| o as u64),
            names::FLOW_TAG => self.flow_tag(&p).map(|t| t as u64),
            names::KVS_KEY_HASH => kvs_key_hash(p.l4_payload()?).map(|h| h as u64),
            names::QUEUE_HINT => {
                // Steering hint: low bits of the RSS hash (RSS++-style).
                self.rss(&p).map(|h| (h & 0xFF) as u64)
            }
            names::RX_STATUS => {
                // Bit 0: descriptor done; bit 1: end of packet. Software
                // receives complete frames, so both are always set.
                Some(0b11)
            }
            // Semantics software cannot recompute.
            names::TIMESTAMP | names::CRYPTO_CTX => None,
            _ => None,
        }
    }

    /// Toeplitz RSS over the 4-tuple (falls back to the 2-tuple for
    /// non-TCP/UDP IPv4 traffic).
    pub fn rss(&self, p: &ParsedFrame<'_>) -> Option<u32> {
        let ip = p.ipv4.as_ref()?;
        match p.ports() {
            Some((sp, dp)) => Some(rss_ipv4_l4(&self.rss_key, ip.src(), ip.dst(), sp, dp)),
            None => Some(crate::toeplitz::rss_ipv4(&self.rss_key, ip.src(), ip.dst())),
        }
    }

    /// Packet-type bitmap (see [`ptype`]).
    pub fn packet_type(&self, p: &ParsedFrame<'_>) -> u16 {
        let mut t = ptype::ETH;
        if p.vlan_tci.is_some() {
            t |= ptype::VLAN;
        }
        match p.eth.ethertype() {
            Some(ethertype::IPV6) => t |= ptype::IPV6,
            Some(ethertype::IPV4) if p.ipv4.is_some() => {
                t |= ptype::IPV4;
                match p.ipv4.as_ref().unwrap().protocol() {
                    ipproto::TCP => t |= ptype::TCP,
                    ipproto::UDP => t |= ptype::UDP,
                    ipproto::ICMP => t |= ptype::ICMP,
                    _ => {}
                }
            }
            _ => {}
        }
        t
    }

    /// Emulated flow-table tag: stable per 5-tuple, assigned on first
    /// sight.
    pub fn flow_tag(&mut self, p: &ParsedFrame<'_>) -> Option<u32> {
        let ip = p.ipv4.as_ref()?;
        let (sp, dp) = p.ports()?;
        let key = ((ip.src() as u64) << 32 | ip.dst() as u64)
            ^ ((sp as u64) << 48 | (dp as u64) << 16 | ip.protocol() as u64);
        let tag = *self.flow_table.entry(key).or_insert_with(|| {
            let t = self.next_flow_tag;
            self.next_flow_tag = self.next_flow_tag.wrapping_add(1).max(1);
            t
        });
        Some(tag)
    }

    /// Number of distinct flows the emulated flow table has seen.
    pub fn flow_count(&self) -> usize {
        self.flow_table.len()
    }
}

/// FNV-1a hash of the key in a memcached-style `get <key>\r\n` request —
/// the reference implementation of the `kvs_key_hash` semantic (the
/// paper's Fig. 1 "result of a specific feature" example, after
/// FlexNIC's KVS offload).
pub fn kvs_key_hash(payload: &[u8]) -> Option<u32> {
    let rest = payload.strip_prefix(b"get ")?;
    let end = rest
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(rest.len());
    let key = &rest[..end];
    if key.is_empty() {
        return None;
    }
    let mut h: u32 = 0x811c9dc5;
    for &b in key {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    Some(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testpkt;

    fn udp_frame() -> Vec<u8> {
        testpkt::udp4([10, 1, 0, 1], [10, 1, 0, 2], 5000, 6000, b"payload", None)
    }

    #[test]
    fn rss_matches_toeplitz_reference() {
        let mut sn = SoftNic::new();
        let f = udp_frame();
        let got = sn.compute_by_name(names::RSS_HASH, &f).unwrap();
        let want = rss_ipv4_l4(
            &MSFT_RSS_KEY,
            u32::from_be_bytes([10, 1, 0, 1]),
            u32::from_be_bytes([10, 1, 0, 2]),
            5000,
            6000,
        ) as u64;
        assert_eq!(got, want);
    }

    #[test]
    fn checksums_report_good_then_bad() {
        let mut sn = SoftNic::new();
        let mut f = udp_frame();
        assert_eq!(
            sn.compute_by_name(names::IP_CHECKSUM, &f),
            Some(csum_status::GOOD as u64)
        );
        assert_eq!(
            sn.compute_by_name(names::L4_CHECKSUM, &f),
            Some(csum_status::GOOD as u64)
        );
        let n = f.len() - 1;
        f[n] ^= 0xA5; // corrupt payload → L4 bad, IP header still good
        assert_eq!(
            sn.compute_by_name(names::IP_CHECKSUM, &f),
            Some(csum_status::GOOD as u64)
        );
        assert_eq!(
            sn.compute_by_name(names::L4_CHECKSUM, &f),
            Some(csum_status::BAD as u64)
        );
    }

    #[test]
    fn vlan_tci_only_when_tagged() {
        let mut sn = SoftNic::new();
        assert_eq!(sn.compute_by_name(names::VLAN_TCI, &udp_frame()), None);
        let f = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"", Some(0x3064));
        assert_eq!(sn.compute_by_name(names::VLAN_TCI, &f), Some(0x3064));
    }

    #[test]
    fn packet_type_bitmap() {
        let mut sn = SoftNic::new();
        let udp = sn.compute_by_name(names::PACKET_TYPE, &udp_frame()).unwrap() as u16;
        assert_eq!(udp, ptype::ETH | ptype::IPV4 | ptype::UDP);
        let f = testpkt::tcp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"", Some(5));
        let tcp = sn.compute_by_name(names::PACKET_TYPE, &f).unwrap() as u16;
        assert_eq!(tcp, ptype::ETH | ptype::VLAN | ptype::IPV4 | ptype::TCP);
    }

    #[test]
    fn flow_tags_stable_per_flow() {
        let mut sn = SoftNic::new();
        let a1 = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 100, 200, b"x", None);
        let a2 = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 100, 200, b"yyy", None);
        let b = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 101, 200, b"x", None);
        let ta1 = sn.compute_by_name(names::FLOW_TAG, &a1).unwrap();
        let ta2 = sn.compute_by_name(names::FLOW_TAG, &a2).unwrap();
        let tb = sn.compute_by_name(names::FLOW_TAG, &b).unwrap();
        assert_eq!(ta1, ta2, "same 5-tuple, same tag");
        assert_ne!(ta1, tb, "different flow, different tag");
        assert_eq!(sn.flow_count(), 2);
    }

    #[test]
    fn kvs_key_hash_parses_get_requests() {
        assert!(kvs_key_hash(b"get user:42\r\n").is_some());
        assert_eq!(kvs_key_hash(b"get a\r\n"), kvs_key_hash(b"get a\r\n"));
        assert_ne!(kvs_key_hash(b"get a\r\n"), kvs_key_hash(b"get b\r\n"));
        assert_eq!(kvs_key_hash(b"set a 1\r\n"), None);
        assert_eq!(kvs_key_hash(b"get \r\n"), None);
        // Missing CRLF still hashes the remainder.
        assert_eq!(kvs_key_hash(b"get abc"), kvs_key_hash(b"get abc\r\n"));
    }

    #[test]
    fn kvs_semantic_via_frame() {
        let mut sn = SoftNic::new();
        let f = testpkt::udp4(
            [10, 0, 0, 9],
            [10, 0, 0, 10],
            31337,
            11211,
            &testpkt::kvs_get_payload("session:9"),
            None,
        );
        let h = sn.compute_by_name(names::KVS_KEY_HASH, &f).unwrap();
        assert_eq!(h as u32, kvs_key_hash(b"get session:9\r\n").unwrap());
    }

    #[test]
    fn incomputable_semantics_return_none() {
        let mut sn = SoftNic::new();
        assert_eq!(sn.compute_by_name(names::TIMESTAMP, &udp_frame()), None);
        assert_eq!(sn.compute_by_name(names::CRYPTO_CTX, &udp_frame()), None);
        assert_eq!(sn.compute_by_name("nonexistent_semantic", &udp_frame()), None);
    }

    #[test]
    fn pkt_len_and_payload_offset() {
        let mut sn = SoftNic::new();
        let f = udp_frame();
        assert_eq!(sn.compute_by_name(names::PKT_LEN, &f), Some(f.len() as u64));
        assert_eq!(
            sn.compute_by_name(names::PAYLOAD_OFFSET, &f),
            Some((14 + 20 + 8) as u64)
        );
    }

    #[test]
    fn queue_hint_is_rss_low_bits() {
        let mut sn = SoftNic::new();
        let f = udp_frame();
        let rss = sn.compute_by_name(names::RSS_HASH, &f).unwrap();
        let hint = sn.compute_by_name(names::QUEUE_HINT, &f).unwrap();
        assert_eq!(hint, rss & 0xFF);
    }

    #[test]
    fn registry_dispatch_equivalent_to_name_dispatch() {
        let reg = SemanticRegistry::with_builtins();
        let mut sn1 = SoftNic::new();
        let mut sn2 = SoftNic::new();
        let f = udp_frame();
        for (id, info) in reg.iter() {
            assert_eq!(
                sn1.compute(&reg, id, &f),
                sn2.compute_by_name(&info.name, &f),
                "mismatch for {}",
                info.name
            );
        }
    }
}
