//! Cost-model calibration: measure what the SoftNIC shims *actually*
//! cost on this machine and re-price the semantic registry accordingly.
//!
//! The paper's §5 discussion ("Performance and programmable constraint",
//! citing performance-interface work) argues offload decisions need real
//! cost models, not guesses. Eq. 1's software term `w(s)` defaults to a
//! table calibrated on a nominal core; this module replaces it with
//! measurements: each computable semantic is timed over small and large
//! frames and fit to `base_ns + per_byte_ns · len`.

use crate::testpkt;
use crate::SoftNic;
use opendesc_ir::semantics::{Cost, SemanticRegistry};
use opendesc_ir::SemanticId;
use std::time::Instant;

/// One semantic's calibration result.
#[derive(Debug, Clone)]
pub struct CalibrationEntry {
    pub semantic: SemanticId,
    pub name: String,
    pub old: Cost,
    pub new: Cost,
}

/// The full calibration report.
#[derive(Debug, Clone, Default)]
pub struct CalibrationReport {
    pub entries: Vec<CalibrationEntry>,
    pub iters: u32,
}

impl CalibrationReport {
    /// Render as a table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "SoftNIC cost calibration ({} iterations/point)\n{:<18} {:>22} {:>22}\n",
            self.iters, "semantic", "table", "measured"
        );
        for e in &self.entries {
            out.push_str(&format!(
                "{:<18} {:>22} {:>22}\n",
                e.name,
                format!("{}", e.old),
                format!("{}", e.new)
            ));
        }
        out
    }
}

/// Measure the median-of-means cost of computing `sem` over `frame`.
fn measure_ns(soft: &mut SoftNic, name: &str, frame: &[u8], iters: u32) -> f64 {
    // Warm up (page in code, fill the flow table entry once).
    for _ in 0..16 {
        std::hint::black_box(soft.compute_by_name(name, frame));
    }
    let mut best = f64::INFINITY;
    for _round in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(soft.compute_by_name(name, frame));
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    best
}

/// Calibrate every finite-cost semantic in `reg` against the reference
/// implementations, updating the registry in place.
pub fn calibrate(reg: &mut SemanticRegistry, iters: u32) -> CalibrationReport {
    let small = testpkt::udp4(
        [10, 0, 0, 1],
        [10, 0, 0, 2],
        1111,
        11211,
        &testpkt::kvs_get_payload("calibration:key"),
        Some(0x0064),
    );
    // Large frame: same shape, padded payload (keep the KVS prefix so
    // payload-dependent semantics stay computable).
    let mut payload = testpkt::kvs_get_payload("calibration:key");
    payload.resize(1200, 0x61);
    let large = testpkt::udp4(
        [10, 0, 0, 1],
        [10, 0, 0, 2],
        1111,
        11211,
        &payload,
        Some(0x0064),
    );

    let mut soft = SoftNic::new();
    let mut report = CalibrationReport {
        entries: Vec::new(),
        iters,
    };
    let sems: Vec<(SemanticId, String, Cost)> = reg
        .iter()
        .map(|(id, info)| (id, info.name.clone(), info.cost))
        .collect();
    for (id, name, old) in sems {
        if old.is_infinite() {
            continue; // not software-computable; nothing to measure
        }
        // Skip semantics the probe frames cannot exercise.
        if soft.compute_by_name(&name, &small).is_none() {
            continue;
        }
        let t_small = measure_ns(&mut soft, &name, &small, iters);
        let t_large = measure_ns(&mut soft, &name, &large, iters);
        let dlen = (large.len() - small.len()) as f64;
        let per_byte_ns = ((t_large - t_small) / dlen).max(0.0);
        let base_ns = (t_small - per_byte_ns * small.len() as f64).max(0.1);
        let new = Cost::Finite {
            base_ns,
            per_byte_ns,
        };
        reg.set_cost(id, new);
        report.entries.push(CalibrationEntry {
            semantic: id,
            name,
            old,
            new,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use opendesc_ir::names;

    #[test]
    fn calibration_updates_finite_costs() {
        let mut reg = SemanticRegistry::with_builtins();
        let report = calibrate(&mut reg, 200);
        assert!(
            report.entries.len() >= 8,
            "most semantics calibrated: {}",
            report.entries.len()
        );
        for e in &report.entries {
            assert!(!e.new.is_infinite());
            assert!(e.new.eval(64) > 0.0, "{}: non-positive cost", e.name);
        }
        // Infinite-cost semantics stay infinite.
        assert!(reg.cost(reg.id(names::TIMESTAMP).unwrap()).is_infinite());
    }

    #[test]
    fn payload_priced_semantics_get_per_byte_component() {
        let mut reg = SemanticRegistry::with_builtins();
        calibrate(&mut reg, 300);
        let l4 = reg.id(names::L4_CHECKSUM).unwrap();
        let Cost::Finite { per_byte_ns, .. } = reg.cost(l4) else {
            panic!()
        };
        assert!(
            per_byte_ns > 0.0,
            "L4 checksum must scale with payload, got {per_byte_ns}"
        );
        // Flat semantics stay (nearly) flat.
        let vlan = reg.id(names::VLAN_TCI).unwrap();
        let Cost::Finite { per_byte_ns: v, .. } = reg.cost(vlan) else {
            panic!()
        };
        assert!(
            v < per_byte_ns,
            "vlan ({v}) flatter than l4 csum ({per_byte_ns})"
        );
    }

    #[test]
    fn report_renders() {
        let mut reg = SemanticRegistry::with_builtins();
        let r = calibrate(&mut reg, 50);
        let txt = r.render();
        assert!(txt.contains("rss_hash"), "{txt}");
        assert!(txt.contains("measured"), "{txt}");
    }
}
