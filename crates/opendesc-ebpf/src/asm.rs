//! Program builder: assemble eBPF instruction sequences with symbolic
//! labels, so codegen never hand-computes jump offsets.

use crate::insn::{alu, class, jmp, mode, size, srcop, Insn};
use std::collections::HashMap;

/// Register aliases.
pub mod reg {
    /// Return value / exit code.
    pub const R0: u8 = 0;
    /// First argument: context pointer.
    pub const R1: u8 = 1;
    pub const R2: u8 = 2;
    pub const R3: u8 = 3;
    pub const R4: u8 = 4;
    pub const R5: u8 = 5;
    pub const R6: u8 = 6;
    pub const R7: u8 = 7;
    pub const R8: u8 = 8;
    pub const R9: u8 = 9;
    /// Frame pointer (read-only).
    pub const R10: u8 = 10;
}

/// A pending jump awaiting label resolution.
struct Fixup {
    insn_idx: usize,
    label: String,
}

/// eBPF program assembler.
#[derive(Default)]
pub struct Asm {
    insns: Vec<Insn>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
}

impl Asm {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction count.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        self.labels.insert(name.to_string(), self.insns.len());
        self
    }

    /// Raw instruction append.
    pub fn raw(&mut self, i: Insn) -> &mut Self {
        self.insns.push(i);
        self
    }

    // -------------------------------------------------------------- moves

    /// `dst = imm` (64-bit, sign-extended 32-bit immediate).
    pub fn mov64_imm(&mut self, dst: u8, imm: i32) -> &mut Self {
        self.raw(Insn::new(
            class::ALU64 | alu::MOV | srcop::K,
            dst,
            0,
            0,
            imm,
        ))
    }

    /// `dst = src` (64-bit).
    pub fn mov64_reg(&mut self, dst: u8, src: u8) -> &mut Self {
        self.raw(Insn::new(
            class::ALU64 | alu::MOV | srcop::X,
            dst,
            src,
            0,
            0,
        ))
    }

    /// `dst = imm64` (two-slot LDDW).
    pub fn lddw(&mut self, dst: u8, imm: u64) -> &mut Self {
        self.raw(Insn::new(
            class::LD | mode::IMM | size::DW,
            dst,
            0,
            0,
            imm as u32 as i32,
        ));
        self.raw(Insn::new(0, 0, 0, 0, (imm >> 32) as u32 as i32))
    }

    // ---------------------------------------------------------------- alu

    /// 64-bit ALU op with immediate.
    pub fn alu64_imm(&mut self, op: u8, dst: u8, imm: i32) -> &mut Self {
        self.raw(Insn::new(class::ALU64 | op | srcop::K, dst, 0, 0, imm))
    }

    /// 64-bit ALU op with register source.
    pub fn alu64_reg(&mut self, op: u8, dst: u8, src: u8) -> &mut Self {
        self.raw(Insn::new(class::ALU64 | op | srcop::X, dst, src, 0, 0))
    }

    /// 32-bit ALU op with immediate (zero-extends the destination).
    pub fn alu32_imm(&mut self, op: u8, dst: u8, imm: i32) -> &mut Self {
        self.raw(Insn::new(class::ALU | op | srcop::K, dst, 0, 0, imm))
    }

    // ------------------------------------------------------------- memory

    /// `dst = *(size*)(src + off)`.
    pub fn ldx(&mut self, sz: u8, dst: u8, src: u8, off: i16) -> &mut Self {
        self.raw(Insn::new(class::LDX | mode::MEM | sz, dst, src, off, 0))
    }

    /// `*(size*)(dst + off) = src`.
    pub fn stx(&mut self, sz: u8, dst: u8, off: i16, src: u8) -> &mut Self {
        self.raw(Insn::new(class::STX | mode::MEM | sz, dst, src, off, 0))
    }

    /// `*(size*)(dst + off) = imm`.
    pub fn st(&mut self, sz: u8, dst: u8, off: i16, imm: i32) -> &mut Self {
        self.raw(Insn::new(class::ST | mode::MEM | sz, dst, 0, off, imm))
    }

    // --------------------------------------------------------------- jumps

    /// Unconditional jump to `label`.
    pub fn ja(&mut self, label: &str) -> &mut Self {
        self.fixups.push(Fixup {
            insn_idx: self.insns.len(),
            label: label.into(),
        });
        self.raw(Insn::new(class::JMP | jmp::JA, 0, 0, 0, 0))
    }

    /// Conditional jump `if dst OP imm goto label`.
    pub fn jmp_imm(&mut self, op: u8, dst: u8, imm: i32, label: &str) -> &mut Self {
        self.fixups.push(Fixup {
            insn_idx: self.insns.len(),
            label: label.into(),
        });
        self.raw(Insn::new(class::JMP | op | srcop::K, dst, 0, 0, imm))
    }

    /// Conditional jump `if dst OP src goto label`.
    pub fn jmp_reg(&mut self, op: u8, dst: u8, src: u8, label: &str) -> &mut Self {
        self.fixups.push(Fixup {
            insn_idx: self.insns.len(),
            label: label.into(),
        });
        self.raw(Insn::new(class::JMP | op | srcop::X, dst, src, 0, 0))
    }

    /// Program exit (returns r0).
    pub fn exit(&mut self) -> &mut Self {
        self.raw(Insn::new(class::JMP | jmp::EXIT, 0, 0, 0, 0))
    }

    /// Resolve labels and return the finished program.
    ///
    /// # Panics
    /// Panics on undefined labels (a codegen bug, not a user error).
    pub fn build(&mut self) -> Vec<Insn> {
        for f in &self.fixups {
            let target = *self
                .labels
                .get(&f.label)
                .unwrap_or_else(|| panic!("undefined label `{}`", f.label));
            // Offset is relative to the instruction after the jump.
            self.insns[f.insn_idx].off = (target as i64 - f.insn_idx as i64 - 1) as i16;
        }
        self.fixups.clear();
        self.insns.clone()
    }
}

/// Disassemble a program for documentation/debugging.
pub fn disasm(prog: &[Insn]) -> String {
    let mut out = String::new();
    let mut skip = false;
    for (i, insn) in prog.iter().enumerate() {
        if skip {
            skip = false;
            out.push_str(&format!("{i:4}: (lddw hi)\n"));
            continue;
        }
        out.push_str(&format!("{i:4}: {insn}\n"));
        if insn.is_lddw() {
            skip = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::jmp;

    #[test]
    fn forward_label_resolution() {
        let mut a = Asm::new();
        a.mov64_imm(reg::R0, 1)
            .jmp_imm(jmp::JEQ, reg::R0, 1, "done")
            .mov64_imm(reg::R0, 99)
            .label("done")
            .exit();
        let prog = a.build();
        assert_eq!(prog.len(), 4);
        // jeq at index 1 must skip index 2: off = 3 - 1 - 1 = 1.
        assert_eq!(prog[1].off, 1);
    }

    #[test]
    fn backward_label_resolution() {
        let mut a = Asm::new();
        a.label("top").mov64_imm(reg::R0, 0).ja("top");
        let prog = a.build();
        assert_eq!(prog[1].off, -2);
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Asm::new();
        a.ja("nowhere");
        a.build();
    }

    #[test]
    fn lddw_takes_two_slots() {
        let mut a = Asm::new();
        a.lddw(reg::R1, 0x1122334455667788);
        let prog = a.build();
        assert_eq!(prog.len(), 2);
        assert_eq!(prog[0].imm as u32, 0x55667788);
        assert_eq!(prog[1].imm as u32, 0x11223344);
    }

    #[test]
    fn disasm_renders_each_insn() {
        let mut a = Asm::new();
        a.mov64_imm(reg::R0, 2).exit();
        let d = disasm(&a.build());
        assert!(d.contains("mov64 r0, 2"), "{d}");
        assert!(d.contains("exit"), "{d}");
    }
}
