//! Static verifier: proves a program's memory accesses are in bounds
//! before it runs.
//!
//! This is the property the paper leans on for XDP integration: "access
//! to the descriptor can be bounded and therefore read safely from an
//! eBPF program" (§4). The verifier symbolically executes the program,
//! tracking pointer provenance (context / packet / metadata / stack) and
//! the byte ranges proven readable by compare-and-branch bounds checks,
//! in the style of the kernel verifier:
//!
//! ```text
//! r2 = ctx->meta            ; PtrMeta(0)
//! r3 = ctx->meta_end        ; PtrMetaEnd
//! r4 = r2 + 8               ; PtrMeta(8)
//! if r4 > r3 goto drop      ; fall-through proves meta[0..8) readable
//! r0 = *(u32 *)(r2 + 4)     ; ok: 4 + 4 <= 8
//! ```
//!
//! Programs must be loop-free (back-edges rejected) and may not call
//! helpers — generated accessors need neither.

use crate::insn::{access_size, alu, class, jmp, srcop, Insn};
use crate::xdp::ctx_off;
use std::collections::VecDeque;
use std::fmt;

/// Abstract value of a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegState {
    Uninit,
    /// Scalar; `Some(v)` when the exact value is known (constant
    /// propagation feeds pointer arithmetic).
    Scalar(Option<u64>),
    /// Pointer to the context object.
    PtrCtx,
    /// Pointer into packet data at a known byte offset.
    PtrPkt(i64),
    /// The packet end pointer.
    PtrPktEnd,
    /// Pointer into descriptor metadata at a known byte offset.
    PtrMeta(i64),
    /// The metadata end pointer.
    PtrMetaEnd,
    /// Pointer into the stack; offset relative to r10 (≤ 0).
    PtrStack(i64),
}

/// Verification failure, with the offending program counter.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifierError {
    pub pc: usize,
    pub reason: String,
}

impl fmt::Display for VerifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verifier: pc {}: {}", self.pc, self.reason)
    }
}

impl std::error::Error for VerifierError {}

/// Statistics from a successful verification.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifierStats {
    pub states_explored: usize,
}

#[derive(Debug, Clone, PartialEq)]
struct State {
    regs: [RegState; 11],
    /// Bytes of packet proven readable from offset 0.
    proven_pkt: i64,
    /// Bytes of metadata proven readable from offset 0.
    proven_meta: i64,
}

impl State {
    fn initial() -> State {
        let mut regs = [RegState::Uninit; 11];
        regs[1] = RegState::PtrCtx;
        regs[10] = RegState::PtrStack(0);
        State {
            regs,
            proven_pkt: 0,
            proven_meta: 0,
        }
    }
}

/// Maximum branch states to explore before declaring the program too
/// complex (mirrors the kernel's verifier budget, scaled down).
const STATE_BUDGET: usize = 100_000;

/// Verify `prog`. Returns stats on success.
pub fn verify(prog: &[Insn]) -> Result<VerifierStats, VerifierError> {
    if prog.is_empty() {
        return Err(VerifierError {
            pc: 0,
            reason: "empty program".into(),
        });
    }
    let mut queue: VecDeque<(usize, State)> = VecDeque::new();
    queue.push_back((0, State::initial()));
    let mut stats = VerifierStats::default();

    while let Some((pc, mut st)) = queue.pop_front() {
        stats.states_explored += 1;
        if stats.states_explored > STATE_BUDGET {
            return Err(VerifierError {
                pc,
                reason: "state budget exhausted (program too complex)".into(),
            });
        }
        let Some(insn) = prog.get(pc) else {
            return Err(VerifierError {
                pc,
                reason: "fall off the end of the program".into(),
            });
        };
        let err = |reason: String| VerifierError { pc, reason };
        if insn.dst > 10 || insn.src > 10 {
            return Err(err(format!(
                "invalid register r{} (only r0..r10 exist)",
                insn.dst.max(insn.src)
            )));
        }
        match insn.class() {
            class::ALU64 | class::ALU => {
                step_alu(insn, &mut st, pc)?;
                queue.push_back((pc + 1, st));
            }
            class::LD => {
                if insn.is_lddw() {
                    let Some(hi) = prog.get(pc + 1) else {
                        return Err(err("truncated lddw".into()));
                    };
                    let v = (insn.imm as u32 as u64) | ((hi.imm as u32 as u64) << 32);
                    st.regs[insn.dst as usize] = RegState::Scalar(Some(v));
                    queue.push_back((pc + 2, st));
                } else {
                    return Err(err(format!(
                        "unsupported load class opcode {:#04x}",
                        insn.code
                    )));
                }
            }
            class::LDX => {
                step_ldx(insn, &mut st, pc)?;
                queue.push_back((pc + 1, st));
            }
            class::STX | class::ST => {
                step_store(insn, &st, pc)?;
                queue.push_back((pc + 1, st));
            }
            class::JMP => {
                let op = insn.code & 0xF0;
                match op {
                    jmp::EXIT => {
                        if st.regs[0] == RegState::Uninit {
                            return Err(err("r0 not set at exit".into()));
                        }
                        continue;
                    }
                    jmp::CALL => {
                        return Err(err(
                            "helper calls are not allowed in accessor programs".into()
                        ));
                    }
                    jmp::JA => {
                        let target = pc as i64 + 1 + insn.off as i64;
                        check_target(prog, pc, target)?;
                        queue.push_back((target as usize, st));
                    }
                    _ => {
                        let target = pc as i64 + 1 + insn.off as i64;
                        check_target(prog, pc, target)?;
                        // Bounds-proof pattern recognition.
                        let (mut taken, mut fall) = (st.clone(), st.clone());
                        if insn.code & srcop::X != 0 {
                            apply_bounds_proof(
                                op,
                                st.regs[insn.dst as usize],
                                st.regs[insn.src as usize],
                                &mut taken,
                                &mut fall,
                            );
                        }
                        queue.push_back((target as usize, taken));
                        queue.push_back((pc + 1, fall));
                    }
                }
            }
            class::JMP32 => {
                return Err(err("jmp32 class not supported".into()));
            }
            _ => return Err(err(format!("unknown opcode {:#04x}", insn.code))),
        }
    }
    Ok(stats)
}

/// Verify a batch of named programs — the lowering entry point used by
/// `opendesc-core` to prove every compiled plan bounds-safe before the
/// plan cache serves it. Stats aggregate across all programs; the first
/// failure is returned tagged with the offending program's name.
pub fn verify_all<'a, I>(progs: I) -> Result<VerifierStats, (String, VerifierError)>
where
    I: IntoIterator<Item = (&'a str, &'a [Insn])>,
{
    let mut total = VerifierStats::default();
    for (name, prog) in progs {
        let stats = verify(prog).map_err(|e| (name.to_string(), e))?;
        total.states_explored += stats.states_explored;
    }
    Ok(total)
}

fn check_target(prog: &[Insn], pc: usize, target: i64) -> Result<(), VerifierError> {
    if target <= pc as i64 {
        return Err(VerifierError {
            pc,
            reason: format!("back-edge to {target}: loops are not allowed"),
        });
    }
    if target as usize >= prog.len() {
        return Err(VerifierError {
            pc,
            reason: format!("jump target {target} out of program"),
        });
    }
    Ok(())
}

/// If the comparison is `ptr OP end` (or mirrored), record the proven
/// readable prefix on the branch where `ptr ≤ end` holds.
fn apply_bounds_proof(op: u8, dst: RegState, src: RegState, taken: &mut State, fall: &mut State) {
    use RegState::*;
    // Normalize to (ptr_off, region, op) with the pointer on the left.
    let (ptr, is_meta, end_on_right, cmp) = match (dst, src) {
        (PtrPkt(k), PtrPktEnd) => (k, false, true, op),
        (PtrMeta(k), PtrMetaEnd) => (k, true, true, op),
        (PtrPktEnd, PtrPkt(k)) => (k, false, false, op),
        (PtrMetaEnd, PtrMeta(k)) => (k, true, false, op),
        _ => return,
    };
    if ptr < 0 {
        return;
    }
    // With the pointer on the left (`ptr OP end`):
    //   JGT taken ⇒ ptr > end; fall-through ⇒ ptr ≤ end (proof on fall).
    //   JLE taken ⇒ ptr ≤ end (proof on taken).
    //   JGE/JLT prove the strict variant; a strict `ptr < end` also
    //   implies `ptr ≤ end`, so the same prefix is sound.
    // With the end pointer on the left, the roles mirror.
    let proof_on_taken = match (end_on_right, cmp) {
        (true, jmp::JLE | jmp::JLT) => Some(true),
        (true, jmp::JGT | jmp::JGE) => Some(false),
        (false, jmp::JGE | jmp::JGT) => Some(true),
        (false, jmp::JLE | jmp::JLT) => Some(false),
        _ => None,
    };
    let Some(on_taken) = proof_on_taken else {
        return;
    };
    let target_state = if on_taken { taken } else { fall };
    if is_meta {
        target_state.proven_meta = target_state.proven_meta.max(ptr);
    } else {
        target_state.proven_pkt = target_state.proven_pkt.max(ptr);
    }
}

fn step_alu(insn: &Insn, st: &mut State, pc: usize) -> Result<(), VerifierError> {
    use RegState::*;
    let err = |reason: String| VerifierError { pc, reason };
    let op = insn.code & 0xF0;
    let dst = insn.dst as usize;
    if dst == 10 {
        return Err(err("r10 is read-only".into()));
    }
    let rhs: RegState = if insn.code & srcop::X != 0 {
        st.regs[insn.src as usize]
    } else {
        Scalar(Some(insn.imm as i64 as u64))
    };
    if matches!(rhs, Uninit) {
        return Err(err(format!("read of uninitialized r{}", insn.src)));
    }
    let lhs = st.regs[dst];
    let is32 = insn.class() == class::ALU;
    st.regs[dst] = match op {
        alu::MOV => {
            if is32 {
                // 32-bit move truncates pointers to scalars.
                match rhs {
                    Scalar(Some(v)) => Scalar(Some(v as u32 as u64)),
                    _ => Scalar(None),
                }
            } else {
                rhs
            }
        }
        alu::ADD | alu::SUB => {
            let delta = match rhs {
                Scalar(Some(v)) => Some(v as i64),
                _ => None,
            };
            let signed = |d: i64| if op == alu::SUB { -d } else { d };
            match (lhs, delta) {
                (PtrPkt(k), Some(d)) if !is32 => PtrPkt(k + signed(d)),
                (PtrMeta(k), Some(d)) if !is32 => PtrMeta(k + signed(d)),
                (PtrStack(k), Some(d)) if !is32 => PtrStack(k + signed(d)),
                (PtrPkt(_) | PtrMeta(_) | PtrStack(_) | PtrCtx | PtrPktEnd | PtrMetaEnd, _) => {
                    return Err(err(
                        "pointer arithmetic with unbounded or 32-bit operand".into()
                    ));
                }
                (Scalar(Some(a)), Some(d)) => {
                    let v = if op == alu::SUB {
                        a.wrapping_sub(d as u64)
                    } else {
                        a.wrapping_add(d as u64)
                    };
                    Scalar(Some(if is32 { v as u32 as u64 } else { v }))
                }
                (Scalar(_), _) => Scalar(None),
                (Uninit, _) => return Err(err(format!("read of uninitialized r{dst}"))),
            }
        }
        _ => {
            // Any other ALU op on a pointer destroys provenance; on
            // scalars it yields a scalar (constant-folded when both known).
            match lhs {
                PtrPkt(_) | PtrMeta(_) | PtrStack(_) | PtrCtx | PtrPktEnd | PtrMetaEnd => {
                    return Err(err("arithmetic on pointer destroys provenance".into()));
                }
                Uninit if op != alu::NEG => {
                    // NEG reads only dst; others read dst too — uninit
                    // either way.
                    return Err(err(format!("read of uninitialized r{dst}")));
                }
                _ => match (lhs, rhs) {
                    (Scalar(Some(a)), Scalar(Some(b))) => {
                        let v = const_alu(op, a, b, is32);
                        Scalar(v)
                    }
                    _ => Scalar(None),
                },
            }
        }
    };
    Ok(())
}

fn const_alu(op: u8, a: u64, b: u64, is32: bool) -> Option<u64> {
    let v = match op {
        alu::ADD => a.wrapping_add(b),
        alu::SUB => a.wrapping_sub(b),
        alu::MUL => a.wrapping_mul(b),
        alu::DIV => a.checked_div(b).unwrap_or(0),
        alu::MOD => a.checked_rem(b).unwrap_or(a),
        alu::OR => a | b,
        alu::AND => a & b,
        alu::XOR => a ^ b,
        alu::LSH => a.wrapping_shl(b as u32 & 63),
        alu::RSH => a.wrapping_shr(b as u32 & 63),
        alu::ARSH => ((a as i64) >> (b as u32 & 63)) as u64,
        alu::NEG => (a as i64).wrapping_neg() as u64,
        _ => return None,
    };
    Some(if is32 { v as u32 as u64 } else { v })
}

fn step_ldx(insn: &Insn, st: &mut State, pc: usize) -> Result<(), VerifierError> {
    use RegState::*;
    let err = |reason: String| VerifierError { pc, reason };
    let sz = access_size(insn.code) as i64;
    let base = st.regs[insn.src as usize];
    let off = insn.off as i64;
    let dst = insn.dst as usize;
    if dst == 10 {
        return Err(err("r10 is read-only".into()));
    }
    st.regs[dst] = match base {
        PtrCtx => {
            if sz != 8 {
                return Err(err("context fields must be read with 8-byte loads".into()));
            }
            match insn.off {
                ctx_off::DATA => PtrPkt(0),
                ctx_off::DATA_END => PtrPktEnd,
                ctx_off::META => PtrMeta(0),
                ctx_off::META_END => PtrMetaEnd,
                o => return Err(err(format!("invalid context offset {o}"))),
            }
        }
        PtrPkt(k) => {
            if k + off < 0 || k + off + sz > st.proven_pkt {
                return Err(err(format!(
                    "packet access at offset {} of {sz} bytes exceeds proven bound {}",
                    k + off,
                    st.proven_pkt
                )));
            }
            Scalar(None)
        }
        PtrMeta(k) => {
            if k + off < 0 || k + off + sz > st.proven_meta {
                return Err(err(format!(
                    "metadata access at offset {} of {sz} bytes exceeds proven bound {}",
                    k + off,
                    st.proven_meta
                )));
            }
            Scalar(None)
        }
        PtrStack(k) => {
            let lo = k + off;
            if lo < -512 || lo + sz > 0 {
                return Err(err(format!("stack access at {lo} out of [-512, 0)")));
            }
            Scalar(None)
        }
        PtrPktEnd | PtrMetaEnd => {
            return Err(err("dereference of an end pointer".into()));
        }
        Scalar(_) => return Err(err("dereference of a scalar".into())),
        Uninit => return Err(err(format!("read of uninitialized r{}", insn.src))),
    };
    Ok(())
}

fn step_store(insn: &Insn, st: &State, pc: usize) -> Result<(), VerifierError> {
    use RegState::*;
    let err = |reason: String| VerifierError { pc, reason };
    if insn.class() == class::STX && st.regs[insn.src as usize] == Uninit {
        return Err(err(format!("store of uninitialized r{}", insn.src)));
    }
    let sz = access_size(insn.code) as i64;
    match st.regs[insn.dst as usize] {
        PtrStack(k) => {
            let lo = k + insn.off as i64;
            if lo < -512 || lo + sz > 0 {
                return Err(err(format!("stack store at {lo} out of [-512, 0)")));
            }
            Ok(())
        }
        PtrPkt(_) | PtrMeta(_) | PtrCtx | PtrPktEnd | PtrMetaEnd => {
            Err(err("stores are only allowed to the stack".into()))
        }
        Scalar(_) => Err(err("store through a scalar".into())),
        Uninit => Err(err(format!("store through uninitialized r{}", insn.dst))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{reg, Asm};
    use crate::insn::{size, xdp_action};
    use crate::interp::{Vm, VmError};
    use crate::xdp::XdpContext;

    /// A correct bounded metadata read: prove 8 bytes, read a u32 at +4.
    fn bounded_meta_read() -> Vec<Insn> {
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R2, reg::R1, ctx_off::META)
            .ldx(size::DW, reg::R3, reg::R1, ctx_off::META_END)
            .mov64_reg(reg::R4, reg::R2)
            .alu64_imm(alu::ADD, reg::R4, 8)
            .jmp_reg(jmp::JGT, reg::R4, reg::R3, "drop")
            .ldx(size::W, reg::R0, reg::R2, 4)
            .exit()
            .label("drop")
            .mov64_imm(reg::R0, xdp_action::DROP as i32)
            .exit();
        a.build()
    }

    #[test]
    fn accepts_bounded_metadata_read() {
        verify(&bounded_meta_read()).expect("bounded read verifies");
    }

    #[test]
    fn rejects_unchecked_metadata_read() {
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R2, reg::R1, ctx_off::META)
            .ldx(size::W, reg::R0, reg::R2, 4)
            .exit();
        let e = verify(&a.build()).unwrap_err();
        assert!(e.reason.contains("proven bound"), "{e}");
    }

    #[test]
    fn rejects_read_past_proven_bound() {
        // Proves 8 bytes but reads at offset 6 with 4 bytes (needs 10).
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R2, reg::R1, ctx_off::META)
            .ldx(size::DW, reg::R3, reg::R1, ctx_off::META_END)
            .mov64_reg(reg::R4, reg::R2)
            .alu64_imm(alu::ADD, reg::R4, 8)
            .jmp_reg(jmp::JGT, reg::R4, reg::R3, "drop")
            .ldx(size::W, reg::R0, reg::R2, 6)
            .exit()
            .label("drop")
            .mov64_imm(reg::R0, 1)
            .exit();
        let e = verify(&a.build()).unwrap_err();
        assert!(e.reason.contains("exceeds proven bound"), "{e}");
    }

    #[test]
    fn proof_applies_to_correct_branch_jle() {
        // `if ptr+8 <= end goto ok` — proof lives on the TAKEN branch.
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R2, reg::R1, ctx_off::META)
            .ldx(size::DW, reg::R3, reg::R1, ctx_off::META_END)
            .mov64_reg(reg::R4, reg::R2)
            .alu64_imm(alu::ADD, reg::R4, 8)
            .jmp_reg(jmp::JLE, reg::R4, reg::R3, "ok")
            .mov64_imm(reg::R0, 1)
            .exit()
            .label("ok")
            .ldx(size::DW, reg::R0, reg::R2, 0)
            .exit();
        verify(&a.build()).expect("JLE taken-branch proof");
    }

    #[test]
    fn mirrored_comparison_also_proves() {
        // `if end >= ptr+8 goto ok`.
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R2, reg::R1, ctx_off::META)
            .ldx(size::DW, reg::R3, reg::R1, ctx_off::META_END)
            .mov64_reg(reg::R4, reg::R2)
            .alu64_imm(alu::ADD, reg::R4, 8)
            .jmp_reg(jmp::JGE, reg::R3, reg::R4, "ok")
            .mov64_imm(reg::R0, 1)
            .exit()
            .label("ok")
            .ldx(size::DW, reg::R0, reg::R2, 0)
            .exit();
        verify(&a.build()).expect("mirrored JGE proof");
    }

    #[test]
    fn rejects_loops() {
        let mut a = Asm::new();
        a.label("top").mov64_imm(reg::R0, 0).ja("top");
        let e = verify(&a.build()).unwrap_err();
        assert!(e.reason.contains("back-edge"), "{e}");
    }

    #[test]
    fn rejects_helper_calls() {
        let mut a = Asm::new();
        a.raw(Insn::new(class::JMP | jmp::CALL, 0, 0, 0, 6))
            .mov64_imm(reg::R0, 0)
            .exit();
        let e = verify(&a.build()).unwrap_err();
        assert!(e.reason.contains("helper"), "{e}");
    }

    #[test]
    fn rejects_uninitialized_register_use() {
        let mut a = Asm::new();
        a.mov64_reg(reg::R0, reg::R5).exit();
        let e = verify(&a.build()).unwrap_err();
        assert!(e.reason.contains("uninitialized"), "{e}");
    }

    #[test]
    fn rejects_missing_r0() {
        let mut a = Asm::new();
        a.exit();
        let e = verify(&a.build()).unwrap_err();
        assert!(e.reason.contains("r0"), "{e}");
    }

    #[test]
    fn rejects_packet_store() {
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R2, reg::R1, ctx_off::DATA)
            .mov64_imm(reg::R0, 0)
            .stx(size::B, reg::R2, 0, reg::R0)
            .exit();
        let e = verify(&a.build()).unwrap_err();
        assert!(e.reason.contains("stack"), "{e}");
    }

    #[test]
    fn allows_stack_spill_and_reload() {
        let mut a = Asm::new();
        a.mov64_imm(reg::R2, 7)
            .stx(size::DW, reg::R10, -8, reg::R2)
            .ldx(size::DW, reg::R0, reg::R10, -8)
            .exit();
        verify(&a.build()).unwrap();
    }

    #[test]
    fn rejects_stack_out_of_range() {
        let mut a = Asm::new();
        a.mov64_imm(reg::R0, 0)
            .stx(size::DW, reg::R10, -520, reg::R0)
            .exit();
        let e = verify(&a.build()).unwrap_err();
        assert!(e.reason.contains("stack"), "{e}");
    }

    #[test]
    fn rejects_bad_ctx_offset() {
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R0, reg::R1, 12).exit();
        let e = verify(&a.build()).unwrap_err();
        assert!(e.reason.contains("context offset"), "{e}");
    }

    #[test]
    fn rejects_pointer_arithmetic_with_unknown_scalar() {
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R2, reg::R1, ctx_off::META)
            .ldx(size::DW, reg::R3, reg::R1, ctx_off::META_END)
            .mov64_reg(reg::R5, reg::R2)
            .alu64_imm(alu::ADD, reg::R5, 4)
            .jmp_reg(jmp::JGT, reg::R5, reg::R3, "d")
            // r6 = unknown scalar read from metadata; r2 += r6 is unsound.
            .ldx(size::W, reg::R6, reg::R2, 0)
            .alu64_reg(alu::ADD, reg::R2, reg::R6)
            .ldx(size::B, reg::R0, reg::R2, 0)
            .exit()
            .label("d")
            .mov64_imm(reg::R0, 1)
            .exit();
        let e = verify(&a.build()).unwrap_err();
        assert!(e.reason.contains("pointer arithmetic"), "{e}");
    }

    #[test]
    fn verified_programs_never_fault_at_runtime() {
        // Soundness spot-check: run the verified bounded reader against
        // metadata both large enough and too small; neither faults.
        let prog = bounded_meta_read();
        verify(&prog).unwrap();
        let vm = Vm::default();
        let big = XdpContext::new(vec![], vec![9u8; 16]);
        let small = XdpContext::new(vec![], vec![9u8; 4]);
        assert!(vm.run(&prog, &big).is_ok());
        let (r0, _) = vm.run(&prog, &small).unwrap();
        assert_eq!(r0, xdp_action::DROP, "small metadata takes the drop branch");
    }

    #[test]
    fn rejected_program_would_fault() {
        // The converse: a program the verifier rejects actually faults in
        // the VM when metadata is short — demonstrating the rejection is
        // not spurious.
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R2, reg::R1, ctx_off::META)
            .ldx(size::W, reg::R0, reg::R2, 4)
            .exit();
        let prog = a.build();
        assert!(verify(&prog).is_err());
        let vm = Vm::default();
        let small = XdpContext::new(vec![], vec![0u8; 2]);
        assert!(matches!(
            vm.run(&prog, &small),
            Err(VmError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn constant_folding_supports_computed_offsets() {
        // r5 = 2; r5 <<= 2 (=8); prove 16; read at r2+r5 via ADD.
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R2, reg::R1, ctx_off::META)
            .ldx(size::DW, reg::R3, reg::R1, ctx_off::META_END)
            .mov64_reg(reg::R4, reg::R2)
            .alu64_imm(alu::ADD, reg::R4, 16)
            .jmp_reg(jmp::JGT, reg::R4, reg::R3, "d")
            .mov64_imm(reg::R5, 2)
            .alu64_imm(alu::LSH, reg::R5, 2)
            .alu64_reg(alu::ADD, reg::R2, reg::R5)
            .ldx(size::DW, reg::R0, reg::R2, 0)
            .exit()
            .label("d")
            .mov64_imm(reg::R0, 1)
            .exit();
        verify(&a.build()).expect("known-constant pointer arithmetic allowed");
    }
}
