//! XDP-style hook context.
//!
//! Mirrors the kernel's `xdp_md` idea with explicit 64-bit fields: the
//! program receives a context pointer in r1 and reads packet/metadata
//! bounds from it. OpenDesc points `meta`/`meta_end` at the raw NIC
//! completion record — the "access to the descriptor can be bounded and
//! therefore read safely from an eBPF program" path of paper §4.

/// Field offsets within the context object (all 8-byte fields).
pub mod ctx_off {
    /// Packet data start pointer.
    pub const DATA: i16 = 0;
    /// Packet data end pointer.
    pub const DATA_END: i16 = 8;
    /// Metadata (descriptor) start pointer.
    pub const META: i16 = 16;
    /// Metadata (descriptor) end pointer.
    pub const META_END: i16 = 24;
    /// Total context size in bytes.
    pub const SIZE: u32 = 32;
}

/// Synthetic base addresses for the VM's memory regions. Chosen far apart
/// so accidental pointer arithmetic across regions faults.
pub mod base {
    pub const CTX: u64 = 0x0000_0100;
    pub const PKT: u64 = 0x1_0000_0000;
    pub const META: u64 = 0x2_0000_0000;
    /// r10 value; the valid stack is `[STACK_TOP-512, STACK_TOP)`.
    pub const STACK_TOP: u64 = 0x3_0000_0200;
    pub const STACK_SIZE: u64 = 512;
}

/// An XDP invocation context: one packet and its descriptor metadata.
#[derive(Debug, Clone)]
pub struct XdpContext {
    pub packet: Vec<u8>,
    pub metadata: Vec<u8>,
}

impl XdpContext {
    pub fn new(packet: impl Into<Vec<u8>>, metadata: impl Into<Vec<u8>>) -> Self {
        XdpContext {
            packet: packet.into(),
            metadata: metadata.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn regions_do_not_overlap() {
        assert!(base::CTX + ctx_off::SIZE as u64 <= base::PKT);
        assert!(base::PKT < base::META);
        assert!(base::META < base::STACK_TOP - base::STACK_SIZE);
    }

    #[test]
    fn context_holds_packet_and_metadata() {
        let c = XdpContext::new(vec![1, 2, 3], vec![4, 5]);
        assert_eq!(c.packet.len(), 3);
        assert_eq!(c.metadata.len(), 2);
    }
}
