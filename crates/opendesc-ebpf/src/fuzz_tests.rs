//! Differential soundness testing: the verifier's acceptance must imply
//! the VM cannot fault.
//!
//! Random programs are generated from a pool of plausible instruction
//! shapes (register moves, ALU ops, context loads, bounded and unbounded
//! memory accesses, forward jumps, exits). For every program the
//! verifier *accepts*, the VM is run against adversarial contexts
//! (empty, short, large) and must terminate without a memory fault.
//! This is the soundness property the paper's XDP story rests on.

#![cfg(test)]

use crate::insn::{alu, class, jmp, mode, size, srcop, Insn};
use crate::interp::{Vm, VmError};
use crate::verifier::verify;
use crate::xdp::{ctx_off, XdpContext};
use proptest::prelude::*;

/// One random instruction, biased toward verifier-passable shapes.
fn arb_insn() -> impl Strategy<Value = Vec<Insn>> {
    // Registers 0..=5 keep the state space small; r1 starts as ctx.
    let reg = 0u8..6;
    prop_oneof![
        // mov imm
        (reg.clone(), any::<i16>()).prop_map(|(d, v)| vec![Insn::new(
            class::ALU64 | alu::MOV | srcop::K,
            d,
            0,
            0,
            v as i32
        )]),
        // mov reg
        (reg.clone(), reg.clone()).prop_map(|(d, s)| vec![Insn::new(
            class::ALU64 | alu::MOV | srcop::X,
            d,
            s,
            0,
            0
        )]),
        // alu imm (add/and/or/rsh)
        (
            reg.clone(),
            prop_oneof![
                Just(alu::ADD),
                Just(alu::AND),
                Just(alu::OR),
                Just(alu::RSH)
            ],
            0i32..64
        )
            .prop_map(|(d, op, v)| vec![Insn::new(
                class::ALU64 | op | srcop::K,
                d,
                0,
                0,
                v
            )]),
        // load a context pointer field
        (
            reg.clone(),
            prop_oneof![
                Just(ctx_off::DATA),
                Just(ctx_off::DATA_END),
                Just(ctx_off::META),
                Just(ctx_off::META_END),
                Just(4i16),
                Just(12) // invalid offsets too
            ]
        )
            .prop_map(|(d, off)| vec![Insn::new(
                class::LDX | mode::MEM | size::DW,
                d,
                1,
                off,
                0
            )]),
        // memory load via arbitrary register (often unsound → rejected)
        (
            reg.clone(),
            reg.clone(),
            -4i16..16,
            prop_oneof![Just(size::B), Just(size::H), Just(size::W), Just(size::DW)]
        )
            .prop_map(|(d, s, off, sz)| vec![Insn::new(
                class::LDX | mode::MEM | sz,
                d,
                s,
                off,
                0
            )]),
        // stack store + load pair
        (reg.clone(), -64i16..-8).prop_map(|(s, off)| vec![
            Insn::new(class::STX | mode::MEM | size::DW, 10, s, off, 0),
            Insn::new(class::LDX | mode::MEM | size::DW, s, 10, off, 0),
        ]),
        // forward conditional jump over 1 insn
        (
            reg.clone(),
            prop_oneof![Just(jmp::JEQ), Just(jmp::JGT), Just(jmp::JNE)],
            any::<i32>()
        )
            .prop_map(|(d, op, v)| vec![
                Insn::new(class::JMP | op | srcop::K, d, 0, 1, v),
                Insn::new(class::ALU64 | alu::MOV | srcop::K, 0, 0, 0, 7),
            ]),
        // pointer-vs-end comparison (the bounds-proof shape)
        (reg.clone(), reg.clone()).prop_map(|(d, s)| vec![
            Insn::new(class::JMP | jmp::JGT | srcop::X, d, s, 1, 0),
            Insn::new(class::ALU64 | alu::MOV | srcop::K, 0, 0, 0, 1)
        ]),
    ]
}

fn arb_program() -> impl Strategy<Value = Vec<Insn>> {
    proptest::collection::vec(arb_insn(), 1..12).prop_map(|chunks| {
        let mut prog: Vec<Insn> = vec![
            // r0 initialized so EXIT is always legal if reached.
            Insn::new(class::ALU64 | alu::MOV | srcop::K, 0, 0, 0, 0),
        ];
        for c in chunks {
            prog.extend(c);
        }
        prog.push(Insn::new(class::JMP | jmp::EXIT, 0, 0, 0, 0));
        prog
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// SOUNDNESS: if the verifier accepts, the VM never reports a memory
    /// fault on any input.
    #[test]
    fn verified_programs_never_fault(prog in arb_program()) {
        if verify(&prog).is_err() {
            // Rejected programs are out of scope here (completeness is
            // not claimed, soundness is).
            return Ok(());
        }
        let vm = Vm { insn_budget: 100_000 };
        for (pkt, meta) in [
            (vec![], vec![]),
            (vec![0u8; 1], vec![0u8; 1]),
            (vec![0xFF; 64], vec![0xAA; 8]),
            (vec![0x00; 2048], vec![0x55; 64]),
        ] {
            let ctx = XdpContext::new(pkt.clone(), meta.clone());
            match vm.run(&prog, &ctx) {
                Ok(_) => {}
                Err(e @ (VmError::OutOfBounds { .. } | VmError::ReadOnly { .. })) => {
                    panic!(
                        "VERIFIER UNSOUND: accepted program faulted with {e}\n{}",
                        crate::asm::disasm(&prog)
                    );
                }
                Err(VmError::Timeout) => {
                    panic!("verified program looped (back-edge slipped through)");
                }
                Err(other) => {
                    panic!("verified program hit {other} — verifier/VM disagree on validity");
                }
            }
        }
    }

    /// The verifier itself never panics on arbitrary instruction bytes.
    #[test]
    fn verifier_total_on_random_code(raw in proptest::collection::vec(any::<[u8; 8]>(), 1..64)) {
        let prog: Vec<Insn> = raw.iter().map(Insn::decode).collect();
        let _ = verify(&prog); // must not panic
    }

    /// The VM never panics either: any error is a clean `VmError`.
    #[test]
    fn vm_total_on_random_code(raw in proptest::collection::vec(any::<[u8; 8]>(), 1..64)) {
        let prog: Vec<Insn> = raw.iter().map(Insn::decode).collect();
        let vm = Vm { insn_budget: 10_000 };
        let ctx = XdpContext::new(vec![0u8; 32], vec![0u8; 16]);
        let _ = vm.run(&prog, &ctx); // must not panic
    }
}
