//! eBPF instruction encoding (the classic 64-bit fixed-width ISA).
//!
//! Instructions are `{code, dst, src, off, imm}`; 64-bit immediates use
//! the two-slot `LDDW` form. The subset covers everything the generated
//! descriptor accessors and the test programs need: ALU/ALU64, MEM
//! loads/stores, conditional jumps, and EXIT.

use std::fmt;

/// Instruction classes (low 3 bits of the opcode).
pub mod class {
    pub const LD: u8 = 0x00;
    pub const LDX: u8 = 0x01;
    pub const ST: u8 = 0x02;
    pub const STX: u8 = 0x03;
    pub const ALU: u8 = 0x04;
    pub const JMP: u8 = 0x05;
    pub const JMP32: u8 = 0x06;
    pub const ALU64: u8 = 0x07;
}

/// Memory access sizes (bits 3–4 for LD/ST classes).
pub mod size {
    pub const W: u8 = 0x00; // 4 bytes
    pub const H: u8 = 0x08; // 2 bytes
    pub const B: u8 = 0x10; // 1 byte
    pub const DW: u8 = 0x18; // 8 bytes
}

/// Addressing modes (bits 5–7 for LD/ST classes).
pub mod mode {
    pub const IMM: u8 = 0x00;
    pub const MEM: u8 = 0x60;
}

/// Source operand flag (bit 3 for ALU/JMP classes).
pub mod srcop {
    /// Use the 32-bit immediate.
    pub const K: u8 = 0x00;
    /// Use the source register.
    pub const X: u8 = 0x08;
}

/// ALU operations (bits 4–7).
pub mod alu {
    pub const ADD: u8 = 0x00;
    pub const SUB: u8 = 0x10;
    pub const MUL: u8 = 0x20;
    pub const DIV: u8 = 0x30;
    pub const OR: u8 = 0x40;
    pub const AND: u8 = 0x50;
    pub const LSH: u8 = 0x60;
    pub const RSH: u8 = 0x70;
    pub const NEG: u8 = 0x80;
    pub const MOD: u8 = 0x90;
    pub const XOR: u8 = 0xa0;
    pub const MOV: u8 = 0xb0;
    pub const ARSH: u8 = 0xc0;
}

/// Jump operations (bits 4–7).
pub mod jmp {
    pub const JA: u8 = 0x00;
    pub const JEQ: u8 = 0x10;
    pub const JGT: u8 = 0x20;
    pub const JGE: u8 = 0x30;
    pub const JSET: u8 = 0x40;
    pub const JNE: u8 = 0x50;
    pub const JSGT: u8 = 0x60;
    pub const JSGE: u8 = 0x70;
    pub const CALL: u8 = 0x80;
    pub const EXIT: u8 = 0x90;
    pub const JLT: u8 = 0xa0;
    pub const JLE: u8 = 0xb0;
    pub const JSLT: u8 = 0xc0;
    pub const JSLE: u8 = 0xd0;
}

/// XDP program return codes.
pub mod xdp_action {
    pub const ABORTED: u64 = 0;
    pub const DROP: u64 = 1;
    pub const PASS: u64 = 2;
    pub const TX: u64 = 3;
    pub const REDIRECT: u64 = 4;
}

/// One 8-byte eBPF instruction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Insn {
    pub code: u8,
    /// Destination register (0–10).
    pub dst: u8,
    /// Source register (0–10).
    pub src: u8,
    pub off: i16,
    pub imm: i32,
}

impl Insn {
    pub const fn new(code: u8, dst: u8, src: u8, off: i16, imm: i32) -> Insn {
        Insn {
            code,
            dst,
            src,
            off,
            imm,
        }
    }

    /// Instruction class.
    pub fn class(&self) -> u8 {
        self.code & 0x07
    }

    /// Whether this is the first slot of an LDDW (64-bit immediate load).
    pub fn is_lddw(&self) -> bool {
        self.code == class::LD | mode::IMM | size::DW
    }

    /// Encode to the canonical 8-byte little-endian form.
    pub fn encode(&self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[0] = self.code;
        b[1] = (self.src << 4) | (self.dst & 0x0F);
        b[2..4].copy_from_slice(&self.off.to_le_bytes());
        b[4..8].copy_from_slice(&self.imm.to_le_bytes());
        b
    }

    /// Decode from the canonical 8-byte form.
    pub fn decode(b: &[u8; 8]) -> Insn {
        Insn {
            code: b[0],
            dst: b[1] & 0x0F,
            src: b[1] >> 4,
            off: i16::from_le_bytes([b[2], b[3]]),
            imm: i32::from_le_bytes([b[4], b[5], b[6], b[7]]),
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.class();
        match c {
            class::ALU | class::ALU64 => {
                let w = if c == class::ALU64 { "64" } else { "32" };
                let op = match self.code & 0xF0 {
                    alu::ADD => "add",
                    alu::SUB => "sub",
                    alu::MUL => "mul",
                    alu::DIV => "div",
                    alu::OR => "or",
                    alu::AND => "and",
                    alu::LSH => "lsh",
                    alu::RSH => "rsh",
                    alu::NEG => "neg",
                    alu::MOD => "mod",
                    alu::XOR => "xor",
                    alu::MOV => "mov",
                    alu::ARSH => "arsh",
                    _ => "alu?",
                };
                if self.code & srcop::X != 0 {
                    write!(f, "{op}{w} r{}, r{}", self.dst, self.src)
                } else {
                    write!(f, "{op}{w} r{}, {}", self.dst, self.imm)
                }
            }
            class::LDX => write!(
                f,
                "ldx{} r{}, [r{}{:+}]",
                size_str(self.code),
                self.dst,
                self.src,
                self.off
            ),
            class::STX => write!(
                f,
                "stx{} [r{}{:+}], r{}",
                size_str(self.code),
                self.dst,
                self.off,
                self.src
            ),
            class::ST => write!(
                f,
                "st{} [r{}{:+}], {}",
                size_str(self.code),
                self.dst,
                self.off,
                self.imm
            ),
            class::LD if self.is_lddw() => write!(f, "lddw r{}, {}(lo)", self.dst, self.imm),
            class::JMP | class::JMP32 => {
                let op = match self.code & 0xF0 {
                    jmp::JA => return write!(f, "ja {:+}", self.off),
                    jmp::JEQ => "jeq",
                    jmp::JGT => "jgt",
                    jmp::JGE => "jge",
                    jmp::JSET => "jset",
                    jmp::JNE => "jne",
                    jmp::JSGT => "jsgt",
                    jmp::JSGE => "jsge",
                    jmp::JLT => "jlt",
                    jmp::JLE => "jle",
                    jmp::JSLT => "jslt",
                    jmp::JSLE => "jsle",
                    jmp::CALL => return write!(f, "call {}", self.imm),
                    jmp::EXIT => return write!(f, "exit"),
                    _ => "jmp?",
                };
                if self.code & srcop::X != 0 {
                    write!(f, "{op} r{}, r{}, {:+}", self.dst, self.src, self.off)
                } else {
                    write!(f, "{op} r{}, {}, {:+}", self.dst, self.imm, self.off)
                }
            }
            _ => write!(f, "op {:#04x}", self.code),
        }
    }
}

fn size_str(code: u8) -> &'static str {
    match code & 0x18 {
        size::W => "w",
        size::H => "h",
        size::B => "b",
        size::DW => "dw",
        _ => "?",
    }
}

/// Number of bytes accessed by a LD/ST of this opcode.
pub fn access_size(code: u8) -> u32 {
    match code & 0x18 {
        size::W => 4,
        size::H => 2,
        size::B => 1,
        size::DW => 8,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let i = Insn::new(class::ALU64 | alu::MOV | srcop::K, 3, 0, 0, -42);
        assert_eq!(Insn::decode(&i.encode()), i);
        let j = Insn::new(class::LDX | mode::MEM | size::H, 2, 1, 14, 0);
        assert_eq!(Insn::decode(&j.encode()), j);
    }

    #[test]
    fn display_forms() {
        let mov = Insn::new(class::ALU64 | alu::MOV | srcop::K, 0, 0, 0, 2);
        assert_eq!(format!("{mov}"), "mov64 r0, 2");
        let ldx = Insn::new(class::LDX | mode::MEM | size::W, 2, 1, 8, 0);
        assert_eq!(format!("{ldx}"), "ldxw r2, [r1+8]");
        let jeq = Insn::new(class::JMP | jmp::JEQ | srcop::X, 1, 2, 5, 0);
        assert_eq!(format!("{jeq}"), "jeq r1, r2, +5");
        let exit = Insn::new(class::JMP | jmp::EXIT, 0, 0, 0, 0);
        assert_eq!(format!("{exit}"), "exit");
    }

    #[test]
    fn access_sizes() {
        assert_eq!(access_size(class::LDX | mode::MEM | size::B), 1);
        assert_eq!(access_size(class::LDX | mode::MEM | size::H), 2);
        assert_eq!(access_size(class::LDX | mode::MEM | size::W), 4);
        assert_eq!(access_size(class::LDX | mode::MEM | size::DW), 8);
    }

    #[test]
    fn lddw_detection() {
        let lddw = Insn::new(class::LD | mode::IMM | size::DW, 1, 0, 0, 7);
        assert!(lddw.is_lddw());
        let ldx = Insn::new(class::LDX | mode::MEM | size::DW, 1, 1, 0, 0);
        assert!(!ldx.is_lddw());
    }
}
