//! eBPF virtual machine: executes programs against an [`XdpContext`].
//!
//! The VM enforces memory safety *at runtime* (every access is
//! bounds-checked against its region), independently of the static
//! verifier. Tests run adversarial programs through both: the verifier
//! must reject anything the VM would fault on.

use crate::insn::{access_size, alu, class, jmp, srcop, Insn};
use crate::xdp::{base, ctx_off, XdpContext};
use std::fmt;

/// Runtime execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Memory access outside any region.
    OutOfBounds { addr: u64, len: u32, pc: usize },
    /// Write to a read-only region (context).
    ReadOnly { addr: u64, pc: usize },
    /// Unknown or unsupported opcode.
    BadOpcode { code: u8, pc: usize },
    /// Jump target outside the program.
    BadJump { pc: usize, target: i64 },
    /// Instruction budget exhausted (runaway program).
    Timeout,
    /// Truncated LDDW pair.
    TruncatedLddw { pc: usize },
    /// Helper calls are not part of this subset.
    UnsupportedCall { imm: i32, pc: usize },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfBounds { addr, len, pc } => {
                write!(
                    f,
                    "out-of-bounds access of {len} bytes at {addr:#x} (pc {pc})"
                )
            }
            VmError::ReadOnly { addr, pc } => {
                write!(f, "write to read-only address {addr:#x} (pc {pc})")
            }
            VmError::BadOpcode { code, pc } => write!(f, "bad opcode {code:#04x} (pc {pc})"),
            VmError::BadJump { pc, target } => write!(f, "jump from pc {pc} to {target}"),
            VmError::Timeout => write!(f, "instruction budget exhausted"),
            VmError::TruncatedLddw { pc } => write!(f, "truncated lddw at pc {pc}"),
            VmError::UnsupportedCall { imm, pc } => {
                write!(f, "unsupported helper call {imm} (pc {pc})")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct VmStats {
    pub insns_executed: u64,
}

/// The virtual machine.
pub struct Vm {
    /// Max instructions per run.
    pub insn_budget: u64,
}

impl Default for Vm {
    fn default() -> Self {
        Vm {
            insn_budget: 1_000_000,
        }
    }
}

impl Vm {
    /// Run `prog` over `ctx`; returns (r0, stats).
    pub fn run(&self, prog: &[Insn], ctx: &XdpContext) -> Result<(u64, VmStats), VmError> {
        let mut regs = [0u64; 11];
        let mut stack = [0u8; base::STACK_SIZE as usize];
        // Context object bytes: four 64-bit pointers.
        let mut ctx_obj = [0u8; ctx_off::SIZE as usize];
        ctx_obj[0..8].copy_from_slice(&base::PKT.to_le_bytes());
        ctx_obj[8..16].copy_from_slice(&(base::PKT + ctx.packet.len() as u64).to_le_bytes());
        ctx_obj[16..24].copy_from_slice(&base::META.to_le_bytes());
        ctx_obj[24..32].copy_from_slice(&(base::META + ctx.metadata.len() as u64).to_le_bytes());

        regs[1] = base::CTX;
        regs[10] = base::STACK_TOP;

        let mut pc: usize = 0;
        let mut stats = VmStats::default();
        loop {
            if stats.insns_executed >= self.insn_budget {
                return Err(VmError::Timeout);
            }
            let Some(insn) = prog.get(pc) else {
                return Err(VmError::BadJump {
                    pc: pc.saturating_sub(1),
                    target: pc as i64,
                });
            };
            stats.insns_executed += 1;
            if insn.dst > 10 || insn.src > 10 {
                return Err(VmError::BadOpcode {
                    code: insn.code,
                    pc,
                });
            }
            let cls = insn.class();
            match cls {
                class::ALU64 | class::ALU => {
                    let op = insn.code & 0xF0;
                    let rhs = if insn.code & srcop::X != 0 {
                        regs[insn.src as usize]
                    } else {
                        insn.imm as i64 as u64
                    };
                    let dst = insn.dst as usize;
                    let lhs = regs[dst];
                    let val = match op {
                        alu::ADD => lhs.wrapping_add(rhs),
                        alu::SUB => lhs.wrapping_sub(rhs),
                        alu::MUL => lhs.wrapping_mul(rhs),
                        // Per the eBPF spec, division by zero yields 0.
                        alu::DIV => lhs.checked_div(rhs).unwrap_or(0),
                        alu::MOD => lhs.checked_rem(rhs).unwrap_or(lhs),
                        alu::OR => lhs | rhs,
                        alu::AND => lhs & rhs,
                        alu::LSH => lhs.wrapping_shl(rhs as u32 & 63),
                        alu::RSH => lhs.wrapping_shr(rhs as u32 & 63),
                        alu::NEG => (lhs as i64).wrapping_neg() as u64,
                        alu::XOR => lhs ^ rhs,
                        alu::MOV => rhs,
                        alu::ARSH => ((lhs as i64) >> (rhs as u32 & 63)) as u64,
                        _ => {
                            return Err(VmError::BadOpcode {
                                code: insn.code,
                                pc,
                            })
                        }
                    };
                    regs[dst] = if cls == class::ALU {
                        // 32-bit ops operate on and zero-extend the low half.
                        let l32 = lhs as u32;
                        let r32 = rhs as u32;
                        (match op {
                            alu::ADD => l32.wrapping_add(r32),
                            alu::SUB => l32.wrapping_sub(r32),
                            alu::MUL => l32.wrapping_mul(r32),
                            alu::DIV => l32.checked_div(r32).unwrap_or(0),
                            alu::MOD => l32.checked_rem(r32).unwrap_or(l32),
                            alu::OR => l32 | r32,
                            alu::AND => l32 & r32,
                            alu::LSH => l32.wrapping_shl(r32 & 31),
                            alu::RSH => l32.wrapping_shr(r32 & 31),
                            alu::NEG => (l32 as i32).wrapping_neg() as u32,
                            alu::XOR => l32 ^ r32,
                            alu::MOV => r32,
                            alu::ARSH => ((l32 as i32) >> (r32 & 31)) as u32,
                            _ => {
                                return Err(VmError::BadOpcode {
                                    code: insn.code,
                                    pc,
                                })
                            }
                        }) as u64
                    } else {
                        val
                    };
                    pc += 1;
                }
                class::LD if insn.is_lddw() => {
                    let Some(hi) = prog.get(pc + 1) else {
                        return Err(VmError::TruncatedLddw { pc });
                    };
                    regs[insn.dst as usize] =
                        (insn.imm as u32 as u64) | ((hi.imm as u32 as u64) << 32);
                    pc += 2;
                }
                class::LDX => {
                    let addr = regs[insn.src as usize].wrapping_add(insn.off as i64 as u64);
                    let len = access_size(insn.code);
                    let v = self.load(addr, len, ctx, &ctx_obj, &stack, pc)?;
                    regs[insn.dst as usize] = v;
                    pc += 1;
                }
                class::STX | class::ST => {
                    let addr = regs[insn.dst as usize].wrapping_add(insn.off as i64 as u64);
                    let len = access_size(insn.code);
                    let v = if cls == class::STX {
                        regs[insn.src as usize]
                    } else {
                        insn.imm as i64 as u64
                    };
                    self.store(addr, len, v, ctx, &mut stack, pc)?;
                    pc += 1;
                }
                class::JMP => {
                    let op = insn.code & 0xF0;
                    if op == jmp::EXIT {
                        return Ok((regs[0], stats));
                    }
                    if op == jmp::CALL {
                        return Err(VmError::UnsupportedCall { imm: insn.imm, pc });
                    }
                    let rhs = if insn.code & srcop::X != 0 {
                        regs[insn.src as usize]
                    } else {
                        insn.imm as i64 as u64
                    };
                    let lhs = regs[insn.dst as usize];
                    let taken = match op {
                        jmp::JA => true,
                        jmp::JEQ => lhs == rhs,
                        jmp::JNE => lhs != rhs,
                        jmp::JGT => lhs > rhs,
                        jmp::JGE => lhs >= rhs,
                        jmp::JLT => lhs < rhs,
                        jmp::JLE => lhs <= rhs,
                        jmp::JSET => lhs & rhs != 0,
                        jmp::JSGT => (lhs as i64) > rhs as i64,
                        jmp::JSGE => (lhs as i64) >= rhs as i64,
                        jmp::JSLT => (lhs as i64) < (rhs as i64),
                        jmp::JSLE => (lhs as i64) <= rhs as i64,
                        _ => {
                            return Err(VmError::BadOpcode {
                                code: insn.code,
                                pc,
                            })
                        }
                    };
                    if taken {
                        let target = pc as i64 + 1 + insn.off as i64;
                        if target < 0 || target as usize > prog.len() {
                            return Err(VmError::BadJump { pc, target });
                        }
                        pc = target as usize;
                    } else {
                        pc += 1;
                    }
                }
                _ => {
                    return Err(VmError::BadOpcode {
                        code: insn.code,
                        pc,
                    })
                }
            }
        }
    }

    fn load(
        &self,
        addr: u64,
        len: u32,
        ctx: &XdpContext,
        ctx_obj: &[u8],
        stack: &[u8],
        pc: usize,
    ) -> Result<u64, VmError> {
        let slice = self
            .region(addr, len, ctx, ctx_obj, stack)
            .ok_or(VmError::OutOfBounds { addr, len, pc })?;
        let mut b = [0u8; 8];
        b[..len as usize].copy_from_slice(slice);
        Ok(u64::from_le_bytes(b))
    }

    fn store(
        &self,
        addr: u64,
        len: u32,
        value: u64,
        ctx: &XdpContext,
        stack: &mut [u8],
        pc: usize,
    ) -> Result<(), VmError> {
        // Only the stack is writable in this subset (accessor programs
        // never write packets).
        let lo = base::STACK_TOP - base::STACK_SIZE;
        if addr >= lo && addr.saturating_add(len as u64) <= base::STACK_TOP {
            let off = (addr - lo) as usize;
            stack[off..off + len as usize].copy_from_slice(&value.to_le_bytes()[..len as usize]);
            return Ok(());
        }
        // A store that would land inside a mapped read-only object is a
        // distinct error from a wild store.
        let in_ctx = addr >= base::CTX && addr < base::CTX + ctx_off::SIZE as u64;
        let in_pkt = addr >= base::PKT && addr < base::PKT + ctx.packet.len() as u64;
        let in_meta = addr >= base::META && addr < base::META + ctx.metadata.len() as u64;
        if in_ctx || in_pkt || in_meta {
            return Err(VmError::ReadOnly { addr, pc });
        }
        Err(VmError::OutOfBounds { addr, len, pc })
    }

    fn region<'m>(
        &self,
        addr: u64,
        len: u32,
        ctx: &'m XdpContext,
        ctx_obj: &'m [u8],
        stack: &'m [u8],
    ) -> Option<&'m [u8]> {
        let end = addr.checked_add(len as u64)?;
        let slice_in = |base_addr: u64, buf: &'m [u8]| -> Option<&'m [u8]> {
            let lo = addr.checked_sub(base_addr)? as usize;
            let hi = end.checked_sub(base_addr)? as usize;
            buf.get(lo..hi)
        };
        if addr >= base::CTX && end <= base::CTX + ctx_off::SIZE as u64 {
            return slice_in(base::CTX, ctx_obj);
        }
        if addr >= base::PKT && end <= base::PKT + ctx.packet.len() as u64 {
            return slice_in(base::PKT, &ctx.packet);
        }
        if addr >= base::META && end <= base::META + ctx.metadata.len() as u64 {
            return slice_in(base::META, &ctx.metadata);
        }
        let stack_lo = base::STACK_TOP - base::STACK_SIZE;
        if addr >= stack_lo && end <= base::STACK_TOP {
            return slice_in(stack_lo, stack);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{reg, Asm};
    use crate::insn::{jmp, size, xdp_action};

    fn run(prog: &[Insn], ctx: &XdpContext) -> Result<u64, VmError> {
        Vm::default().run(prog, ctx).map(|(r0, _)| r0)
    }

    #[test]
    fn return_constant() {
        let mut a = Asm::new();
        a.mov64_imm(reg::R0, xdp_action::PASS as i32).exit();
        let ctx = XdpContext::new(vec![], vec![]);
        assert_eq!(run(&a.build(), &ctx), Ok(xdp_action::PASS));
    }

    #[test]
    fn read_packet_byte_with_bounds_check() {
        // r2 = ctx->data; r3 = ctx->data_end;
        // if r2 + 1 > r3 goto drop; r0 = *(u8*)r2; exit
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R2, reg::R1, ctx_off::DATA)
            .ldx(size::DW, reg::R3, reg::R1, ctx_off::DATA_END)
            .mov64_reg(reg::R4, reg::R2)
            .alu64_imm(crate::insn::alu::ADD, reg::R4, 1)
            .jmp_reg(jmp::JGT, reg::R4, reg::R3, "drop")
            .ldx(size::B, reg::R0, reg::R2, 0)
            .exit()
            .label("drop")
            .mov64_imm(reg::R0, xdp_action::DROP as i32)
            .exit();
        let prog = a.build();
        assert_eq!(run(&prog, &XdpContext::new(vec![0xAB], vec![])), Ok(0xAB));
        // Empty packet takes the drop branch instead of faulting.
        assert_eq!(
            run(&prog, &XdpContext::new(vec![], vec![])),
            Ok(xdp_action::DROP)
        );
    }

    #[test]
    fn metadata_reads_little_endian() {
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R2, reg::R1, ctx_off::META)
            .ldx(size::W, reg::R0, reg::R2, 0)
            .exit();
        let ctx = XdpContext::new(vec![], vec![0x78, 0x56, 0x34, 0x12]);
        assert_eq!(run(&a.build(), &ctx), Ok(0x12345678));
    }

    #[test]
    fn unchecked_oob_read_faults() {
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R2, reg::R1, ctx_off::META)
            .ldx(size::W, reg::R0, reg::R2, 100)
            .exit();
        let ctx = XdpContext::new(vec![], vec![0u8; 8]);
        assert!(matches!(
            run(&a.build(), &ctx),
            Err(VmError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn stack_read_write() {
        let mut a = Asm::new();
        a.mov64_imm(reg::R2, 0x1234)
            .stx(size::H, reg::R10, -8, reg::R2)
            .ldx(size::H, reg::R0, reg::R10, -8)
            .exit();
        assert_eq!(
            run(&a.build(), &XdpContext::new(vec![], vec![])),
            Ok(0x1234)
        );
    }

    #[test]
    fn stack_overflow_faults() {
        let mut a = Asm::new();
        a.stx(size::DW, reg::R10, -520, reg::R0).exit();
        assert!(matches!(
            run(&a.build(), &XdpContext::new(vec![], vec![])),
            Err(VmError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn packet_writes_rejected() {
        let mut a = Asm::new();
        a.ldx(size::DW, reg::R2, reg::R1, ctx_off::DATA)
            .stx(size::B, reg::R2, 0, reg::R0)
            .exit();
        let ctx = XdpContext::new(vec![0u8; 4], vec![]);
        assert!(matches!(
            run(&a.build(), &ctx),
            Err(VmError::ReadOnly { .. })
        ));
    }

    #[test]
    fn infinite_loop_times_out() {
        let mut a = Asm::new();
        a.label("top").ja("top");
        let vm = Vm { insn_budget: 1000 };
        assert_eq!(
            vm.run(&a.build(), &XdpContext::new(vec![], vec![]))
                .unwrap_err(),
            VmError::Timeout
        );
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut a = Asm::new();
        a.mov64_imm(reg::R0, 42)
            .mov64_imm(reg::R2, 0)
            .alu64_reg(crate::insn::alu::DIV, reg::R0, reg::R2)
            .exit();
        assert_eq!(run(&a.build(), &XdpContext::new(vec![], vec![])), Ok(0));
    }

    #[test]
    fn alu32_zero_extends() {
        let mut a = Asm::new();
        a.lddw(reg::R0, 0xFFFF_FFFF_FFFF_FFFF)
            .alu32_imm(crate::insn::alu::ADD, reg::R0, 1)
            .exit();
        assert_eq!(run(&a.build(), &XdpContext::new(vec![], vec![])), Ok(0));
    }

    #[test]
    fn helper_calls_rejected() {
        let mut a = Asm::new();
        a.raw(Insn::new(class::JMP | jmp::CALL, 0, 0, 0, 1)).exit();
        assert!(matches!(
            run(&a.build(), &XdpContext::new(vec![], vec![])),
            Err(VmError::UnsupportedCall { .. })
        ));
    }

    #[test]
    fn lddw_loads_full_64_bits() {
        let mut a = Asm::new();
        a.lddw(reg::R0, 0xDEADBEEF_CAFEF00D).exit();
        assert_eq!(
            run(&a.build(), &XdpContext::new(vec![], vec![])),
            Ok(0xDEADBEEF_CAFEF00D)
        );
    }

    #[test]
    fn shifts_and_masks() {
        let mut a = Asm::new();
        a.mov64_imm(reg::R0, 0x00AB_CDEF)
            .alu64_imm(crate::insn::alu::RSH, reg::R0, 8)
            .alu64_imm(crate::insn::alu::AND, reg::R0, 0xFF)
            .exit();
        assert_eq!(run(&a.build(), &XdpContext::new(vec![], vec![])), Ok(0xCD));
    }
}
