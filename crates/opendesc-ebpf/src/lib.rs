//! # opendesc-ebpf — eBPF substrate: ISA, assembler, verifier, VM
//!
//! Stands in for the kernel's XDP/eBPF machinery: OpenDesc-generated
//! descriptor accessors are emitted as eBPF programs, statically checked
//! by the [`verifier`] (pointer provenance + compare-and-branch bounds
//! proofs, kernel-style), and executed by the [`interp`] VM against an
//! XDP-like context whose `meta`/`meta_end` window exposes the raw NIC
//! completion record.
pub mod asm;
pub mod insn;
pub mod interp;
pub mod verifier;
pub mod xdp;

pub use asm::{disasm, reg, Asm};
pub use insn::{alu, class, jmp, mode, size, srcop, xdp_action, Insn};
pub use interp::{Vm, VmError, VmStats};
pub use verifier::{verify, verify_all, RegState, VerifierError, VerifierStats};
pub use xdp::{base, ctx_off, XdpContext};

#[cfg(test)]
mod fuzz_tests;
